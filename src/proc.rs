//! Process-cluster launcher: run a GraphDance cluster as N OS processes.
//!
//! [`ProcessCluster`] spawns one `graphdance-node` child per node of a
//! `Repro` line, wires the mesh over loopback sockets, and drives the
//! stdin/stdout control protocol documented in `src/bin/graphdance-node.rs`:
//!
//! 1. spawn every child with the same repro line and `--listen` on an
//!    ephemeral address (TCP port 0, or a fresh Unix socket path);
//! 2. collect each child's `LISTEN <addr>` line (the resolved address);
//! 3. broadcast the full peer table as one `PEERS ...` line;
//! 4. wait for every child's `READY` (the n·(n−1) stream mesh is up);
//! 5. on [`ProcessCluster::run`], tell the head `RUN` and collect `ROW`
//!    lines until `DONE`;
//! 6. on [`ProcessCluster::shutdown`], send `QUIT` to **all** children
//!    concurrently — the drain-before-close handshake means no process's
//!    shutdown completes until every peer's does — then wait for exits.
//!
//! Tests obtain the child binary's path from Cargo:
//! `env!("CARGO_BIN_EXE_graphdance-node")` (available to this package's
//! tests and benches). The path is a parameter so non-test callers can
//! point at an installed binary.

use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};

use graphdance_common::{GdError, GdResult};
use graphdance_sim::Repro;

/// Which loopback socket family the mesh uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SocketFamily {
    /// TCP over `127.0.0.1` (ephemeral ports).
    Tcp,
    /// Unix-domain sockets under the system temp directory.
    Unix,
}

/// Distinguishes socket paths across repeated launches inside one test
/// process (the pid alone is not unique then).
// lint: allow(adhoc-counter) path uniquifier, not a metric
static LAUNCH_SEQ: AtomicU64 = AtomicU64::new(0);

/// A running multi-process cluster (see module docs for the lifecycle).
///
/// Dropping a `ProcessCluster` without calling [`ProcessCluster::shutdown`]
/// kills the children outright — fine for tests that already failed, but
/// the graceful path is the one that exercises drain-before-close.
pub struct ProcessCluster {
    children: Vec<Child>,
    stdins: Vec<ChildStdin>,
    stdouts: Vec<BufReader<ChildStdout>>,
}

impl ProcessCluster {
    /// Launch over loopback TCP. See [`ProcessCluster::launch_with_family`].
    pub fn launch(bin: impl AsRef<Path>, repro_line: &str) -> GdResult<ProcessCluster> {
        Self::launch_with_family(bin, repro_line, SocketFamily::Tcp)
    }

    /// Spawn one `graphdance-node` process per node of `repro_line` and
    /// block until the whole mesh reports `READY`.
    pub fn launch_with_family(
        bin: impl AsRef<Path>,
        repro_line: &str,
        family: SocketFamily,
    ) -> GdResult<ProcessCluster> {
        let repro = Repro::parse(repro_line).map_err(GdError::InvalidProgram)?;
        let n = repro.nodes as usize;
        let seq = LAUNCH_SEQ.fetch_add(1, Ordering::Relaxed);

        let mut cluster = ProcessCluster {
            children: Vec::with_capacity(n),
            stdins: Vec::with_capacity(n),
            stdouts: Vec::with_capacity(n),
        };
        for node in 0..n {
            let listen = match family {
                SocketFamily::Tcp => "127.0.0.1:0".to_string(),
                SocketFamily::Unix => {
                    let p: PathBuf = std::env::temp_dir()
                        .join(format!("gd-{}-{seq}-{node}.sock", std::process::id()));
                    format!("unix:{}", p.display())
                }
            };
            let mut child = Command::new(bin.as_ref())
                .arg("--node")
                .arg(node.to_string())
                .arg("--repro")
                .arg(repro_line)
                .arg("--listen")
                .arg(listen)
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                // stderr inherits: child panics land in the test output.
                .spawn()
                .map_err(|e| io_err("spawn graphdance-node", &e))?;
            cluster
                .stdins
                .push(child.stdin.take().expect("stdin piped"));
            cluster
                .stdouts
                .push(BufReader::new(child.stdout.take().expect("stdout piped")));
            cluster.children.push(child);
        }

        // Gather every child's resolved listen address...
        let mut peers = Vec::with_capacity(n);
        for node in 0..n {
            let line = cluster.read_line(node)?;
            let addr = line.strip_prefix("LISTEN ").ok_or_else(|| {
                GdError::InvalidProgram(format!("node {node}: expected LISTEN, got {line:?}"))
            })?;
            peers.push(addr.to_string());
        }
        // ...broadcast the table, then wait for the mesh.
        let table = format!("PEERS {}\n", peers.join(" "));
        for node in 0..n {
            cluster.write_all(node, &table)?;
        }
        for node in 0..n {
            cluster.expect_line(node, "READY")?;
        }
        Ok(cluster)
    }

    /// Execute the repro's query on the head node and return one
    /// `format!("{row:?}")` string per result row, in arrival order.
    ///
    /// Compare row **multisets** (sort both sides), exactly like
    /// `graphdance_sim::check_detailed` normalizes rows — arrival order is
    /// schedule-dependent on a real network.
    pub fn run(&mut self) -> GdResult<Vec<String>> {
        self.write_all(0, "RUN\n")?;
        let mut rows = Vec::new();
        loop {
            let line = self.read_line(0)?;
            if let Some(row) = line.strip_prefix("ROW ") {
                rows.push(row.to_string());
            } else if line == "DONE" {
                return Ok(rows);
            } else if let Some(msg) = line.strip_prefix("ERR ") {
                return Err(GdError::InvalidProgram(format!("head: {msg}")));
            } else {
                return Err(GdError::InvalidProgram(format!(
                    "head: unexpected line {line:?}"
                )));
            }
        }
    }

    /// Gracefully stop every process: `QUIT` is sent to all children
    /// *before* waiting on any (each child's shutdown blocks until its
    /// peers also drain — quitting them one at a time would deadlock).
    pub fn shutdown(mut self) -> GdResult<()> {
        for node in 0..self.children.len() {
            self.write_all(node, "QUIT\n")?;
        }
        for node in 0..self.children.len() {
            self.expect_line(node, "BYE")?;
        }
        for (node, child) in self.children.iter_mut().enumerate() {
            let status = child
                .wait()
                .map_err(|e| io_err(&format!("wait node {node}"), &e))?;
            if !status.success() {
                return Err(GdError::InvalidProgram(format!(
                    "node {node} exited with {status}"
                )));
            }
        }
        self.children.clear();
        Ok(())
    }

    fn write_all(&mut self, node: usize, s: &str) -> GdResult<()> {
        self.stdins[node]
            .write_all(s.as_bytes())
            .and_then(|()| self.stdins[node].flush())
            .map_err(|e| io_err(&format!("write to node {node}"), &e))
    }

    fn read_line(&mut self, node: usize) -> GdResult<String> {
        let mut line = String::new();
        let read = self.stdouts[node]
            .read_line(&mut line)
            .map_err(|e| io_err(&format!("read from node {node}"), &e))?;
        if read == 0 {
            return Err(GdError::InvalidProgram(format!(
                "node {node} closed its stdout (crashed?)"
            )));
        }
        Ok(line.trim_end_matches('\n').to_string())
    }

    fn expect_line(&mut self, node: usize, want: &str) -> GdResult<()> {
        let line = self.read_line(node)?;
        if line != want {
            return Err(GdError::InvalidProgram(format!(
                "node {node}: expected {want}, got {line:?}"
            )));
        }
        Ok(())
    }
}

impl Drop for ProcessCluster {
    fn drop(&mut self) {
        // Abnormal teardown only (shutdown() drains `children`).
        for child in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

fn io_err(what: &str, e: &std::io::Error) -> GdError {
    GdError::InvalidProgram(format!("process cluster: {what}: {e}"))
}
