//! # GraphDance
//!
//! Facade crate re-exporting the full GraphDance stack — a reproduction of
//! the ICDE 2025 paper *"Scaling Asynchronous Graph Query Processing via
//! Partitioned Stateful Traversal Machines"*. See README.md for the tour
//! and DESIGN.md for the architecture.
//!
//! ```
//! use graphdance::common::{Partitioner, Value, VertexId};
//! use graphdance::engine::{EngineConfig, GraphDance};
//! use graphdance::query::parser;
//! use graphdance::storage::GraphBuilder;
//!
//! // Build a 2-node x 2-worker partitioned graph.
//! let mut b = GraphBuilder::new(Partitioner::new(2, 2));
//! let person = b.schema_mut().register_vertex_label("Person");
//! let knows = b.schema_mut().register_edge_label("knows");
//! for i in 0..4 {
//!     b.add_vertex(VertexId(i), person, vec![]).unwrap();
//! }
//! for i in 0..4 {
//!     b.add_edge(VertexId(i), knows, VertexId((i + 1) % 4), vec![]).unwrap();
//! }
//! let graph = b.finish();
//!
//! // Start the simulated cluster and run a Gremlin-style text query.
//! let engine = GraphDance::start(graph.clone(), EngineConfig::new(2, 2));
//! let plan = parser::parse_to_plan(
//!     graph.schema(),
//!     "g.V($0).repeat(out('knows')).times(1,2).dedup().count()",
//! )
//! .unwrap();
//! let rows = engine.query(&plan, vec![Value::Vertex(VertexId(0))]).unwrap();
//! assert_eq!(rows, vec![vec![Value::Int(2)]]);
//! engine.shutdown();
//! ```

pub mod proc;

pub use graphdance_analytics as analytics;
pub use graphdance_baselines as baselines;
pub use graphdance_common as common;
pub use graphdance_datagen as datagen;
pub use graphdance_engine as engine;
pub use graphdance_ldbc as ldbc;
pub use graphdance_pstm as pstm;
pub use graphdance_query as query;
pub use graphdance_sim as sim;
pub use graphdance_storage as storage;
pub use graphdance_txn as txn;

/// Observability: sharded metrics registry + query-span tracing (only
/// with the `obs` cargo feature; see DESIGN.md "Observability").
#[cfg(feature = "obs")]
pub use graphdance_obs as obs;
