//! `graphdance-node` — serve one node of a real multi-process GraphDance
//! cluster over the socket transport (`engine::transport::TcpTransport`).
//!
//! Every process is handed the same `Repro` line (the sim crate's replay
//! format) and deterministically builds the full graph from it, so all
//! processes agree on topology, schema, and placement without any data
//! shipping. The process then hosts only the workers of `--node`; see
//! `engine::node::NodeRuntime`.
//!
//! # Control protocol (stdin/stdout, line-oriented)
//!
//! The launcher (`graphdance::proc::ProcessCluster`) drives each child
//! through a tiny text protocol. All lines the child prints are flushed
//! immediately; the child prints nothing else on stdout.
//!
//! ```text
//! child → LISTEN <addr>          after binding (resolves port 0 / socket path)
//! parent → PEERS <a0> <a1> ...   resolved listen address of every node
//! child → READY                  mesh is up, workers + (head) coordinator live
//! parent → RUN                   head only: execute the repro's query
//! child → ROW <debug-of-row>     one line per result row (order unspecified)
//! child → DONE                   query finished (or ERR <msg> on failure)
//! parent → QUIT                  drain outboxes, close the mesh, exit
//! child → BYE                    shutdown complete
//! ```
//!
//! `RUN` may be issued repeatedly before `QUIT`. EOF on stdin is treated
//! as `QUIT` so an orphaned child unwinds cleanly when the launcher dies.
//!
//! # Usage
//!
//! ```text
//! graphdance-node --node <i> --repro "<repro line>" [--listen <addr>]
//! ```
//!
//! `--listen` defaults to `127.0.0.1:0` (ephemeral TCP port); pass
//! `unix:/path/to.sock` to serve over a Unix-domain socket instead.

use std::io::{BufRead, Write};
use std::process::ExitCode;

use graphdance::common::NodeId;
use graphdance::engine::{EngineConfig, NodeRuntime, PeerAddr, TcpTransport, TcpTransportConfig};
use graphdance_sim::Repro;

struct Args {
    node: u32,
    repro: Repro,
    listen: PeerAddr,
}

fn parse_args() -> Result<Args, String> {
    let mut node = None;
    let mut repro = None;
    let mut listen = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--node" => node = Some(val()?.parse::<u32>().map_err(|e| e.to_string())?),
            "--repro" => repro = Some(Repro::parse(&val()?)?),
            "--listen" => listen = Some(PeerAddr::parse(&val()?).map_err(|e| e.to_string())?),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    let repro = repro.ok_or("missing --repro")?;
    if repro.faults != Default::default() {
        return Err("fault injection is sim-only; refuse to serve a faulty repro".into());
    }
    if repro.svc.is_some() || repro.part.is_some() {
        return Err("svc=/part= workloads are sim-only; serve a plain repro".into());
    }
    Ok(Args {
        node: node.ok_or("missing --node")?,
        repro,
        listen: listen.unwrap_or_else(|| PeerAddr::Tcp("127.0.0.1:0".into())),
    })
}

fn serve(args: Args) -> Result<(), String> {
    let Args {
        node,
        repro,
        listen,
    } = args;
    if node >= repro.nodes {
        return Err(format!("--node {node} outside nodes={}", repro.nodes));
    }

    // Bind first — before any peer could dial us — with the real address in
    // our own slot and placeholders elsewhere; the resolved table arrives
    // over PEERS once every process has printed its LISTEN line.
    let placeholder = vec![listen.clone(); repro.nodes as usize];
    let transport = TcpTransport::bind(TcpTransportConfig::new(NodeId(node), placeholder))
        .map_err(|e| format!("bind {listen}: {e:?}"))?;

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    writeln!(out, "LISTEN {}", transport.local_addr())
        .and_then(|()| out.flush())
        .map_err(|e| e.to_string())?;

    // Deterministic replica of the cluster's data — identical in every
    // process because it derives only from the repro line.
    let graph = repro.graph.build(repro.nodes, repro.workers);
    let config = EngineConfig::new(repro.nodes, repro.workers)
        .with_seed(repro.seed)
        .with_io_mode(repro.io);
    let (plan, params) = repro.query.build(&graph);

    let stdin = std::io::stdin();
    let mut lines = stdin.lock().lines();

    let peers_line = match lines.next() {
        Some(l) => l.map_err(|e| e.to_string())?,
        None => return Ok(()), // launcher died before the mesh came up
    };
    let rest = peers_line
        .strip_prefix("PEERS ")
        .ok_or_else(|| format!("expected PEERS, got {peers_line:?}"))?;
    let peers = rest
        .split_whitespace()
        .map(|s| PeerAddr::parse(s).map_err(|e| format!("peer {s:?}: {e:?}")))
        .collect::<Result<Vec<_>, _>>()?;
    if peers.len() != repro.nodes as usize {
        return Err(format!(
            "PEERS carried {} addresses for nodes={}",
            peers.len(),
            repro.nodes
        ));
    }
    transport.set_peers(peers);

    // Blocks until the outbound half of the mesh is dialled; peers are all
    // bound already (they printed LISTEN before the launcher sent PEERS).
    let runtime = NodeRuntime::start(graph, config, NodeId(node), transport);
    writeln!(out, "READY")
        .and_then(|()| out.flush())
        .map_err(|e| e.to_string())?;

    for line in &mut lines {
        let line = line.map_err(|e| e.to_string())?;
        match line.as_str() {
            "RUN" => {
                if !runtime.is_head() {
                    writeln!(out, "ERR RUN sent to follower node {node}")
                } else {
                    match runtime.query(&plan, params.clone()) {
                        Ok(rows) => {
                            for r in &rows {
                                writeln!(out, "ROW {r:?}").map_err(|e| e.to_string())?;
                            }
                            writeln!(out, "DONE")
                        }
                        Err(e) => writeln!(out, "ERR {e:?}"),
                    }
                }
                .and_then(|()| out.flush())
                .map_err(|e| e.to_string())?;
            }
            "QUIT" => break,
            other => return Err(format!("unknown command {other:?}")),
        }
    }

    // Drain-before-close: shutdown flushes every outbox, writes GOODBYE on
    // each outbound stream, and joins the reader threads — it returns only
    // once every peer has also said goodbye, so all processes must be told
    // to QUIT for any of them to exit (see `NodeRuntime::shutdown`).
    runtime.shutdown();
    writeln!(out, "BYE")
        .and_then(|()| out.flush())
        .map_err(|e| e.to_string())?;
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("graphdance-node: {e}");
            eprintln!(
                "usage: graphdance-node --node <i> --repro \"<repro line>\" [--listen <addr>]"
            );
            return ExitCode::from(2);
        }
    };
    if let Err(e) = serve(args) {
        eprintln!("graphdance-node: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
