//! Offline shim for the `bytes` crate (see README.md "Offline builds").
//!
//! Provides `Bytes`/`BytesMut` and the `Buf`/`BufMut` trait methods the
//! GraphDance wire codec uses. `Bytes` is a cheaply-cloneable shared
//! buffer (an `Arc<[u8]>` plus a view range); `BytesMut` is a growable
//! write buffer that freezes into `Bytes`.

use std::ops::{Bound, RangeBounds};
use std::sync::Arc;

/// A cheaply-cloneable immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Bytes remaining in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Is the view empty?
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view of this buffer (zero copy).
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Split off and return the first `n` bytes, advancing `self` past them.
    ///
    /// # Panics
    /// Panics if `n > self.len()`.
    pub fn split_to(&mut self, n: usize) -> Bytes {
        assert!(n <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + n,
        };
        self.start += n;
        head
    }

    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        assert!(self.len() >= N, "buffer underflow");
        let mut out = [0u8; N];
        out.copy_from_slice(&self.data[self.start..self.start + N]);
        self.start += N;
        out
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"{} bytes\"", self.len())
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

/// A growable write buffer.
#[derive(Clone, Default, Debug)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(n: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(n),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

/// Read-side accessors (little-endian variants only, as used by the codec).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Read one byte.
    fn get_u8(&mut self) -> u8;
    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16;
    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;
    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;
    /// Read a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64;
    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64;
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn get_u8(&mut self) -> u8 {
        self.take_array::<1>()[0]
    }
    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.take_array())
    }
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_array())
    }
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_array())
    }
    fn get_i64_le(&mut self) -> i64 {
        i64::from_le_bytes(self.take_array())
    }
    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take_array())
    }
}

/// Write-side accessors (little-endian variants only, as used by the codec).
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, v: u8);
    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16);
    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);
    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);
    /// Append a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64);
    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64);
    /// Append raw bytes.
    fn put_slice(&mut self, s: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn put_u16_le(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn put_i64_le(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn put_f64_le(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn put_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    fn put_u16_le(&mut self, v: u16) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_i64_le(&mut self, v: i64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_f64_le(&mut self, v: f64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u8(7);
        w.put_u16_le(300);
        w.put_u32_le(70_000);
        w.put_u64_le(1 << 40);
        w.put_i64_le(-5);
        w.put_f64_le(2.5);
        w.put_slice(b"hi");
        let mut r = w.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 300);
        assert_eq!(r.get_u32_le(), 70_000);
        assert_eq!(r.get_u64_le(), 1 << 40);
        assert_eq!(r.get_i64_le(), -5);
        assert_eq!(r.get_f64_le(), 2.5);
        assert_eq!(&*r.split_to(2), b"hi");
        assert!(r.is_empty());
    }

    #[test]
    fn slice_and_split_share_storage() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4]);
        let s = b.slice(1..4);
        assert_eq!(&*s, &[1, 2, 3]);
        assert_eq!(&*b.slice(..2), &[0, 1]);
        let mut m = s.clone();
        let head = m.split_to(2);
        assert_eq!(&*head, &[1, 2]);
        assert_eq!(&*m, &[3]);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from(vec![1]);
        let _ = b.get_u32_le();
    }
}
