//! Offline shim for the `rand` crate (see README.md "Offline builds").
//!
//! Implements exactly the API surface GraphDance uses: the [`Rng`]
//! extension trait (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`]
//! (`seed_from_u64`), and [`rngs::SmallRng`]. `SmallRng` is xoshiro256++
//! seeded through SplitMix64 — the same algorithm rand 0.8 uses on
//! 64-bit targets — so statistical quality matches the real crate.
//! Streams are deterministic per seed, which is all the simulated
//! cluster requires (reproducible runs, decorrelated worker streams).

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly-random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from all bit patterns (the
/// `Standard` distribution of real rand).
pub trait Standard: Sized {
    /// Draw one uniform sample.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draw one sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The user-facing extension trait, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, rand 0.8's `SmallRng` on 64-bit platforms.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 seed expansion (as rand_core does).
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(10..20u64);
            assert!((10..20).contains(&v));
            let w = r.gen_range(0..=4usize);
            assert!(w <= 4);
            let f = r.gen_range(-1.5..2.5f64);
            assert!((-1.5..2.5).contains(&f));
            let i = r.gen_range(-5..5i64);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn unit_floats() {
        let mut r = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_probability() {
        let mut r = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "p=0.25 gave {hits}/10000");
    }
}
