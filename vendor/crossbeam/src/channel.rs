//! MPMC channels with the `crossbeam::channel` API surface GraphDance uses:
//! `unbounded`, `bounded`, cloneable `Sender`/`Receiver`, `send`, `recv`,
//! `recv_timeout`, `try_recv`, and the matching error enums.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct State<T> {
    queue: VecDeque<T>,
    cap: Option<usize>,
    senders: usize,
    receivers: usize,
}

struct Chan<T> {
    state: Mutex<State<T>>,
    /// Signalled when a message arrives or all senders disconnect.
    recv_cv: Condvar,
    /// Signalled when capacity frees up or all receivers disconnect.
    send_cv: Condvar,
}

/// The sending half of a channel. Cloneable.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

/// The receiving half of a channel. Cloneable.
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

/// Error returned by [`Sender::send`] when all receivers are gone;
/// carries the unsent message.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv`]: the channel is empty and all
/// senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and all senders are gone.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// The channel is empty and all senders are gone.
    Disconnected,
}

/// Create an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_cap(None)
}

/// Create a bounded channel; `send` blocks while `cap` messages are
/// queued. A capacity of zero is treated as one (rendezvous channels are
/// not needed by GraphDance).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_cap(Some(cap.max(1)))
}

fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            cap,
            senders: 1,
            receivers: 1,
        }),
        recv_cv: Condvar::new(),
        send_cv: Condvar::new(),
    });
    (
        Sender {
            chan: Arc::clone(&chan),
        },
        Receiver { chan },
    )
}

fn lock<T>(chan: &Chan<T>) -> std::sync::MutexGuard<'_, State<T>> {
    match chan.state.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

impl<T> Sender<T> {
    /// Send a message, blocking while a bounded channel is full. Fails
    /// only when every receiver has been dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut st = lock(&self.chan);
        loop {
            if st.receivers == 0 {
                return Err(SendError(msg));
            }
            match st.cap {
                Some(cap) if st.queue.len() >= cap => {
                    st = match self.chan.send_cv.wait(st) {
                        Ok(g) => g,
                        Err(p) => p.into_inner(),
                    };
                }
                _ => break,
            }
        }
        st.queue.push_back(msg);
        drop(st);
        self.chan.recv_cv.notify_one();
        Ok(())
    }

    /// Number of messages currently queued (matches `crossbeam::channel`,
    /// where both halves expose `len`).
    pub fn len(&self) -> usize {
        lock(&self.chan).queue.len()
    }

    /// Is the queue currently empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> std::fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> std::fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        lock(&self.chan).senders += 1;
        Sender {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let remaining = {
            let mut st = lock(&self.chan);
            st.senders -= 1;
            st.senders
        };
        if remaining == 0 {
            self.chan.recv_cv.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Receive a message, blocking until one arrives or all senders are
    /// dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = lock(&self.chan);
        loop {
            if let Some(msg) = st.queue.pop_front() {
                drop(st);
                self.chan.send_cv.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = match self.chan.recv_cv.wait(st) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
    }

    /// Receive with a timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut st = lock(&self.chan);
        loop {
            if let Some(msg) = st.queue.pop_front() {
                drop(st);
                self.chan.send_cv.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            st = match self.chan.recv_cv.wait_timeout(st, deadline - now) {
                Ok((g, _)) => g,
                Err(p) => p.into_inner().0,
            };
        }
    }

    /// Receive without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = lock(&self.chan);
        if let Some(msg) = st.queue.pop_front() {
            drop(st);
            self.chan.send_cv.notify_one();
            return Ok(msg);
        }
        if st.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        lock(&self.chan).queue.len()
    }

    /// Is the queue currently empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        lock(&self.chan).receivers += 1;
        Receiver {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let remaining = {
            let mut st = lock(&self.chan);
            st.receivers -= 1;
            st.receivers
        };
        if remaining == 0 {
            self.chan.send_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn disconnect_semantics() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn queued_messages_survive_sender_drop() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn timeout_fires() {
        let (_tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || tx.send(2).unwrap());
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        t.join().unwrap();
    }

    #[test]
    fn mpmc_all_messages_arrive_once() {
        let (tx, rx) = unbounded();
        let mut senders = Vec::new();
        for i in 0..4u64 {
            let tx = tx.clone();
            senders.push(std::thread::spawn(move || {
                for j in 0..100u64 {
                    tx.send(i * 100 + j).unwrap();
                }
            }));
        }
        drop(tx);
        let mut receivers = Vec::new();
        for _ in 0..3 {
            let rx = rx.clone();
            receivers.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            }));
        }
        drop(rx);
        for s in senders {
            s.join().unwrap();
        }
        let mut all: Vec<u64> = receivers
            .into_iter()
            .flat_map(|r| r.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..400).collect::<Vec<_>>());
    }
}
