//! Offline shim for the `crossbeam` crate (see README.md "Offline builds").
//!
//! GraphDance only uses `crossbeam::channel`; this shim implements the
//! same MPMC semantics (cloneable senders *and* receivers, disconnect on
//! last drop, blocking/timeout/non-blocking receives) over a
//! `Mutex<VecDeque>` + two `Condvar`s. Throughput is lower than real
//! crossbeam's lock-free queues, which is acceptable for the simulated
//! cluster — the network cost model dominates.

pub mod channel;
