//! No-op derive macros backing the offline `serde` shim. The marker
//! traits have blanket impls, so the derives legitimately expand to
//! nothing; `attributes(serde)` keeps any future `#[serde(...)]` field
//! attributes parseable.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
