//! Offline shim for `proptest` (see README.md "Offline builds").
//!
//! Reimplements the slice of proptest GraphDance's property tests use:
//! the [`Strategy`] trait with `prop_map` / `prop_filter` /
//! `prop_recursive`, `any`, `Just`, ranges and tuples as strategies,
//! `collection::vec`, simple `[class]{min,max}` string patterns,
//! `prop_oneof!`, and the `proptest!` test macro (including
//! `#![proptest_config(..)]`).
//!
//! Differences from real proptest, deliberately accepted:
//! - no shrinking — a failing case reports the generated inputs via the
//!   panic message only;
//! - generation is seeded deterministically per test function, so runs
//!   are reproducible (append `GD_PROPTEST_SEED` handling here if fuzzing
//!   variety is ever needed);
//! - `prop_assert!` family is plain `assert!` (panics instead of
//!   returning `TestCaseError`).

use std::rc::Rc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The RNG driving generation.
pub type TestRng = SmallRng;

/// Build the deterministic RNG for one property function.
pub fn new_rng(stream: u64) -> TestRng {
    SmallRng::seed_from_u64(0x9E37_79B9_7F4A_7C15 ^ stream)
}

/// Runner configuration (only `cases` is honoured).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// A generator of values of `Self::Value`.
pub trait Strategy: 'static {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U + 'static,
    {
        Map { inner: self, f }
    }

    /// Keep only values for which `f` returns true (bounded retries).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool + 'static,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Recursive strategies: `f` wraps the strategy-so-far into a branch
    /// (e.g. a list of inner values); applied `depth` times, with the
    /// leaf kept in the union at every level.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> RcStrategy<Self::Value>
    where
        Self: Sized,
        S: Strategy<Value = Self::Value>,
        F: Fn(RcStrategy<Self::Value>) -> S + 'static,
    {
        let mut cur = RcStrategy::new(self);
        for _ in 0..depth {
            let branch = RcStrategy::new(f(cur.clone()));
            // Two leaf shares to one branch share keeps expected size finite.
            cur = RcStrategy::new(Union::weighted(vec![(2, cur.clone()), (1, branch)]));
        }
        cur
    }
}

/// A reference-counted boxed strategy (cheap to clone).
pub struct RcStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> RcStrategy<T> {
    /// Box a strategy.
    pub fn new(s: impl Strategy<Value = T>) -> Self {
        RcStrategy(Rc::new(s))
    }
}

impl<T> Clone for RcStrategy<T> {
    fn clone(&self) -> Self {
        RcStrategy(Rc::clone(&self.0))
    }
}

impl<T: 'static> Strategy for RcStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U + 'static,
    U: 'static,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool + 'static,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter '{}' rejected 1000 consecutive samples",
            self.whence
        );
    }
}

/// Uniform (or weighted) choice between strategies of one value type.
pub struct Union<T> {
    arms: Vec<(u32, RcStrategy<T>)>,
    total: u32,
}

impl<T> Union<T> {
    /// Uniform choice.
    pub fn new(arms: Vec<RcStrategy<T>>) -> Self {
        Union::weighted(arms.into_iter().map(|a| (1, a)).collect())
    }

    /// Weighted choice.
    pub fn weighted(arms: Vec<(u32, RcStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "empty union");
        let total = arms.iter().map(|(w, _)| *w).sum();
        Union { arms, total }
    }
}

impl<T: 'static> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.gen_range(0..self.total);
        for (w, arm) in &self.arms {
            if pick < *w {
                return arm.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum to total")
    }
}

/// Types with a canonical "arbitrary" strategy (see [`any`]).
pub trait Arbitrary: Sized + 'static {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<u64>() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // All bit patterns — includes infinities and NaN, like proptest's
        // full f64 domain; tests filter what they can't handle.
        f64::from_bits(rng.gen::<u64>())
    }
}

/// Strategy for an arbitrary value of `A`.
pub struct Any<A>(std::marker::PhantomData<A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// The canonical strategy for `A` (`any::<u64>()` etc.).
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(std::marker::PhantomData)
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($n:ident . $i:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

/// `Option` strategies (`prop::option::of`).
pub mod option {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Generates `None` about a quarter of the time, `Some(inner)`
    /// otherwise (matching upstream proptest's default weighting).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.gen_range(0..4u32) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Collection-index sampling (`prop::sample::Index`).
pub mod sample {
    use super::{Arbitrary, TestRng};
    use rand::Rng;

    /// An index into a collection whose size is only known inside the
    /// test body: generate one with `any::<Index>()`, then project it
    /// onto a concrete length with [`Index::index`].
    #[derive(Clone, Copy, Debug)]
    pub struct Index(usize);

    impl Index {
        /// Map onto `0..len`.
        ///
        /// # Panics
        /// Panics if `len` is zero, like upstream proptest.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "cannot index an empty collection");
            self.0 % len
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.gen::<u64>() as usize)
        }
    }
}

/// `&'static str` patterns of the form `[class]{min,max}` generate
/// matching strings. Classes support literal chars and `a-z` ranges.
/// Anything fancier panics — extend this parser if a test needs more.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (chars, min, max) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string pattern: {self:?}"));
        let len = rng.gen_range(min..=max);
        (0..len)
            .map(|_| chars[rng.gen_range(0..chars.len())])
            .collect()
    }
}

fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let (class, rest) = rest.split_once(']')?;
    let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = counts.split_once(',')?;
    let (min, max) = (lo.trim().parse().ok()?, hi.trim().parse().ok()?);
    let mut chars = Vec::new();
    let cs: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < cs.len() {
        if i + 2 < cs.len() && cs[i + 1] == '-' {
            for c in cs[i]..=cs[i + 2] {
                chars.push(c);
            }
            i += 3;
        } else {
            chars.push(cs[i]);
            i += 1;
        }
    }
    if chars.is_empty() || min > max {
        return None;
    }
    Some((chars, min, max))
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// A `Vec` of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The proptest test macro: runs each property over `cases` generated
/// inputs. Supports the optional `#![proptest_config(expr)]` header.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                // Seed per function name so properties draw distinct streams.
                let __stream = stringify!($name)
                    .bytes()
                    .fold(0u64, |h, b| h.wrapping_mul(131).wrapping_add(b as u64));
                let mut __rng = $crate::new_rng(__stream);
                for __case in 0..__cfg.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// `prop_assert!` — plain `assert!` in this shim.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `prop_assert_eq!` — plain `assert_eq!` in this shim.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `prop_assert_ne!` — plain `assert_ne!` in this shim.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Choose uniformly between strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::RcStrategy::new($s)),+])
    };
}

/// The glob-import surface tests use.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, RcStrategy, Strategy,
    };

    /// The `prop::` namespace (`prop::collection::vec` etc.).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_pattern_parses() {
        let (chars, min, max) = super::parse_class_pattern("[a-c9 ]{0,12}").unwrap();
        assert_eq!(chars, vec!['a', 'b', 'c', '9', ' ']);
        assert_eq!((min, max), (0, 12));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        /// Ranges honour bounds.
        #[test]
        fn ranges_in_bounds(v in 3u64..17, w in 0usize..=4) {
            prop_assert!((3..17).contains(&v));
            prop_assert!(w <= 4);
        }

        /// Combinators compose.
        #[test]
        fn map_filter_vec(
            xs in prop::collection::vec(any::<i64>().prop_filter("even", |x| x % 2 == 0), 0..8),
            s in "[a-z]{1,4}",
        ) {
            prop_assert!(xs.iter().all(|x| x % 2 == 0));
            prop_assert!((1..=4).contains(&s.len()));
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }

        /// One-of unions pick every arm eventually (statistically).
        #[test]
        fn oneof_generates(v in prop_oneof![Just(1u8), Just(2u8), 5u8..7]) {
            prop_assert!(v == 1 || v == 2 || v == 5 || v == 6);
        }
    }

    proptest! {
        /// Recursive strategies terminate and nest.
        #[test]
        fn recursive_terminates(
            v in Just(0u32).prop_recursive(2, 8, 4, |inner| {
                prop::collection::vec(inner, 0..3).prop_map(|xs| xs.len() as u32 + 1)
            })
        ) {
            prop_assert!(v <= 3);
        }
    }
}
