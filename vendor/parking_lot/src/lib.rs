//! Offline shim for the `parking_lot` crate.
//!
//! crates.io is unreachable in the build environment (see README.md
//! "Offline builds"), so the workspace vendors a minimal stand-in that
//! forwards to `std::sync` primitives while keeping `parking_lot`'s
//! no-poisoning API (`lock()` returns the guard directly). Only the
//! surface GraphDance uses is provided: `Mutex`, `RwLock`, their guards,
//! and `into_inner`.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutex with the `parking_lot` API: `lock()` never returns a poison
/// error — a panic while holding the lock simply releases it.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(t: T) -> Self {
        Mutex(std::sync::Mutex::new(t))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(t) => t,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        })
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(t) => t,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A reader-writer lock with the `parking_lot` API (no poison errors).
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub const fn new(t: T) -> Self {
        RwLock(std::sync::RwLock::new(t))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(t) => t,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        })
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        })
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(t) => t,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// RAII read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// RAII write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
