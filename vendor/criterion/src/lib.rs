//! Offline shim for `criterion` (see README.md "Offline builds").
//!
//! A minimal wall-clock bench harness exposing the API
//! `crates/bench/benches/micro.rs` uses: `Criterion::bench_function`,
//! `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros (including the `name/config/targets` form).
//! It reports mean ns/iter to stdout; no statistics, plots, or HTML.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bench harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Number of measurement samples.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        // Warm-up and iteration-count calibration.
        let warm_end = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_end {
            f(&mut b);
            let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
            if per_iter > 0.0 {
                let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
                b.iters = ((budget / per_iter).clamp(1.0, 1e9)) as u64;
            }
        }
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..self.sample_size {
            f(&mut b);
            total += b.elapsed;
            iters += b.iters;
        }
        let ns = total.as_nanos() as f64 / iters.max(1) as f64;
        println!("{name:<40} {ns:>12.1} ns/iter  ({iters} iters)");
        self
    }
}

/// Passed to the benchmark closure; `iter` times the workload.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run the closure `iters` times and record the wall-clock time.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Define a benchmark group (both the plain and `name/config/targets`
/// forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(2));
        let mut count = 0u64;
        c.bench_function("shim/self_test", |b| b.iter(|| count += 1));
        assert!(count > 0);
    }
}
