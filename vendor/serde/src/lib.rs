//! Offline shim for `serde` (see README.md "Offline builds").
//!
//! GraphDance derives `Serialize`/`Deserialize` on its core data types
//! for downstream embedders but never serializes through serde itself —
//! the wire codec is hand-rolled (`graphdance_engine::codec`). This shim
//! keeps the derives compiling offline: the traits are markers with a
//! blanket impl and the derive macros (from `serde_derive_stub`) expand
//! to nothing. If a future PR needs real serde serialization, replace
//! this vendor crate with the real one.

pub use serde_derive_stub::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
