//! # graphdance-service
//!
//! Multi-tenant query service fronting the GraphDance engine: bounded
//! admission with backpressure, three priority classes (Table I's
//! interactive / heavy / background workload mix) under deficit-round-
//! robin weighted scheduling, per-query deadlines on `common::time::now()`
//! (so the DST virtual clock exercises the same enforcement path), and
//! prompt cooperative cancellation through the engine's `CancelQuery`
//! drain protocol — teardown is verified against the WeightLedger
//! conservation and MsgLedger quiesce invariants (DESIGN.md §13).
//!
//! Layering:
//!
//! * [`queue`] — the pure, deterministic admission/priority queue
//!   (property-tested in isolation in `tests/queue_props.rs`).
//! * [`Service`] — the threaded front-end: one dispatcher thread drives
//!   queue→engine, per-class deadlines, and completion accounting.
//! * [`obs`] — `svc.*` metrics behind the `obs` feature (zero-sized
//!   stubs otherwise), merged into the engine's Prometheus/JSON export.

pub mod config;
pub mod obs;
pub mod queue;
pub mod service;

pub use config::{Priority, ServiceConfig, NUM_CLASSES};
pub use queue::{AdmissionQueue, Admitted};
pub use service::{Service, SvcStats, Ticket};
