//! Service-level knobs: priority classes and admission/scheduling limits.

use std::time::Duration;

/// Number of priority classes (one lane per [`Priority`] variant).
pub const NUM_CLASSES: usize = 3;

/// The three workload classes of Table I, mapped onto service priorities.
///
/// * `Interactive` — short point lookups (LDBC IS): latency-critical.
/// * `Heavy` — complex multi-hop reads (LDBC IC): throughput-oriented.
/// * `Background` — full-graph analytics: best-effort, must still make
///   progress (the weighted scheduler never starves it).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Priority {
    Interactive,
    Heavy,
    Background,
}

impl Priority {
    /// All classes, lane order (also the weighted-round-robin visit order).
    pub const ALL: [Priority; NUM_CLASSES] =
        [Priority::Interactive, Priority::Heavy, Priority::Background];

    /// The class's lane index (`0..NUM_CLASSES`).
    pub fn index(self) -> usize {
        match self {
            Priority::Interactive => 0,
            Priority::Heavy => 1,
            Priority::Background => 2,
        }
    }

    /// Lane index back to class (modulo, so any integer is a valid mix
    /// selector in seeded schedules).
    pub fn from_index(i: usize) -> Priority {
        Priority::ALL[i % NUM_CLASSES]
    }

    /// Stable lowercase name (metric suffixes, bench JSON keys).
    pub fn name(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Heavy => "heavy",
            Priority::Background => "background",
        }
    }
}

/// Admission and scheduling configuration for [`crate::Service`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Total queued submissions across all classes. A submission arriving
    /// with the queue full is shed with
    /// [`GdError::Overloaded`](graphdance_common::GdError::Overloaded)
    /// instead of queueing unboundedly (backpressure at the door).
    pub queue_capacity: usize,
    /// Queries dispatched to the engine but not yet finished. The engine
    /// itself interleaves the active set per worker quantum; this cap
    /// bounds the engine-side working set per tenant-facing service.
    pub max_concurrent: usize,
    /// Deficit-round-robin quantum per class, [`Priority`] lane order.
    /// A backlogged class receives `weight / Σ weights` of dispatch slots.
    pub weights: [u32; NUM_CLASSES],
    /// Default admission-to-completion deadline per class, lane order.
    /// Applied when the submitter does not pass an explicit deadline; the
    /// engine enforces it on `common::time::now()` so the DST virtual
    /// clock exercises the same code path.
    pub default_deadline: [Duration; NUM_CLASSES],
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            queue_capacity: 256,
            max_concurrent: 8,
            // 8:3:1 — interactive dominates, background is guaranteed one
            // dispatch per rotation (never starved).
            weights: [8, 3, 1],
            default_deadline: [
                Duration::from_secs(2),
                Duration::from_secs(15),
                Duration::from_secs(60),
            ],
        }
    }
}

impl ServiceConfig {
    /// Default knobs with a different queue bound.
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Default knobs with a different concurrency cap.
    pub fn with_concurrency(mut self, max_concurrent: usize) -> Self {
        self.max_concurrent = max_concurrent;
        self
    }

    /// The default deadline for `class`.
    pub fn deadline_for(&self, class: Priority) -> Duration {
        self.default_deadline[class.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_indices_roundtrip() {
        for c in Priority::ALL {
            assert_eq!(Priority::from_index(c.index()), c);
        }
        assert_eq!(Priority::from_index(NUM_CLASSES + 1), Priority::Heavy);
    }

    #[test]
    fn default_weights_are_all_nonzero() {
        let c = ServiceConfig::default();
        assert!(c.weights.iter().all(|&w| w > 0), "zero weight = starvation");
        assert!(c.queue_capacity > 0 && c.max_concurrent > 0);
    }
}
