//! The bounded, class-aware admission queue.
//!
//! Pure data structure — no threads, no clock reads — so the scheduling
//! policy is deterministic and property-testable in isolation (see
//! `tests/queue_props.rs`). The service front-end drives it under a mutex;
//! the DST service runner exercises the same admission order through the
//! virtual clock.
//!
//! Policy:
//!
//! * **Bounded admission** — a global capacity across all classes; a full
//!   queue sheds with [`GdError::Overloaded`] instead of growing.
//! * **FIFO within a class** — each class is one lane, served in arrival
//!   order.
//! * **Deficit round robin across classes** — the dispatcher visits lanes
//!   in a fixed rotation; on arrival at a backlogged lane it grants the
//!   lane its configured quantum and serves up to that many queries before
//!   moving on. Every backlogged lane is served at least once per
//!   rotation, so no class starves; over a backlogged interval, class `c`
//!   receives `weights[c] / Σ weights` of the dispatch slots.
//! * **Deadline expiry** — queued entries whose deadline passed are
//!   removed in deterministic `(deadline, token)` order, so incremental
//!   expiry sweeps observe the same order as one final sweep.

use std::collections::VecDeque;
use std::time::Instant;

use graphdance_common::GdError;

use crate::config::{Priority, NUM_CLASSES};

/// One admitted-but-not-yet-dispatched submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Admitted<T> {
    /// Admission sequence number — unique per queue, monotonically
    /// increasing, so it doubles as an arrival-order witness.
    pub token: u64,
    pub class: Priority,
    /// When the submission was admitted (queue-wait histograms).
    pub enqueued_at: Instant,
    /// Hard deadline: if still queued past this instant the entry is
    /// swept by [`AdmissionQueue::expire`] without ever dispatching.
    pub deadline: Instant,
    pub item: T,
}

/// Bounded multi-class FIFO with deficit-round-robin dispatch.
#[derive(Debug)]
pub struct AdmissionQueue<T> {
    capacity: usize,
    weights: [u64; NUM_CLASSES],
    lanes: [VecDeque<Admitted<T>>; NUM_CLASSES],
    /// Remaining quantum of the lane the rotation is currently serving.
    deficit: [u64; NUM_CLASSES],
    /// The lane the rotation is positioned at.
    cursor: usize,
    len: usize,
    next_token: u64,
}

impl<T> AdmissionQueue<T> {
    /// An empty queue. `weights` must all be non-zero (a zero-weight lane
    /// would never be granted a quantum — starvation by configuration).
    pub fn new(capacity: usize, weights: [u32; NUM_CLASSES]) -> Self {
        assert!(
            weights.iter().all(|&w| w > 0),
            "class weights must be non-zero"
        );
        AdmissionQueue {
            capacity,
            weights: weights.map(u64::from),
            lanes: Default::default(),
            deficit: [0; NUM_CLASSES],
            cursor: 0,
            len: 0,
            next_token: 0,
        }
    }

    /// Total queued entries across all classes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the queue empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The admission bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Queued entries in one class's lane.
    pub fn class_len(&self, class: Priority) -> usize {
        self.lanes[class.index()].len()
    }

    /// Admit a submission, or shed it with [`GdError::Overloaded`] when
    /// the queue is at capacity. Returns the admission token.
    pub fn try_admit(
        &mut self,
        class: Priority,
        enqueued_at: Instant,
        deadline: Instant,
        item: T,
    ) -> Result<u64, GdError> {
        if self.len >= self.capacity {
            return Err(GdError::Overloaded);
        }
        let token = self.next_token;
        self.next_token += 1;
        self.lanes[class.index()].push_back(Admitted {
            token,
            class,
            enqueued_at,
            deadline,
            item,
        });
        self.len += 1;
        Ok(token)
    }

    /// Dispatch the next entry under deficit round robin, or `None` when
    /// the queue is empty.
    pub fn pop_next(&mut self) -> Option<Admitted<T>> {
        if self.len == 0 {
            return None;
        }
        // Bounded: each iteration either serves the cursor lane or moves
        // the cursor; a full rotation reaches some non-empty lane and
        // grants it a quantum ≥ 1.
        loop {
            let c = self.cursor;
            if self.lanes[c].is_empty() {
                // Idle lanes bank no credit across their idle period.
                self.deficit[c] = 0;
                self.cursor = (c + 1) % NUM_CLASSES;
                continue;
            }
            if self.deficit[c] == 0 {
                // Rotation just arrived at a backlogged lane: grant its
                // quantum.
                self.deficit[c] = self.weights[c];
            }
            self.deficit[c] -= 1;
            self.len -= 1;
            let out = self.lanes[c].pop_front();
            if self.deficit[c] == 0 {
                self.cursor = (c + 1) % NUM_CLASSES;
            }
            return out;
        }
    }

    /// Remove a queued entry by token (client cancellation before
    /// dispatch). `None` if the token is not queued (already dispatched,
    /// expired, or never admitted).
    pub fn remove(&mut self, token: u64) -> Option<Admitted<T>> {
        for lane in &mut self.lanes {
            if let Some(pos) = lane.iter().position(|a| a.token == token) {
                self.len -= 1;
                return lane.remove(pos);
            }
        }
        None
    }

    /// Sweep out every queued entry whose deadline is at or before `now`,
    /// in `(deadline, token)` order. Incremental sweeps at increasing
    /// instants observe the same cumulative order as a single final sweep
    /// (asserted by a property test), so expiry accounting is
    /// snapshot-stable.
    pub fn expire(&mut self, now: Instant) -> Vec<Admitted<T>> {
        let mut out = Vec::new();
        for lane in &mut self.lanes {
            let mut keep = VecDeque::with_capacity(lane.len());
            for a in lane.drain(..) {
                if a.deadline <= now {
                    out.push(a);
                } else {
                    keep.push_back(a);
                }
            }
            *lane = keep;
        }
        self.len -= out.len();
        out.sort_by_key(|a| (a.deadline, a.token));
        out
    }

    /// The earliest queued deadline (the dispatcher's next expiry timer).
    pub fn next_deadline(&self) -> Option<Instant> {
        self.lanes
            .iter()
            .flat_map(|l| l.iter().map(|a| a.deadline))
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn t0() -> Instant {
        graphdance_common::time::now()
    }

    fn far() -> Instant {
        t0() + Duration::from_secs(3600)
    }

    #[test]
    fn sheds_with_overloaded_at_capacity() {
        let mut q = AdmissionQueue::new(2, [1, 1, 1]);
        q.try_admit(Priority::Interactive, t0(), far(), 'a')
            .unwrap();
        q.try_admit(Priority::Background, t0(), far(), 'b').unwrap();
        assert!(matches!(
            q.try_admit(Priority::Interactive, t0(), far(), 'c'),
            Err(GdError::Overloaded)
        ));
        assert_eq!(q.len(), 2);
        // Draining one slot re-opens admission.
        q.pop_next().unwrap();
        q.try_admit(Priority::Heavy, t0(), far(), 'd').unwrap();
    }

    #[test]
    fn fifo_within_a_class() {
        let mut q = AdmissionQueue::new(16, [1, 1, 1]);
        for i in 0..5 {
            q.try_admit(Priority::Heavy, t0(), far(), i).unwrap();
        }
        let mut got = Vec::new();
        while let Some(a) = q.pop_next() {
            got.push(a.item);
        }
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn drr_shares_follow_weights_under_backlog() {
        // Keep every lane backlogged and count dispatches per class over
        // many rotations: shares must match the 4:2:1 quanta.
        let mut q = AdmissionQueue::new(1024, [4, 2, 1]);
        let mut counts = [0u32; NUM_CLASSES];
        for _ in 0..70 {
            for c in Priority::ALL {
                while q.class_len(c) < 4 {
                    q.try_admit(c, t0(), far(), ()).unwrap();
                }
            }
            let a = q.pop_next().unwrap();
            counts[a.class.index()] += 1;
        }
        // 70 dispatches = 10 full rotations of 7 quanta.
        assert_eq!(counts, [40, 20, 10], "weighted shares off: {counts:?}");
    }

    #[test]
    fn background_is_served_every_rotation() {
        let mut q = AdmissionQueue::new(1024, [8, 3, 1]);
        q.try_admit(Priority::Background, t0(), far(), ()).unwrap();
        // A full interactive backlog may delay background by at most one
        // rotation's worth of higher-class quanta (8 + 3).
        for _ in 0..100 {
            q.try_admit(Priority::Interactive, t0(), far(), ()).unwrap();
        }
        let mut pops = 0;
        loop {
            pops += 1;
            if q.pop_next().unwrap().class == Priority::Background {
                break;
            }
        }
        assert!(pops <= 12, "background starved for {pops} dispatches");
    }

    #[test]
    fn expire_sweeps_in_deadline_order() {
        let mut q = AdmissionQueue::new(16, [1, 1, 1]);
        let base = t0();
        let d = |ms| base + Duration::from_millis(ms);
        q.try_admit(Priority::Interactive, base, d(30), 'a')
            .unwrap();
        q.try_admit(Priority::Background, base, d(10), 'b').unwrap();
        q.try_admit(Priority::Heavy, base, d(20), 'c').unwrap();
        q.try_admit(Priority::Heavy, base, d(99), 'd').unwrap();
        let swept: Vec<char> = q.expire(d(40)).into_iter().map(|a| a.item).collect();
        assert_eq!(swept, vec!['b', 'c', 'a']);
        assert_eq!(q.len(), 1);
        assert_eq!(q.next_deadline(), Some(d(99)));
    }

    #[test]
    fn remove_targets_one_token() {
        let mut q = AdmissionQueue::new(16, [1, 1, 1]);
        let a = q.try_admit(Priority::Heavy, t0(), far(), 'a').unwrap();
        let b = q.try_admit(Priority::Heavy, t0(), far(), 'b').unwrap();
        assert_eq!(q.remove(a).unwrap().item, 'a');
        assert!(q.remove(a).is_none(), "remove is not idempotent-by-echo");
        assert_eq!(q.len(), 1);
        assert_eq!(q.remove(b).unwrap().item, 'b');
        assert!(q.is_empty());
    }
}
