//! Service-side observability glue: `svc.*` metrics behind the `obs`
//! cargo feature, zero-sized no-op stubs without it (same pattern as
//! `graphdance_engine::obs`; the stub's zero cost is verified by the
//! `size_of` test below).
//!
//! All recording happens under the service-state mutex, so one metrics
//! shard satisfies the registry's single-writer discipline (the mutex is
//! the ordering edge between successive writers).

#[cfg(feature = "obs")]
pub use real::SvcObs;

#[cfg(feature = "obs")]
mod real {
    use graphdance_obs::{MetricId, Registry, ShardHandle};

    use crate::config::{Priority, NUM_CLASSES};

    /// Registered `svc.*` metric ids plus the (mutex-guarded) shard that
    /// records them.
    #[derive(Debug)]
    pub struct SvcObs {
        registry: std::sync::Arc<Registry>,
        shard: ShardHandle,
        admitted: MetricId,
        rejected: MetricId,
        cancelled: MetricId,
        deadline_expired: MetricId,
        queue_depth: MetricId,
        /// Queue-wait (admission → dispatch/expiry) in µs, one histogram
        /// per class, [`Priority`] lane order.
        queue_wait_us: [MetricId; NUM_CLASSES],
    }

    impl SvcObs {
        /// Register every service metric against `registry` and take the
        /// service's single recording shard.
        pub fn new(registry: std::sync::Arc<Registry>) -> SvcObs {
            let admitted = registry.counter("svc.admitted");
            let rejected = registry.counter("svc.rejected");
            let cancelled = registry.counter("svc.cancelled");
            let deadline_expired = registry.counter("svc.deadline_expired");
            let queue_depth = registry.gauge("svc.queue_depth");
            let queue_wait_us = Priority::ALL
                .map(|c| registry.histogram(&format!("svc.queue_wait_us.{}", c.name())));
            let shard = registry.shard();
            SvcObs {
                registry,
                shard,
                admitted,
                rejected,
                cancelled,
                deadline_expired,
                queue_depth,
                queue_wait_us,
            }
        }

        /// A `SvcObs` over its own fresh registry (the common case: the
        /// service merges this into the engine snapshot at scrape time).
        pub fn fresh() -> SvcObs {
            SvcObs::new(std::sync::Arc::new(Registry::new()))
        }

        /// The registry the `svc.*` metrics live in (scrape via
        /// [`Registry::snapshot`]).
        pub fn registry(&self) -> &std::sync::Arc<Registry> {
            &self.registry
        }

        pub fn admitted(&self) {
            self.shard.inc(self.admitted);
        }

        pub fn rejected(&self) {
            self.shard.inc(self.rejected);
        }

        pub fn cancelled(&self) {
            self.shard.inc(self.cancelled);
        }

        pub fn deadline_expired(&self) {
            self.shard.inc(self.deadline_expired);
        }

        pub fn queue_depth(&self, depth: u64) {
            self.shard.set(self.queue_depth, depth);
        }

        pub fn queue_wait(&self, class: Priority, wait_us: u64) {
            self.shard
                .observe(self.queue_wait_us[class.index()], wait_us);
        }
    }
}

#[cfg(not(feature = "obs"))]
pub use stub::SvcObs;

#[cfg(not(feature = "obs"))]
mod stub {
    use crate::config::Priority;

    /// Zero-sized no-op stand-in for the instrumented `SvcObs`.
    #[derive(Debug, Default, Clone, Copy)]
    pub struct SvcObs;

    impl SvcObs {
        pub fn fresh() -> SvcObs {
            SvcObs
        }

        pub fn admitted(&self) {}
        pub fn rejected(&self) {}
        pub fn cancelled(&self) {}
        pub fn deadline_expired(&self) {}
        pub fn queue_depth(&self, _depth: u64) {}
        pub fn queue_wait(&self, _class: Priority, _wait_us: u64) {}
    }
}

#[cfg(all(test, not(feature = "obs")))]
mod zero_cost_tests {
    use super::SvcObs;

    #[test]
    fn stub_is_zero_sized() {
        assert_eq!(std::mem::size_of::<SvcObs>(), 0);
    }
}
