//! The multi-tenant service front-end over a running [`GraphDance`]
//! cluster.
//!
//! Clients submit `(priority class, plan, params)`; the service applies
//! **admission control** (bounded queue, [`GdError::Overloaded`] shed),
//! **weighted scheduling** (deficit round robin across the three classes,
//! capped at `max_concurrent` engine-side queries — the engine itself
//! interleaves the active set per worker quantum), **per-query deadlines**
//! (queued entries expire in the queue; dispatched entries carry the
//! deadline into the coordinator, which enforces it on
//! `common::time::now()`), and **cooperative cancellation** (queued
//! entries are dequeued; in-flight queries go through the engine's
//! `CancelQuery` drain protocol — see DESIGN.md §13).
//!
//! One dispatcher thread owns the transition queue→engine; submitters
//! only take the state mutex long enough for the admission decision, so
//! backpressure is synchronous (a full queue rejects on the caller's
//! thread, before any engine resources are touched).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::Mutex;

use graphdance_common::time::now;
use graphdance_common::{GdError, GdResult, QueryId, Value};
use graphdance_engine::{GraphDance, QueryHandle, QueryResult};
use graphdance_query::plan::Plan;

use crate::config::{Priority, ServiceConfig};
use crate::obs::SvcObs;
use crate::queue::AdmissionQueue;

/// A submission waiting in the admission queue.
struct Pending {
    plan: Plan,
    params: Vec<Value>,
    reply: Sender<GdResult<QueryResult>>,
}

/// A dispatched query the dispatcher is tracking to completion.
struct Running {
    token: u64,
    handle: QueryHandle,
    reply: Sender<GdResult<QueryResult>>,
}

/// Mutable service state, all under one mutex (admission decisions,
/// dispatch, completion reaping, and the counters the reconciliation
/// invariant is stated over are serialized against each other, so
/// [`Service::stats`] is always an exact cut).
struct SvcState {
    queue: AdmissionQueue<Pending>,
    running: Vec<Running>,
    admitted: u64,
    rejected: u64,
    completed: u64,
    cancelled: u64,
    deadline_expired: u64,
}

struct Shared {
    engine: GraphDance,
    config: ServiceConfig,
    state: Mutex<SvcState>,
    /// Nudges the dispatcher out of its idle park.
    wake: Sender<()>,
    stop: AtomicBool,
    obs: SvcObs,
}

/// A point-in-time cut of the service counters. Taken under the state
/// mutex, so the conservation identity holds exactly at every cut:
///
/// `admitted == completed + cancelled + deadline_expired + in_flight`
///
/// (`rejected` submissions were never admitted and appear in no other
/// column.)
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SvcStats {
    pub admitted: u64,
    pub rejected: u64,
    pub completed: u64,
    pub cancelled: u64,
    pub deadline_expired: u64,
    /// Admitted but unresolved: still queued or running in the engine.
    pub in_flight: u64,
    /// Of `in_flight`, still in the admission queue.
    pub queued: u64,
}

impl SvcStats {
    /// Does the admission conservation identity hold for this cut?
    pub fn reconciles(&self) -> bool {
        self.admitted == self.completed + self.cancelled + self.deadline_expired + self.in_flight
    }
}

/// A pending service submission; resolves to the query's result, or to
/// `QueryCancelled` / `QueryTimeout` / `Overloaded`-class errors when the
/// service tore it down first.
pub struct Ticket {
    token: u64,
    class: Priority,
    rx: Receiver<GdResult<QueryResult>>,
}

impl Ticket {
    /// The admission token (pass to [`Service::cancel`]). For a query
    /// torn down before dispatch, error payloads echo this token as the
    /// `QueryId`.
    pub fn token(&self) -> u64 {
        self.token
    }

    /// The class the submission was admitted under.
    pub fn class(&self) -> Priority {
        self.class
    }

    /// Non-blocking poll: `Some(result)` once resolved.
    pub fn try_result(&self) -> Option<GdResult<QueryResult>> {
        self.rx.try_recv().ok()
    }

    /// Block until the submission resolves.
    pub fn wait(self) -> GdResult<QueryResult> {
        self.rx.recv().unwrap_or(Err(GdError::EngineClosed))
    }

    /// Block up to `timeout`.
    pub fn wait_timeout(self, timeout: Duration) -> GdResult<QueryResult> {
        match self.rx.recv_timeout(timeout) {
            Ok(r) => r,
            Err(_) => Err(GdError::EngineClosed),
        }
    }
}

/// The service front-end; see the module docs.
pub struct Service {
    shared: Arc<Shared>,
    dispatcher: Option<std::thread::JoinHandle<()>>,
}

impl Service {
    /// Front a running engine with an admission-controlled service.
    pub fn start(engine: GraphDance, config: ServiceConfig) -> Service {
        // Coalesced wake token: submitters nudge only when no nudge is
        // already pending, so the channel stays O(1) under bursts.
        let (wake, wake_rx) = unbounded();
        let shared = Arc::new(Shared {
            engine,
            state: Mutex::new(SvcState {
                queue: AdmissionQueue::new(config.queue_capacity, config.weights),
                running: Vec::with_capacity(config.max_concurrent),
                admitted: 0,
                rejected: 0,
                completed: 0,
                cancelled: 0,
                deadline_expired: 0,
            }),
            config,
            wake,
            stop: AtomicBool::new(false),
            obs: SvcObs::fresh(),
        });
        let disp = Arc::clone(&shared);
        let dispatcher = std::thread::Builder::new()
            .name("gd-service".into())
            .spawn(move || dispatch_loop(&disp, &wake_rx))
            // Service startup, before any submission: a failed spawn is an
            // unusable service, not a wedged query.
            .expect("spawn service dispatcher"); // lint: allow(hot-path-panics)
        Service {
            shared,
            dispatcher: Some(dispatcher),
        }
    }

    /// Submit under `class` with the class's default deadline.
    pub fn submit(&self, class: Priority, plan: &Plan, params: Vec<Value>) -> GdResult<Ticket> {
        self.submit_with_deadline(class, plan, params, None)
    }

    /// Submit under `class`, overriding the admission-to-completion
    /// deadline. Rejects **synchronously** with [`GdError::Overloaded`]
    /// when the admission queue is full — backpressure at the door, no
    /// unbounded buildup.
    pub fn submit_with_deadline(
        &self,
        class: Priority,
        plan: &Plan,
        params: Vec<Value>,
        deadline: Option<Duration>,
    ) -> GdResult<Ticket> {
        // sync: stop flag; a submission racing shutdown may still be
        // admitted — the dispatcher's drain then fails it with EngineClosed
        if self.shared.stop.load(Ordering::Relaxed) {
            return Err(GdError::EngineClosed);
        }
        let submitted_at = now();
        let deadline = submitted_at + deadline.unwrap_or(self.shared.config.deadline_for(class));
        let (reply, rx) = bounded(1);
        let mut st = self.shared.state.lock();
        match st.queue.try_admit(
            class,
            submitted_at,
            deadline,
            Pending {
                plan: plan.clone(),
                params,
                reply,
            },
        ) {
            Ok(token) => {
                st.admitted += 1;
                self.shared.obs.admitted();
                self.shared.obs.queue_depth(st.queue.len() as u64);
                drop(st);
                self.shared.nudge();
                Ok(Ticket { token, class, rx })
            }
            Err(e) => {
                st.rejected += 1;
                self.shared.obs.rejected();
                Err(e)
            }
        }
    }

    /// Request prompt cancellation of a ticket. Idempotent and
    /// asynchronous: a still-queued submission is dequeued immediately
    /// (its ticket resolves to `QueryCancelled`); an in-flight query goes
    /// through the engine's drain protocol and resolves when its weight
    /// has been returned to the ledger. A ticket that already resolved is
    /// left untouched.
    pub fn cancel(&self, token: u64) {
        let mut st = self.shared.state.lock();
        if let Some(a) = st.queue.remove(token) {
            st.cancelled += 1;
            self.shared.obs.cancelled();
            self.shared.obs.queue_depth(st.queue.len() as u64);
            self.shared
                .obs
                .queue_wait(a.class, micros_between(a.enqueued_at, now()));
            let _ = a
                .item
                .reply
                .send(Err(GdError::QueryCancelled(QueryId(a.token))));
            return;
        }
        if let Some(r) = st.running.iter().find(|r| r.token == token) {
            // Count it when the drain completes and the handle resolves.
            self.shared.engine.cancel(r.handle.id());
        }
        drop(st);
        self.shared.nudge();
    }

    /// An exact cut of the service counters (see [`SvcStats`]).
    pub fn stats(&self) -> SvcStats {
        let st = self.shared.state.lock();
        SvcStats {
            admitted: st.admitted,
            rejected: st.rejected,
            completed: st.completed,
            cancelled: st.cancelled,
            deadline_expired: st.deadline_expired,
            in_flight: (st.queue.len() + st.running.len()) as u64,
            queued: st.queue.len() as u64,
        }
    }

    /// The engine configuration knobs the service was started with.
    pub fn config(&self) -> &ServiceConfig {
        &self.shared.config
    }

    /// The fronted engine (e.g. for transactional updates).
    pub fn engine(&self) -> &GraphDance {
        &self.shared.engine
    }

    /// Merged metrics export: every engine metric plus the `svc.*` series
    /// (admission counters, queue-depth gauge, per-class queue-wait
    /// histograms). Export with
    /// [`graphdance_obs::MetricsSnapshot::to_json`] or `to_prometheus`.
    #[cfg(feature = "obs")]
    pub fn metrics(&self) -> graphdance_obs::MetricsSnapshot {
        let mut snap = self.shared.engine.metrics();
        snap.metrics
            .extend(self.shared.obs.registry().snapshot().metrics);
        snap
    }

    /// Stop the dispatcher and shut the engine down. Unresolved tickets
    /// fail with `EngineClosed`.
    pub fn shutdown(mut self) {
        // sync: stop flag; the dispatcher join below is the ordering edge
        self.shared.stop.store(true, Ordering::Relaxed);
        self.shared.nudge();
        if let Some(t) = self.dispatcher.take() {
            let _ = t.join();
        }
        let shared = Arc::clone(&self.shared);
        drop(self); // release our Arc so the unwrap below can succeed
        if let Ok(sh) = Arc::try_unwrap(shared) {
            sh.engine.shutdown();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        // Best-effort if `shutdown` was not called: stop the dispatcher;
        // the engine's own Drop detaches its threads.
        // sync: stop flag; the dispatcher join below is the ordering edge
        self.shared.stop.store(true, Ordering::Relaxed);
        self.shared.nudge();
        if let Some(t) = self.dispatcher.take() {
            let _ = t.join();
        }
    }
}

impl Shared {
    /// Wake the dispatcher, coalescing: skip the send when a nudge is
    /// already pending (benign race — a redundant token only costs one
    /// extra loop iteration).
    fn nudge(&self) {
        if self.wake.is_empty() {
            let _ = self.wake.send(());
        }
    }
}

fn micros_between(from: std::time::Instant, to: std::time::Instant) -> u64 {
    to.saturating_duration_since(from).as_micros() as u64
}

/// The dispatcher: expire queued deadlines, dispatch under the weighted
/// policy while concurrency slots are free, reap engine completions, park
/// briefly when idle.
fn dispatch_loop(shared: &Shared, wake_rx: &Receiver<()>) {
    loop {
        let mut worked = false;
        {
            let mut st = shared.state.lock();
            let t = now();
            // 1) Queued entries whose deadline passed never reach the
            //    engine; their tickets fail with QueryTimeout.
            for a in st.queue.expire(t) {
                st.deadline_expired += 1;
                shared.obs.deadline_expired();
                shared
                    .obs
                    .queue_wait(a.class, micros_between(a.enqueued_at, t));
                let _ = a
                    .item
                    .reply
                    .send(Err(GdError::QueryTimeout(QueryId(a.token))));
                worked = true;
            }
            // 2) Dispatch in deficit-round-robin order up to the
            //    concurrency cap. The deadline travels into the
            //    coordinator, which enforces it on common::time::now().
            while st.running.len() < shared.config.max_concurrent {
                let Some(a) = st.queue.pop_next() else { break };
                shared
                    .obs
                    .queue_wait(a.class, micros_between(a.enqueued_at, t));
                let read_ts = shared.engine.txn().read_ts().max(1);
                let handle = shared.engine.submit_with_deadline(
                    &a.item.plan,
                    a.item.params,
                    read_ts,
                    Some(a.deadline),
                );
                st.running.push(Running {
                    token: a.token,
                    handle,
                    reply: a.item.reply,
                });
                worked = true;
            }
            shared.obs.queue_depth(st.queue.len() as u64);
            // 3) Reap completions; classify into the conservation columns.
            let mut i = 0;
            while i < st.running.len() {
                match st.running[i].handle.try_result() {
                    Some(result) => {
                        let run = st.running.swap_remove(i);
                        match &result {
                            Err(GdError::QueryCancelled(_)) => {
                                st.cancelled += 1;
                                shared.obs.cancelled();
                            }
                            Err(GdError::QueryTimeout(_)) => {
                                st.deadline_expired += 1;
                                shared.obs.deadline_expired();
                            }
                            // Successes and hard errors both count as
                            // completed: the engine resolved them.
                            _ => st.completed += 1,
                        }
                        let _ = run.reply.send(result);
                        worked = true;
                    }
                    None => i += 1,
                }
            }
            // sync: stop flag read under the state lock so the drain
            // decision and the queue contents are one consistent cut
            if shared.stop.load(Ordering::Relaxed) {
                // Drain: fail everything still queued; drop running reply
                // channels (their tickets observe EngineClosed when the
                // engine is shut down next).
                while let Some(a) = st.queue.pop_next() {
                    let _ = a.item.reply.send(Err(GdError::EngineClosed));
                }
                shared.obs.queue_depth(0);
                return;
            }
        }
        if !worked {
            // Idle: park until a submit/cancel nudge or a short poll tick
            // (completion reaping and queued-deadline expiry have no event
            // channel of their own, so the park is bounded).
            let _ = wake_rx.recv_timeout(Duration::from_micros(200));
        }
    }
}
