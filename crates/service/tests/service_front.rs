//! Threaded front-end integration: admission backpressure, weighted
//! dispatch, per-query deadlines, cancellation of queued and in-flight
//! work, and the admission-conservation identity
//! (`admitted == completed + cancelled + deadline_expired + in_flight`)
//! at every observable cut.
//!
//! The strict determinism story for cancellation (bit-identical replay,
//! ledger quiesce under faults) lives in the DST suite
//! (`tests/sim_service.rs` at the workspace root); these tests exercise
//! the real threaded stack with loose timing.

use std::time::Duration;

use graphdance_common::{GdError, Partitioner, Value, VertexId};
use graphdance_engine::{EngineConfig, GraphDance};
use graphdance_query::plan::Plan;
use graphdance_query::QueryBuilder;
use graphdance_service::{Priority, Service, ServiceConfig};
use graphdance_storage::{Graph, GraphBuilder};

/// `n` vertices; vertex `i` knows the next `deg` vertices around the
/// ring, so `khop-count` fan-out is `deg^hops` — an arbitrarily slow,
/// cancellable workload at small graph sizes.
fn chord_graph(n: u64, deg: u64, nodes: u32, workers: u32) -> Graph {
    let mut b = GraphBuilder::new(Partitioner::new(nodes, workers));
    let person = b.schema_mut().register_vertex_label("Person");
    let knows = b.schema_mut().register_edge_label("knows");
    for i in 0..n {
        b.add_vertex(VertexId(i), person, vec![]).expect("fresh id");
    }
    for i in 0..n {
        for d in 1..=deg {
            b.add_edge(VertexId(i), knows, VertexId((i + d) % n), vec![])
                .expect("valid endpoints");
        }
    }
    b.finish()
}

fn khop_plan(graph: &Graph, hops: i64) -> Plan {
    let mut b = QueryBuilder::new(graph.schema());
    b.v_param(0);
    let c = b.alloc_slot();
    b.repeat(1, hops, c, |r| {
        r.out("knows");
    });
    b.dedup();
    b.compile().expect("khop compiles")
}

fn khopcount_plan(graph: &Graph, hops: i64) -> Plan {
    let mut b = QueryBuilder::new(graph.schema());
    b.v_param(0);
    let c = b.alloc_slot();
    b.repeat(1, hops, c, |r| {
        r.out("knows");
    });
    b.count();
    b.compile().expect("khop-count compiles")
}

fn start(graph: &Graph, config: ServiceConfig) -> Service {
    let engine = GraphDance::start(graph.clone(), EngineConfig::new(1, 2));
    Service::start(engine, config)
}

fn wait_until(mut cond: impl FnMut() -> bool, what: &str) {
    for _ in 0..5000 {
        if cond() {
            return;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    panic!("timed out waiting for: {what}");
}

const WAIT: Duration = Duration::from_secs(60);

#[test]
fn all_three_classes_complete_and_reconcile() {
    let graph = chord_graph(32, 1, 1, 2);
    let svc = start(&graph, ServiceConfig::default());
    let plan = khop_plan(&graph, 3);
    let mut tickets = Vec::new();
    for class in Priority::ALL {
        tickets.push(
            svc.submit(class, &plan, vec![Value::Vertex(VertexId(0))])
                .expect("queue has room"),
        );
    }
    for t in tickets {
        let r = t.wait_timeout(WAIT).expect("query completes");
        assert_eq!(r.rows.len(), 3, "3-hop on a plain ring reaches 3 vertices");
    }
    let s = svc.stats();
    assert_eq!((s.admitted, s.completed, s.in_flight), (3, 3, 0));
    assert!(s.reconciles(), "{s:?}");
    svc.shutdown();
}

#[test]
fn full_queue_sheds_with_overloaded() {
    let graph = chord_graph(64, 8, 1, 2);
    let svc = start(
        &graph,
        ServiceConfig::default()
            .with_capacity(2)
            .with_concurrency(1),
    );
    // Occupy the single concurrency slot with a deep fan-out count.
    let hog = svc
        .submit(
            Priority::Background,
            &khopcount_plan(&graph, 8),
            vec![Value::Vertex(VertexId(0))],
        )
        .expect("empty queue admits");
    wait_until(
        || {
            let s = svc.stats();
            s.queued == 0 && s.in_flight == 1
        },
        "hog dispatched",
    );
    // Fill the queue, then the door must shed synchronously.
    let quick = khop_plan(&graph, 1);
    let q1 = svc
        .submit(
            Priority::Interactive,
            &quick,
            vec![Value::Vertex(VertexId(1))],
        )
        .expect("slot 1");
    let q2 = svc
        .submit(Priority::Heavy, &quick, vec![Value::Vertex(VertexId(2))])
        .expect("slot 2");
    let shed = svc.submit(
        Priority::Interactive,
        &quick,
        vec![Value::Vertex(VertexId(3))],
    );
    match shed {
        Err(GdError::Overloaded) => {}
        Err(e) => panic!("expected Overloaded, got {e}"),
        Ok(_) => panic!("expected Overloaded, got an admission"),
    }
    let s = svc.stats();
    assert_eq!((s.rejected, s.queued), (1, 2));
    assert!(s.reconciles(), "{s:?}");
    // Cancel the hog; the queued pair must then complete normally.
    svc.cancel(hog.token());
    let hog_result = hog.wait_timeout(WAIT);
    assert!(
        matches!(hog_result, Err(GdError::QueryCancelled(_)) | Ok(_)),
        "hog must resolve via the drain protocol (or win the race): {hog_result:?}"
    );
    assert_eq!(q1.wait_timeout(WAIT).expect("q1 completes").rows.len(), 8);
    assert_eq!(q2.wait_timeout(WAIT).expect("q2 completes").rows.len(), 8);
    let s = svc.stats();
    assert_eq!(s.admitted, 3);
    assert_eq!(s.in_flight, 0);
    assert!(s.reconciles(), "{s:?}");
    svc.shutdown();
}

#[test]
fn queued_cancellation_resolves_without_dispatch() {
    let graph = chord_graph(64, 8, 1, 2);
    let svc = start(&graph, ServiceConfig::default().with_concurrency(1));
    let hog = svc
        .submit(
            Priority::Background,
            &khopcount_plan(&graph, 8),
            vec![Value::Vertex(VertexId(0))],
        )
        .expect("admit hog");
    wait_until(|| svc.stats().queued == 0, "hog dispatched");
    let queued = svc
        .submit(
            Priority::Interactive,
            &khop_plan(&graph, 1),
            vec![Value::Vertex(VertexId(1))],
        )
        .expect("admit queued");
    svc.cancel(queued.token());
    let token = queued.token();
    match queued.wait_timeout(WAIT) {
        Err(GdError::QueryCancelled(q)) => {
            assert_eq!(q.0, token, "queued teardown echoes the admission token")
        }
        other => panic!("expected QueryCancelled, got {other:?}"),
    }
    svc.cancel(hog.token());
    let _ = hog.wait_timeout(WAIT);
    let s = svc.stats();
    assert!(s.cancelled >= 1, "{s:?}");
    assert_eq!(s.in_flight, 0);
    assert!(s.reconciles(), "{s:?}");
    svc.shutdown();
}

#[test]
fn queued_deadline_expires_before_dispatch() {
    let graph = chord_graph(64, 8, 1, 2);
    let svc = start(&graph, ServiceConfig::default().with_concurrency(1));
    let hog = svc
        .submit(
            Priority::Background,
            &khopcount_plan(&graph, 8),
            vec![Value::Vertex(VertexId(0))],
        )
        .expect("admit hog");
    wait_until(|| svc.stats().queued == 0, "hog dispatched");
    let doomed = svc
        .submit_with_deadline(
            Priority::Interactive,
            &khop_plan(&graph, 1),
            vec![Value::Vertex(VertexId(1))],
            Some(Duration::from_millis(1)),
        )
        .expect("admit doomed");
    match doomed.wait_timeout(WAIT) {
        Err(GdError::QueryTimeout(_)) => {}
        other => panic!("expected queued-deadline QueryTimeout, got {other:?}"),
    }
    let s = svc.stats();
    assert_eq!(s.deadline_expired, 1, "{s:?}");
    assert!(s.reconciles(), "{s:?}");
    svc.cancel(hog.token());
    let _ = hog.wait_timeout(WAIT);
    svc.shutdown();
}

/// The conservation identity holds at *every* polled cut while a mixed
/// workload (completions, cancellations, rejections) is in flight — not
/// just at quiesce.
#[test]
fn stats_reconcile_at_every_cut() {
    let graph = chord_graph(48, 3, 1, 2);
    let svc = start(
        &graph,
        ServiceConfig::default()
            .with_capacity(8)
            .with_concurrency(2),
    );
    let quick = khop_plan(&graph, 2);
    let slow = khopcount_plan(&graph, 7);
    let mut tickets = Vec::new();
    for i in 0..24u64 {
        let class = Priority::from_index(i as usize);
        let plan = if i % 5 == 0 { &slow } else { &quick };
        match svc.submit(class, plan, vec![Value::Vertex(VertexId(i % 48))]) {
            Ok(t) => {
                if i % 7 == 0 {
                    svc.cancel(t.token());
                }
                tickets.push(t);
            }
            Err(GdError::Overloaded) => {}
            Err(e) => panic!("unexpected admission error: {e}"),
        }
        let s = svc.stats();
        assert!(s.reconciles(), "mid-flight cut diverged: {s:?}");
    }
    for t in tickets {
        let _ = t.wait_timeout(WAIT);
        let s = svc.stats();
        assert!(s.reconciles(), "drain cut diverged: {s:?}");
    }
    wait_until(|| svc.stats().in_flight == 0, "service drains");
    let s = svc.stats();
    assert_eq!(
        s.admitted,
        s.completed + s.cancelled + s.deadline_expired,
        "{s:?}"
    );
    svc.shutdown();
}
