//! `obs_trace`-style reconciliation for the `svc.*` metric family
//! (requires `--features obs`): at any scrape,
//!
//! ```text
//! svc.admitted == completed + svc.cancelled + svc.deadline_expired + in-flight
//! ```
//!
//! where "completed" and "in-flight" are recovered from the service's
//! own stats at the same cut — the metric counters and the stats ledger
//! are written under one mutex, so a scrape taken under no concurrent
//! dispatcher activity must agree exactly. Also checks the merged
//! Prometheus/JSON export actually carries the `svc.*` series.

#![cfg(feature = "obs")]

use std::time::Duration;

use graphdance_common::{Partitioner, Value, VertexId};
use graphdance_engine::{EngineConfig, GraphDance};
use graphdance_query::QueryBuilder;
use graphdance_service::{Priority, Service, ServiceConfig};
use graphdance_storage::{Graph, GraphBuilder};

fn ring(n: u64) -> Graph {
    let mut b = GraphBuilder::new(Partitioner::new(1, 2));
    let person = b.schema_mut().register_vertex_label("Person");
    let knows = b.schema_mut().register_edge_label("knows");
    for i in 0..n {
        b.add_vertex(VertexId(i), person, vec![]).expect("fresh id");
    }
    for i in 0..n {
        b.add_edge(VertexId(i), knows, VertexId((i + 1) % n), vec![])
            .expect("valid endpoints");
    }
    b.finish()
}

#[test]
fn svc_counters_reconcile_and_export() {
    let graph = ring(32);
    let engine = GraphDance::start(graph.clone(), EngineConfig::new(1, 2));
    let svc = Service::start(
        engine,
        ServiceConfig::default()
            .with_capacity(4)
            .with_concurrency(2),
    );
    let plan = {
        let mut b = QueryBuilder::new(graph.schema());
        b.v_param(0);
        let c = b.alloc_slot();
        b.repeat(1, 2, c, |r| {
            r.out("knows");
        });
        b.dedup();
        b.compile().expect("khop compiles")
    };

    let mut tickets = Vec::new();
    for i in 0..6u64 {
        match svc.submit(
            Priority::from_index(i as usize),
            &plan,
            vec![Value::Vertex(VertexId(i % 32))],
        ) {
            Ok(t) => {
                if i == 4 {
                    svc.cancel(t.token());
                }
                tickets.push(t);
            }
            Err(graphdance_common::GdError::Overloaded) => {}
            Err(e) => panic!("unexpected admission error: {e}"),
        }
    }
    for t in tickets {
        let _ = t.wait_timeout(Duration::from_secs(60));
    }
    for _ in 0..5000 {
        if svc.stats().in_flight == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }

    // Scrape with the dispatcher quiescent: counters and the stats ledger
    // were written under the same mutex, so the cut is exact.
    let stats = svc.stats();
    assert_eq!(stats.in_flight, 0, "{stats:?}");
    let snap = svc.metrics();
    let admitted = snap.scalar("svc.admitted");
    let rejected = snap.scalar("svc.rejected");
    let cancelled = snap.scalar("svc.cancelled");
    let expired = snap.scalar("svc.deadline_expired");
    assert_eq!(admitted, stats.admitted, "{stats:?}");
    assert_eq!(rejected, stats.rejected, "{stats:?}");
    assert_eq!(
        admitted,
        stats.completed + cancelled + expired + stats.in_flight,
        "admission conservation at scrape: {stats:?}"
    );
    assert_eq!(snap.scalar("svc.queue_depth"), 0);

    // Per-class queue-wait histograms saw every admitted entry exactly
    // once — at dispatch, at expiry, or at queued-cancellation.
    let waits: u64 = Priority::ALL
        .iter()
        .map(|c| {
            snap.hist(&format!("svc.queue_wait_us.{}", c.name()))
                .map_or(0, |h| h.count())
        })
        .sum();
    assert_eq!(waits, admitted, "every admitted entry observed once");

    // The merged export carries both engine and service series.
    let prom = snap.to_prometheus();
    assert!(prom.contains("svc_admitted"), "prometheus export:\n{prom}");
    assert!(
        prom.contains("svc_queue_depth"),
        "prometheus export:\n{prom}"
    );
    let json = snap.to_json();
    assert!(json.contains("svc.admitted"), "json export:\n{json}");
    svc.shutdown();
}
