//! Property tests for the admission/priority queue in isolation
//! (satellite of the service subsystem; the policy is pure, so these
//! run with no engine and no threads).
//!
//! Properties:
//! 1. **Bounded capacity** — `len() <= capacity` through any op
//!    sequence, and admission past the bound sheds with `Overloaded`.
//! 2. **FIFO within a class** — per class, dispatch order equals
//!    admission order.
//! 3. **No starvation** — under the weighted scheduler, every admitted
//!    entry dispatches within a computable bound of dispatches on any
//!    fixed-seed schedule that keeps popping (the background class is
//!    never starved by higher-weight backlog).
//! 4. **Snapshot-stable deadline ordering** — incremental expiry sweeps
//!    at increasing instants observe exactly the cumulative `(deadline,
//!    token)` order one final sweep would (`since()`-style incremental
//!    scrapes agree with the full scrape).

use std::time::Duration;

use proptest::prelude::*;

use graphdance_common::GdError;
use graphdance_service::{AdmissionQueue, Priority, NUM_CLASSES};

#[derive(Clone, Copy, Debug)]
enum Op {
    /// Admit into the class lane with a deadline offset (ms from base).
    Admit(usize, u64),
    /// Dispatch one entry.
    Pop,
    /// Advance virtual time by `ms` and sweep expired entries.
    Expire(u64),
}

fn arb_ops(max_len: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0..NUM_CLASSES, 1u64..500).prop_map(|(c, d)| Op::Admit(c, d)),
            Just(Op::Pop),
            (0u64..200).prop_map(Op::Expire),
        ],
        0..max_len,
    )
}

fn arb_weights() -> impl Strategy<Value = [u32; NUM_CLASSES]> {
    (1u32..9, 1u32..9, 1u32..9).prop_map(|(a, b, c)| [a, b, c])
}

proptest! {
    /// Property 1: the bound holds through arbitrary op sequences, and
    /// the queue sheds with `Overloaded` exactly when full.
    #[test]
    fn capacity_is_never_exceeded(
        ops in arb_ops(64),
        capacity in 1usize..12,
        weights in arb_weights(),
    ) {
        let base = graphdance_common::time::now();
        let mut at = base;
        let mut q: AdmissionQueue<u32> = AdmissionQueue::new(capacity, weights);
        let mut id = 0u32;
        for op in ops {
            match op {
                Op::Admit(c, d) => {
                    let was_full = q.len() >= capacity;
                    let r = q.try_admit(
                        Priority::from_index(c),
                        at,
                        at + Duration::from_millis(d),
                        id,
                    );
                    id += 1;
                    prop_assert_eq!(was_full, matches!(r, Err(GdError::Overloaded)));
                }
                Op::Pop => { q.pop_next(); }
                Op::Expire(ms) => {
                    at += Duration::from_millis(ms);
                    q.expire(at);
                }
            }
            prop_assert!(q.len() <= capacity, "len {} > cap {}", q.len(), capacity);
        }
    }

    /// Property 2: within each class, dispatch order is admission order
    /// (expiry removes entries but never reorders the survivors).
    #[test]
    fn fifo_within_each_class(
        ops in arb_ops(64),
        weights in arb_weights(),
    ) {
        let base = graphdance_common::time::now();
        let mut at = base;
        let mut q: AdmissionQueue<u32> = AdmissionQueue::new(64, weights);
        let mut id = 0u32;
        let mut dispatched: Vec<(Priority, u64)> = Vec::new();
        for op in ops {
            match op {
                Op::Admit(c, d) => {
                    let _ = q.try_admit(
                        Priority::from_index(c),
                        at,
                        at + Duration::from_millis(d),
                        id,
                    );
                    id += 1;
                }
                Op::Pop => {
                    if let Some(a) = q.pop_next() {
                        dispatched.push((a.class, a.token));
                    }
                }
                Op::Expire(ms) => {
                    at += Duration::from_millis(ms);
                    // Expired entries resolve without dispatching; they
                    // must not break FIFO among the survivors, which the
                    // subsequent pops verify.
                    q.expire(at);
                }
            }
        }
        // Drain: the tail must still come out in FIFO order per class.
        while let Some(a) = q.pop_next() {
            dispatched.push((a.class, a.token));
        }
        let mut last: [Option<u64>; NUM_CLASSES] = [None; NUM_CLASSES];
        for (class, token) in dispatched {
            if let Some(prev) = last[class.index()] {
                prop_assert!(
                    token > prev,
                    "class {:?} dispatched token {} after {}", class, token, prev
                );
            }
            last[class.index()] = Some(token);
        }
    }

    /// Property 3: every admitted entry dispatches within
    /// `(capacity + 1) × Σ weights` dispatches of its admission, for any
    /// admission schedule — the weighted rotation serves every backlogged
    /// lane at least once per `Σ weights` dispatches, and a lane of
    /// weight w drains ≥ w entries per rotation.
    #[test]
    fn no_admitted_entry_starves(
        ops in arb_ops(96),
        capacity in 1usize..16,
        weights in arb_weights(),
    ) {
        let base = graphdance_common::time::now();
        let far = base + Duration::from_secs(3600);
        let sum_w: u64 = weights.iter().map(|&w| u64::from(w)).sum();
        let bound = (capacity as u64 + 1) * sum_w;
        let mut q: AdmissionQueue<u32> = AdmissionQueue::new(capacity, weights);
        let mut id = 0u32;
        let mut pops = 0u64;
        // admission token → pop count at admission
        let mut admitted_at_pop = std::collections::HashMap::new();
        for op in ops {
            match op {
                Op::Admit(c, _) => {
                    if let Ok(tok) = q.try_admit(Priority::from_index(c), base, far, id) {
                        admitted_at_pop.insert(tok, pops);
                    }
                    id += 1;
                }
                // No expiry in this schedule: deadlines are far-future so
                // "eventually dispatches" is purely the scheduler's duty.
                Op::Pop | Op::Expire(_) => {
                    if let Some(a) = q.pop_next() {
                        pops += 1;
                        let since = pops - admitted_at_pop[&a.token];
                        prop_assert!(
                            since <= bound,
                            "token {} ({:?}) waited {since} dispatches (bound {bound})",
                            a.token, a.class
                        );
                    }
                }
            }
        }
        // Keep popping: everything admitted must drain within the bound.
        while let Some(a) = q.pop_next() {
            pops += 1;
            let since = pops - admitted_at_pop[&a.token];
            prop_assert!(since <= bound, "tail token {} waited {since}", a.token);
        }
    }

    /// Property 4: expiry order is snapshot-stable — sweeping at
    /// increasing instants t₁ < t₂ < … yields, concatenated, exactly the
    /// `(deadline, token)` order a single sweep at tₙ yields on an
    /// identical queue.
    #[test]
    fn deadline_order_is_stable_across_incremental_sweeps(
        entries in prop::collection::vec((0..NUM_CLASSES, 1u64..400), 0..24),
        sweep_offsets in prop::collection::vec(1u64..450, 1..6),
    ) {
        let mut sweep_offsets = sweep_offsets;
        let base = graphdance_common::time::now();
        let mut incremental: AdmissionQueue<u32> = AdmissionQueue::new(64, [2, 2, 1]);
        let mut oneshot: AdmissionQueue<u32> = AdmissionQueue::new(64, [2, 2, 1]);
        for (i, &(c, d)) in entries.iter().enumerate() {
            let dl = base + Duration::from_millis(d);
            incremental
                .try_admit(Priority::from_index(c), base, dl, i as u32)
                .expect("under capacity");
            oneshot
                .try_admit(Priority::from_index(c), base, dl, i as u32)
                .expect("under capacity");
        }
        sweep_offsets.sort_unstable();
        let last = *sweep_offsets.last().expect("non-empty by construction");
        let mut swept_incrementally = Vec::new();
        for off in &sweep_offsets {
            let batch = incremental.expire(base + Duration::from_millis(*off));
            // Each batch is internally (deadline, token)-ordered.
            for w in batch.windows(2) {
                prop_assert!((w[0].deadline, w[0].token) <= (w[1].deadline, w[1].token));
            }
            swept_incrementally.extend(batch.into_iter().map(|a| a.token));
        }
        let swept_once: Vec<u64> = oneshot
            .expire(base + Duration::from_millis(last))
            .into_iter()
            .map(|a| a.token)
            .collect();
        prop_assert_eq!(swept_incrementally, swept_once);
        prop_assert_eq!(incremental.len(), oneshot.len());
    }
}
