//! # graphdance-datagen
//!
//! Deterministic dataset generators for the evaluation (§V, Table II).
//!
//! The paper's datasets are not redistributable at their original scale
//! (LDBC SNB SF300/SF1000 are 256 GB / 862 GB; LiveJournal and Friendster
//! are external snapshots), so this crate generates scaled-down synthetic
//! equivalents with the same *shape* (see DESIGN.md §1):
//!
//! * [`snb`] — a full LDBC SNB-like social network (Persons, knows, Forums,
//!   Posts, Comments, Tags, Places, Organisations with every property the
//!   14 IC queries touch), with power-law degree and activity distributions.
//! * [`khop`] — power-law graphs shaped like LiveJournal (`lj_sim`, avg
//!   degree ≈ 8.7) and Friendster (`fs_sim`, avg degree ≈ 27.5) for the
//!   k-hop scalability studies, with the random integer vertex weights the
//!   paper adds for aggregation queries.
//!
//! All generators are seeded and produce identical datasets run-to-run;
//! `build(partitioner)` materializes a [`graphdance_storage::Graph`] for
//! any cluster topology, so every engine configuration sees the same data.

pub mod khop;
pub mod snb;

pub use khop::{KhopDataset, KhopParams};
pub use snb::{SnbDataset, SnbParams};

/// Summary row for the Table II report.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSummary {
    /// Dataset name as reported.
    pub name: String,
    /// Vertex count.
    pub vertices: u64,
    /// Directed edge count.
    pub edges: u64,
    /// Approximate in-memory bytes once built.
    pub raw_bytes: u64,
}
