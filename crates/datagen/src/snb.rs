//! LDBC SNB-like social network generator (DESIGN.md substitution for
//! SF300/SF1000).
//!
//! Generates the full SNB schema — Persons with `knows`, Places
//! (City→Country→Continent), Organisations (University/Company), Tags with
//! a TagClass hierarchy, Forums with memberships, Posts, Comments with
//! reply trees, and `likes` — carrying every property the 14 Interactive
//! Complex queries read. Degree and activity distributions are power-law;
//! everything is derived from one seed.

use rand::rngs::SmallRng;
use rand::Rng;

use graphdance_common::rng::{derive, PowerLaw};
use graphdance_common::time::date_millis;
use graphdance_common::{GdResult, Partitioner, Value, VertexId};
use graphdance_storage::{Graph, GraphBuilder, Schema};

use crate::DatasetSummary;

const FIRST_NAMES: &[&str] = &[
    "Jan", "Yang", "Chen", "Otto", "Aditi", "Bryn", "Carmen", "Deepak", "Emil", "Farah", "Gustav",
    "Hana", "Ivan", "Jun", "Karl", "Lin", "Mahinda", "Nadia", "Omar", "Priya", "Quentin", "Rahul",
    "Sofia", "Tariq", "Uma", "Viktor", "Wei", "Ximena", "Yusuf", "Zofia",
];
const LAST_NAMES: &[&str] = &[
    "Andersson",
    "Bauer",
    "Chen",
    "Dubois",
    "Eriksson",
    "Fischer",
    "Garcia",
    "Hoffmann",
    "Ivanov",
    "Johansson",
    "Kumar",
    "Li",
    "Martinez",
    "Nguyen",
    "Olsen",
    "Petrov",
    "Quist",
    "Rodriguez",
    "Sato",
    "Tanaka",
    "Ullman",
    "Virtanen",
    "Wang",
    "Xu",
    "Yamamoto",
    "Zhang",
];
const BROWSERS: &[&str] = &["Firefox", "Chrome", "Safari", "Opera", "InternetExplorer"];
const LANGUAGES: &[&str] = &["en", "zh", "de", "es", "ta"];
const CONTINENTS: &[&str] = &["Asia", "Europe", "Africa", "America", "Oceania"];
const COUNTRIES: &[(&str, usize)] = &[
    ("China", 0),
    ("India", 0),
    ("Japan", 0),
    ("Vietnam", 0),
    ("Germany", 1),
    ("France", 1),
    ("Spain", 1),
    ("Sweden", 1),
    ("Poland", 1),
    ("Egypt", 2),
    ("Nigeria", 2),
    ("Kenya", 2),
    ("Brazil", 3),
    ("Canada", 3),
    ("Peru", 3),
    ("Chile", 3),
    ("Australia", 4),
    ("NewZealand", 4),
    ("Fiji", 4),
    ("Samoa", 4),
];
const CITIES_PER_COUNTRY: usize = 4;
const TAG_CLASSES: &[(&str, Option<usize>)] = &[
    ("Thing", None),
    ("Person", Some(0)),
    ("Artist", Some(1)),
    ("Musician", Some(2)),
    ("Writer", Some(1)),
    ("Politician", Some(1)),
    ("Place", Some(0)),
    ("Country", Some(6)),
    ("City", Some(6)),
    ("Work", Some(0)),
    ("Song", Some(9)),
    ("Album", Some(9)),
    ("Film", Some(9)),
    ("Organisation", Some(0)),
    ("Band", Some(13)),
];

/// Vertex-id namespaces by entity type.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    Person = 1,
    City = 2,
    Country = 3,
    Continent = 4,
    University = 5,
    Company = 6,
    Tag = 7,
    TagClass = 8,
    Forum = 9,
    Post = 10,
    Comment = 11,
}

/// Compose a vertex id for an entity.
pub fn vid(kind: Kind, idx: usize) -> VertexId {
    VertexId(((kind as u64) << 40) | idx as u64)
}

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct SnbParams {
    /// Reported dataset name.
    pub name: String,
    /// Number of persons; all other entity counts derive from it.
    pub persons: usize,
    /// Average `knows` degree.
    pub avg_knows: f64,
    /// Posts per person (average).
    pub posts_per_person: f64,
    /// Comments per post (average).
    pub comments_per_post: f64,
    /// Average likes per message.
    pub likes_per_message: f64,
    /// Number of distinct tags.
    pub tags: usize,
    /// Master seed.
    pub seed: u64,
}

impl SnbParams {
    /// Tiny dataset for unit/integration tests.
    pub fn tiny() -> Self {
        SnbParams {
            name: "snb-tiny".into(),
            persons: 80,
            avg_knows: 6.0,
            posts_per_person: 3.0,
            comments_per_post: 1.0,
            likes_per_message: 1.0,
            tags: 40,
            seed: 0x51DB,
        }
    }

    /// Scaled-down stand-in for LDBC SNB SF300 (see DESIGN.md §1).
    pub fn sf300_sim() -> Self {
        SnbParams {
            name: "SF300-sim".into(),
            persons: 1800,
            avg_knows: 14.0,
            posts_per_person: 8.0,
            comments_per_post: 1.3,
            likes_per_message: 2.0,
            tags: 300,
            seed: 0x300,
        }
    }

    /// Scaled-down stand-in for LDBC SNB SF1000 (≈3.1× SF300's edges,
    /// matching the paper's ratio).
    pub fn sf1000_sim() -> Self {
        SnbParams {
            name: "SF1000-sim".into(),
            persons: 5600,
            avg_knows: 14.5,
            posts_per_person: 8.0,
            comments_per_post: 1.3,
            likes_per_message: 2.0,
            tags: 600,
            seed: 0x1000,
        }
    }
}

struct Person {
    first: &'static str,
    last: &'static str,
    gender: &'static str,
    birthday: i64,
    creation: i64,
    browser: &'static str,
    ip: String,
    city: usize,
    university: Option<(usize, i64)>,
    companies: Vec<(usize, i64)>,
    interests: Vec<usize>,
}

struct Forum {
    title: String,
    creation: i64,
    moderator: usize,
    members: Vec<(usize, i64)>,
}

struct Message {
    creator: usize,
    creation: i64,
    length: i64,
    browser: &'static str,
    ip: String,
    tags: Vec<usize>,
    country: usize,
}

struct Post {
    base: Message,
    forum: usize,
    language: &'static str,
}

struct Comment {
    base: Message,
    /// `Ok(post index)` or `Err(comment index)`.
    reply_of: Result<usize, usize>,
}

/// The generated social network.
pub struct SnbDataset {
    params: SnbParams,
    persons: Vec<Person>,
    knows: Vec<(usize, usize, i64)>,
    universities: Vec<(String, usize)>,
    companies: Vec<(String, usize)>,
    tags: Vec<(String, usize)>,
    forums: Vec<Forum>,
    posts: Vec<Post>,
    comments: Vec<Comment>,
    /// (person, message vid, date)
    likes: Vec<(usize, VertexId, i64)>,
}

fn rand_date(rng: &mut SmallRng, lo: i64, hi: i64) -> i64 {
    rng.gen_range(lo..hi)
}

fn rand_ip(rng: &mut SmallRng) -> String {
    format!(
        "{}.{}.{}.{}",
        rng.gen_range(1..255),
        rng.gen_range(0..255),
        rng.gen_range(0..255),
        rng.gen_range(1..255)
    )
}

impl SnbDataset {
    /// Generate deterministically.
    pub fn generate(params: SnbParams) -> SnbDataset {
        let n = params.persons;
        let mut rng = derive(params.seed, 100);
        let data_start = date_millis(2010, 1, 1);
        let data_end = date_millis(2013, 1, 1);
        let num_countries = COUNTRIES.len();
        let num_cities = num_countries * CITIES_PER_COUNTRY;

        let universities: Vec<(String, usize)> = (0..30)
            .map(|i| (format!("University_{i}"), rng.gen_range(0..num_cities)))
            .collect();
        let companies: Vec<(String, usize)> = (0..40)
            .map(|i| (format!("Company_{i}"), rng.gen_range(0..num_countries)))
            .collect();
        let tags: Vec<(String, usize)> = (0..params.tags)
            .map(|i| (format!("Tag_{i}"), rng.gen_range(0..TAG_CLASSES.len())))
            .collect();

        // ---- persons ----
        let tag_pop = PowerLaw::new(params.tags, 1.3);
        let persons: Vec<Person> = (0..n)
            .map(|_| {
                let creation = rand_date(&mut rng, data_start, data_end - 90 * 86_400_000);
                let mut interests: Vec<usize> = (0..rng.gen_range(3..=10))
                    .map(|_| tag_pop.sample(&mut rng))
                    .collect();
                interests.sort_unstable();
                interests.dedup();
                Person {
                    first: FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())],
                    last: LAST_NAMES[rng.gen_range(0..LAST_NAMES.len())],
                    gender: if rng.gen_bool(0.5) { "male" } else { "female" },
                    birthday: rand_date(
                        &mut rng,
                        date_millis(1950, 1, 1),
                        date_millis(1999, 12, 31),
                    ),
                    creation,
                    browser: BROWSERS[rng.gen_range(0..BROWSERS.len())],
                    ip: rand_ip(&mut rng),
                    city: rng.gen_range(0..num_cities),
                    university: rng.gen_bool(0.8).then(|| {
                        (
                            rng.gen_range(0..universities.len()),
                            rng.gen_range(2000..2013) as i64,
                        )
                    }),
                    companies: (0..rng.gen_range(0..=2))
                        .map(|_| {
                            (
                                rng.gen_range(0..companies.len()),
                                rng.gen_range(1990..2013) as i64,
                            )
                        })
                        .collect(),
                    interests,
                }
            })
            .collect();

        // ---- knows (undirected; stored once, traversed Both) ----
        let person_pop = PowerLaw::new(n, 1.4);
        let target_edges = (n as f64 * params.avg_knows / 2.0) as usize;
        let mut knows_set = graphdance_common::FxHashSet::default();
        let mut knows = Vec::with_capacity(target_edges);
        let mut attempts = 0;
        while knows.len() < target_edges && attempts < target_edges * 10 {
            attempts += 1;
            let a = person_pop.sample(&mut rng);
            let b = person_pop.sample(&mut rng);
            if a == b {
                continue;
            }
            let (a, b) = (a.min(b), a.max(b));
            if knows_set.insert((a, b)) {
                let date = persons[a].creation.max(persons[b].creation)
                    + rng.gen_range(0..30 * 86_400_000i64);
                knows.push((a, b, date.min(data_end - 1)));
            }
        }

        // ---- forums ----
        let num_forums = (n / 3).max(1);
        let mut member_of: Vec<Vec<usize>> = vec![Vec::new(); n];
        let forums: Vec<Forum> = (0..num_forums)
            .map(|i| {
                let moderator = rng.gen_range(0..n);
                let creation = rand_date(&mut rng, persons[moderator].creation, data_end - 1);
                let count = (PowerLaw::new(40, 1.2).sample(&mut rng) + 4).min(n);
                let mut candidates = vec![moderator];
                for _ in 0..count * 2 {
                    candidates.push(person_pop.sample(&mut rng));
                }
                let mut members = Vec::with_capacity(count + 1);
                let mut seen = graphdance_common::FxHashSet::default();
                for p in candidates {
                    if members.len() > count {
                        break;
                    }
                    if seen.insert(p) {
                        let join = rand_date(&mut rng, creation.max(persons[p].creation), data_end);
                        members.push((p, join));
                        member_of[p].push(i);
                    }
                }
                Forum {
                    title: format!("Forum_{i}"),
                    creation,
                    moderator,
                    members,
                }
            })
            .collect();

        // ---- posts ----
        let num_posts = (n as f64 * params.posts_per_person) as usize;
        let posts: Vec<Post> = (0..num_posts)
            .map(|_| {
                let creator = person_pop.sample(&mut rng);
                let forum = if member_of[creator].is_empty() {
                    rng.gen_range(0..num_forums)
                } else {
                    member_of[creator][rng.gen_range(0..member_of[creator].len())]
                };
                let lo = forums[forum].creation.max(persons[creator].creation);
                let creation = rand_date(&mut rng, lo, data_end);
                let home_country = persons[creator].city / CITIES_PER_COUNTRY;
                let country = if rng.gen_bool(0.8) {
                    home_country
                } else {
                    rng.gen_range(0..num_countries)
                };
                let mut tags_v: Vec<usize> = (0..rng.gen_range(1..=3))
                    .map(|_| tag_pop.sample(&mut rng))
                    .collect();
                tags_v.sort_unstable();
                tags_v.dedup();
                Post {
                    base: Message {
                        creator,
                        creation,
                        length: rng.gen_range(10..200),
                        browser: BROWSERS[rng.gen_range(0..BROWSERS.len())],
                        ip: rand_ip(&mut rng),
                        tags: tags_v,
                        country,
                    },
                    forum,
                    language: LANGUAGES[rng.gen_range(0..LANGUAGES.len())],
                }
            })
            .collect();

        // ---- comments ----
        let num_comments = (num_posts as f64 * params.comments_per_post) as usize;
        let mut comments: Vec<Comment> = Vec::with_capacity(num_comments);
        for _ in 0..num_comments {
            let creator = person_pop.sample(&mut rng);
            let reply_of = if comments.is_empty() || rng.gen_bool(0.7) {
                Ok(rng.gen_range(0..num_posts))
            } else {
                Err(rng.gen_range(0..comments.len()))
            };
            let parent_creation = match reply_of {
                Ok(p) => posts[p].base.creation,
                Err(c) => comments[c].base.creation,
            };
            let lo = parent_creation.max(persons[creator].creation);
            let creation = rand_date(&mut rng, lo, data_end.max(lo + 1));
            let home_country = persons[creator].city / CITIES_PER_COUNTRY;
            let country = if rng.gen_bool(0.8) {
                home_country
            } else {
                rng.gen_range(0..num_countries)
            };
            let mut tags_v: Vec<usize> = (0..rng.gen_range(0..=2))
                .map(|_| tag_pop.sample(&mut rng))
                .collect();
            tags_v.sort_unstable();
            tags_v.dedup();
            comments.push(Comment {
                base: Message {
                    creator,
                    creation,
                    length: rng.gen_range(5..150),
                    browser: BROWSERS[rng.gen_range(0..BROWSERS.len())],
                    ip: rand_ip(&mut rng),
                    tags: tags_v,
                    country,
                },
                reply_of,
            });
        }

        // ---- likes ----
        let like_pop = PowerLaw::new(20, 1.3);
        let mut likes = Vec::new();
        for (i, p) in posts.iter().enumerate() {
            let c = (like_pop.sample(&mut rng) as f64 * params.likes_per_message / 3.0) as usize;
            for _ in 0..c {
                let person = rng.gen_range(0..n);
                let date = rand_date(&mut rng, p.base.creation, data_end.max(p.base.creation + 1));
                likes.push((person, vid(Kind::Post, i), date));
            }
        }
        for (i, c) in comments.iter().enumerate() {
            let k = (like_pop.sample(&mut rng) as f64 * params.likes_per_message / 6.0) as usize;
            for _ in 0..k {
                let person = rng.gen_range(0..n);
                let date = rand_date(&mut rng, c.base.creation, data_end.max(c.base.creation + 1));
                likes.push((person, vid(Kind::Comment, i), date));
            }
        }

        SnbDataset {
            params,
            persons,
            knows,
            universities,
            companies,
            tags,
            forums,
            posts,
            comments,
            likes,
        }
    }

    /// Register the full SNB schema (labels and property keys).
    pub fn register_schema(schema: &mut Schema) {
        for l in [
            "Person",
            "City",
            "Country",
            "Continent",
            "University",
            "Company",
            "Tag",
            "TagClass",
            "Forum",
            "Post",
            "Comment",
        ] {
            schema.register_vertex_label(l);
        }
        for l in [
            "knows",
            "isLocatedIn",
            "isPartOf",
            "studyAt",
            "workAt",
            "hasInterest",
            "hasType",
            "isSubclassOf",
            "hasModerator",
            "hasMember",
            "containerOf",
            "hasCreator",
            "hasTag",
            "replyOf",
            "likes",
        ] {
            schema.register_edge_label(l);
        }
        for p in [
            "firstName",
            "lastName",
            "gender",
            "birthday",
            "creationDate",
            "browserUsed",
            "locationIP",
            "name",
            "title",
            "length",
            "language",
            "classYear",
            "workFrom",
            "joinDate",
        ] {
            schema.register_prop(p);
        }
    }

    /// Materialize for a cluster topology.
    pub fn build(&self, partitioner: Partitioner) -> GdResult<Graph> {
        let mut b = GraphBuilder::new(partitioner);
        Self::register_schema(b.schema_mut());
        let s = b.schema_mut().clone();
        let vl = |n: &str| s.vertex_label(n).expect("registered");
        let el = |n: &str| s.edge_label(n).expect("registered");
        let pk = |n: &str| s.prop(n).expect("registered");
        let num_countries = COUNTRIES.len();
        let num_cities = num_countries * CITIES_PER_COUNTRY;

        // Places.
        for (i, name) in CONTINENTS.iter().enumerate() {
            b.add_vertex(
                vid(Kind::Continent, i),
                vl("Continent"),
                vec![(pk("name"), Value::str(name))],
            )?;
        }
        for (i, (name, continent)) in COUNTRIES.iter().enumerate() {
            b.add_vertex(
                vid(Kind::Country, i),
                vl("Country"),
                vec![(pk("name"), Value::str(name))],
            )?;
            b.add_edge(
                vid(Kind::Country, i),
                el("isPartOf"),
                vid(Kind::Continent, *continent),
                vec![],
            )?;
        }
        for c in 0..num_cities {
            let country = c / CITIES_PER_COUNTRY;
            b.add_vertex(
                vid(Kind::City, c),
                vl("City"),
                vec![(
                    pk("name"),
                    Value::str(format!(
                        "City_{}_{}",
                        COUNTRIES[country].0,
                        c % CITIES_PER_COUNTRY
                    )),
                )],
            )?;
            b.add_edge(
                vid(Kind::City, c),
                el("isPartOf"),
                vid(Kind::Country, country),
                vec![],
            )?;
        }
        // Organisations.
        for (i, (name, city)) in self.universities.iter().enumerate() {
            b.add_vertex(
                vid(Kind::University, i),
                vl("University"),
                vec![(pk("name"), Value::str(name))],
            )?;
            b.add_edge(
                vid(Kind::University, i),
                el("isLocatedIn"),
                vid(Kind::City, *city),
                vec![],
            )?;
        }
        for (i, (name, country)) in self.companies.iter().enumerate() {
            b.add_vertex(
                vid(Kind::Company, i),
                vl("Company"),
                vec![(pk("name"), Value::str(name))],
            )?;
            b.add_edge(
                vid(Kind::Company, i),
                el("isLocatedIn"),
                vid(Kind::Country, *country),
                vec![],
            )?;
        }
        // Tag classes and tags.
        for (i, (name, parent)) in TAG_CLASSES.iter().enumerate() {
            b.add_vertex(
                vid(Kind::TagClass, i),
                vl("TagClass"),
                vec![(pk("name"), Value::str(name))],
            )?;
            if let Some(p) = parent {
                b.add_edge(
                    vid(Kind::TagClass, i),
                    el("isSubclassOf"),
                    vid(Kind::TagClass, *p),
                    vec![],
                )?;
            }
        }
        for (i, (name, class)) in self.tags.iter().enumerate() {
            b.add_vertex(
                vid(Kind::Tag, i),
                vl("Tag"),
                vec![(pk("name"), Value::str(name))],
            )?;
            b.add_edge(
                vid(Kind::Tag, i),
                el("hasType"),
                vid(Kind::TagClass, *class),
                vec![],
            )?;
        }
        // Persons.
        for (i, p) in self.persons.iter().enumerate() {
            b.add_vertex(
                vid(Kind::Person, i),
                vl("Person"),
                vec![
                    (pk("firstName"), Value::str(p.first)),
                    (pk("lastName"), Value::str(p.last)),
                    (pk("gender"), Value::str(p.gender)),
                    (pk("birthday"), Value::Int(p.birthday)),
                    (pk("creationDate"), Value::Int(p.creation)),
                    (pk("browserUsed"), Value::str(p.browser)),
                    (pk("locationIP"), Value::str(&p.ip)),
                ],
            )?;
            b.add_edge(
                vid(Kind::Person, i),
                el("isLocatedIn"),
                vid(Kind::City, p.city),
                vec![],
            )?;
            if let Some((u, year)) = p.university {
                b.add_edge(
                    vid(Kind::Person, i),
                    el("studyAt"),
                    vid(Kind::University, u),
                    vec![(pk("classYear"), Value::Int(year))],
                )?;
            }
            for (c, from) in &p.companies {
                b.add_edge(
                    vid(Kind::Person, i),
                    el("workAt"),
                    vid(Kind::Company, *c),
                    vec![(pk("workFrom"), Value::Int(*from))],
                )?;
            }
            for t in &p.interests {
                b.add_edge(
                    vid(Kind::Person, i),
                    el("hasInterest"),
                    vid(Kind::Tag, *t),
                    vec![],
                )?;
            }
        }
        for (a, bb, date) in &self.knows {
            b.add_edge(
                vid(Kind::Person, *a),
                el("knows"),
                vid(Kind::Person, *bb),
                vec![(pk("creationDate"), Value::Int(*date))],
            )?;
        }
        // Forums.
        for (i, f) in self.forums.iter().enumerate() {
            b.add_vertex(
                vid(Kind::Forum, i),
                vl("Forum"),
                vec![
                    (pk("title"), Value::str(&f.title)),
                    (pk("creationDate"), Value::Int(f.creation)),
                ],
            )?;
            b.add_edge(
                vid(Kind::Forum, i),
                el("hasModerator"),
                vid(Kind::Person, f.moderator),
                vec![],
            )?;
            for (m, join) in &f.members {
                b.add_edge(
                    vid(Kind::Forum, i),
                    el("hasMember"),
                    vid(Kind::Person, *m),
                    vec![(pk("joinDate"), Value::Int(*join))],
                )?;
            }
        }
        // Posts.
        for (i, p) in self.posts.iter().enumerate() {
            b.add_vertex(
                vid(Kind::Post, i),
                vl("Post"),
                vec![
                    (pk("creationDate"), Value::Int(p.base.creation)),
                    (pk("length"), Value::Int(p.base.length)),
                    (pk("browserUsed"), Value::str(p.base.browser)),
                    (pk("locationIP"), Value::str(&p.base.ip)),
                    (pk("language"), Value::str(p.language)),
                ],
            )?;
            b.add_edge(
                vid(Kind::Post, i),
                el("hasCreator"),
                vid(Kind::Person, p.base.creator),
                vec![],
            )?;
            b.add_edge(
                vid(Kind::Forum, p.forum),
                el("containerOf"),
                vid(Kind::Post, i),
                vec![],
            )?;
            b.add_edge(
                vid(Kind::Post, i),
                el("isLocatedIn"),
                vid(Kind::Country, p.base.country),
                vec![],
            )?;
            for t in &p.base.tags {
                b.add_edge(vid(Kind::Post, i), el("hasTag"), vid(Kind::Tag, *t), vec![])?;
            }
        }
        // Comments.
        for (i, c) in self.comments.iter().enumerate() {
            b.add_vertex(
                vid(Kind::Comment, i),
                vl("Comment"),
                vec![
                    (pk("creationDate"), Value::Int(c.base.creation)),
                    (pk("length"), Value::Int(c.base.length)),
                    (pk("browserUsed"), Value::str(c.base.browser)),
                    (pk("locationIP"), Value::str(&c.base.ip)),
                ],
            )?;
            b.add_edge(
                vid(Kind::Comment, i),
                el("hasCreator"),
                vid(Kind::Person, c.base.creator),
                vec![],
            )?;
            let parent = match c.reply_of {
                Ok(p) => vid(Kind::Post, p),
                Err(cc) => vid(Kind::Comment, cc),
            };
            b.add_edge(vid(Kind::Comment, i), el("replyOf"), parent, vec![])?;
            b.add_edge(
                vid(Kind::Comment, i),
                el("isLocatedIn"),
                vid(Kind::Country, c.base.country),
                vec![],
            )?;
            for t in &c.base.tags {
                b.add_edge(
                    vid(Kind::Comment, i),
                    el("hasTag"),
                    vid(Kind::Tag, *t),
                    vec![],
                )?;
            }
        }
        // Likes.
        for (p, msg, date) in &self.likes {
            b.add_edge(
                vid(Kind::Person, *p),
                el("likes"),
                *msg,
                vec![(pk("creationDate"), Value::Int(*date))],
            )?;
        }
        // Indexes the IC queries rely on.
        b.build_prop_index(
            s.vertex_label("Person").expect("registered"),
            pk("firstName"),
        );
        b.build_prop_index(s.vertex_label("Tag").expect("registered"), pk("name"));
        b.build_prop_index(s.vertex_label("Country").expect("registered"), pk("name"));
        b.build_prop_index(s.vertex_label("TagClass").expect("registered"), pk("name"));
        Ok(b.finish())
    }

    // ---- accessors for the workload driver ----

    /// Generation parameters.
    pub fn params(&self) -> &SnbParams {
        &self.params
    }

    /// Number of persons.
    pub fn num_persons(&self) -> usize {
        self.persons.len()
    }

    /// Number of posts / comments / forums.
    pub fn num_messages(&self) -> usize {
        self.posts.len() + self.comments.len()
    }

    /// Vertex id of person `i`.
    pub fn person(&self, i: usize) -> VertexId {
        vid(Kind::Person, i)
    }

    /// A person's first name (for IC1 parameters).
    pub fn person_first_name(&self, i: usize) -> &str {
        self.persons[i].first
    }

    /// All country names.
    pub fn country_names(&self) -> Vec<&'static str> {
        COUNTRIES.iter().map(|(n, _)| *n).collect()
    }

    /// Country of a person's home city.
    pub fn person_country(&self, i: usize) -> &'static str {
        COUNTRIES[self.persons[i].city / CITIES_PER_COUNTRY].0
    }

    /// A tag name.
    pub fn tag_name(&self, i: usize) -> &str {
        &self.tags[i].0
    }

    /// Number of tags.
    pub fn num_tags(&self) -> usize {
        self.tags.len()
    }

    /// Tag-class names (roots of the IC12 hierarchy walk).
    pub fn tag_class_names(&self) -> Vec<&'static str> {
        TAG_CLASSES.iter().map(|(n, _)| *n).collect()
    }

    /// The data window midpoint (handy default for date parameters).
    pub fn mid_date(&self) -> i64 {
        (date_millis(2010, 1, 1) + date_millis(2013, 1, 1)) / 2
    }

    /// Highest assigned indexes (for update-stream id allocation).
    pub fn next_ids(&self) -> (usize, usize, usize) {
        (self.persons.len(), self.posts.len(), self.comments.len())
    }

    /// Table II-style summary (vertex/edge counts from the generated data).
    pub fn summary(&self) -> DatasetSummary {
        let num_cities = COUNTRIES.len() * CITIES_PER_COUNTRY;
        let vertices = (self.persons.len()
            + num_cities
            + COUNTRIES.len()
            + CONTINENTS.len()
            + self.universities.len()
            + self.companies.len()
            + self.tags.len()
            + TAG_CLASSES.len()
            + self.forums.len()
            + self.posts.len()
            + self.comments.len()) as u64;
        let edges = (self.knows.len()
            + self.persons.len() // isLocatedIn
            + self.persons.iter().map(|p| usize::from(p.university.is_some()) + p.companies.len() + p.interests.len()).sum::<usize>()
            + num_cities
            + COUNTRIES.len()
            + self.universities.len()
            + self.companies.len()
            + self.tags.len()
            + TAG_CLASSES.iter().filter(|(_, p)| p.is_some()).count()
            + self.forums.len() // moderator
            + self.forums.iter().map(|f| f.members.len()).sum::<usize>()
            + self.posts.len() * 3
            + self.posts.iter().map(|p| p.base.tags.len()).sum::<usize>()
            + self.comments.len() * 3
            + self.comments.iter().map(|c| c.base.tags.len()).sum::<usize>()
            + self.likes.len()) as u64;
        DatasetSummary {
            name: self.params.name.clone(),
            vertices,
            edges,
            raw_bytes: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphdance_storage::Direction;

    fn tiny() -> SnbDataset {
        SnbDataset::generate(SnbParams::tiny())
    }

    #[test]
    fn deterministic() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.knows, b.knows);
        assert_eq!(a.summary(), b.summary());
    }

    #[test]
    fn builds_and_counts_match_summary() {
        let d = tiny();
        let g = d.build(Partitioner::new(2, 2)).unwrap();
        let s = d.summary();
        assert_eq!(g.total_vertices(), s.vertices);
        assert_eq!(g.total_edges(), s.edges);
    }

    #[test]
    fn schema_complete_for_queries() {
        let d = tiny();
        let g = d.build(Partitioner::single()).unwrap();
        let s = g.schema();
        for l in [
            "Person", "Post", "Comment", "Forum", "Tag", "TagClass", "Country",
        ] {
            assert!(s.vertex_label(l).is_ok(), "{l}");
        }
        for l in [
            "knows",
            "hasCreator",
            "replyOf",
            "likes",
            "hasMember",
            "containerOf",
        ] {
            assert!(s.edge_label(l).is_ok(), "{l}");
        }
    }

    #[test]
    fn knows_traversable_both_ways() {
        let d = tiny();
        let g = d.build(Partitioner::new(1, 2)).unwrap();
        let knows = g.schema().edge_label("knows").unwrap();
        let (a, b_, _) = d.knows[0];
        let friends = g
            .neighbors(vid(Kind::Person, a), Direction::Both, knows, 1)
            .unwrap();
        assert!(friends.contains(&vid(Kind::Person, b_)));
        let friends_rev = g
            .neighbors(vid(Kind::Person, b_), Direction::Both, knows, 1)
            .unwrap();
        assert!(friends_rev.contains(&vid(Kind::Person, a)));
    }

    #[test]
    fn posts_have_creator_and_forum() {
        let d = tiny();
        let g = d.build(Partitioner::single()).unwrap();
        let creator = g.schema().edge_label("hasCreator").unwrap();
        let container = g.schema().edge_label("containerOf").unwrap();
        let p0 = vid(Kind::Post, 0);
        assert_eq!(
            g.neighbors(p0, Direction::Out, creator, 1).unwrap().len(),
            1
        );
        assert_eq!(
            g.neighbors(p0, Direction::In, container, 1).unwrap().len(),
            1
        );
    }

    #[test]
    fn comment_dates_after_parents() {
        let d = tiny();
        for c in &d.comments {
            let parent = match c.reply_of {
                Ok(p) => d.posts[p].base.creation,
                Err(cc) => d.comments[cc].base.creation,
            };
            assert!(c.base.creation >= parent);
        }
    }

    #[test]
    fn index_lookup_ready() {
        let d = tiny();
        let g = d.build(Partitioner::new(1, 2)).unwrap();
        let person = g.schema().vertex_label("Person").unwrap();
        let first = g.schema().prop("firstName").unwrap();
        let name = d.person_first_name(0);
        let mut found = Vec::new();
        for p in g.partitioner().parts() {
            found.extend(
                g.read(p)
                    .index_lookup(person, first, &Value::str(name), 1)
                    .unwrap(),
            );
        }
        assert!(found.contains(&d.person(0)));
    }

    #[test]
    fn scale_factors_preserve_ratio() {
        // We don't generate the full SF datasets in tests (slow); just
        // check the parameter ratio matches the paper's edge ratio ≈ 3.1.
        let a = SnbParams::sf300_sim();
        let b = SnbParams::sf1000_sim();
        let ratio = b.persons as f64 / a.persons as f64;
        assert!(ratio > 2.8 && ratio < 3.4, "ratio {ratio}");
    }

    #[test]
    fn vertex_id_namespaces_disjoint() {
        assert_ne!(vid(Kind::Person, 0), vid(Kind::Post, 0));
        assert_ne!(vid(Kind::Post, 5), vid(Kind::Comment, 5));
    }
}
