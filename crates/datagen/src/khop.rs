//! Power-law graphs for the k-hop scalability studies (LiveJournal- and
//! Friendster-shaped, Table II).
//!
//! Out-degrees follow a bounded power law; edge targets are drawn from a
//! power-law popularity distribution over a permuted vertex space, giving
//! the hub-dominated structure of real social graphs. "As all these graphs
//! are unweighted, we assign a random integer weight to each vertex for
//! aggregation queries" (§V) — we do the same.

use rand::Rng;

use graphdance_common::rng::{derive, PowerLaw};
use graphdance_common::{GdResult, Partitioner, Value, VertexId};
use graphdance_storage::{Graph, GraphBuilder};

use crate::DatasetSummary;

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct KhopParams {
    /// Dataset name (for reports).
    pub name: String,
    /// Vertex count.
    pub vertices: u64,
    /// Average out-degree target.
    pub avg_degree: f64,
    /// Power-law exponent for both degrees and target popularity.
    pub alpha: f64,
    /// Master seed.
    pub seed: u64,
}

impl KhopParams {
    /// LiveJournal-shaped graph (original: 4.0 M vertices, 34.7 M edges,
    /// avg degree ≈ 8.7) scaled down to `vertices`.
    pub fn lj_sim(vertices: u64) -> Self {
        KhopParams {
            name: "lj-sim".into(),
            vertices,
            avg_degree: 8.7,
            alpha: 1.7,
            seed: 0x11_AE90,
        }
    }

    /// Friendster-shaped graph (original: 65.6 M vertices, 1.81 B edges,
    /// avg degree ≈ 27.5) scaled down to `vertices`.
    pub fn fs_sim(vertices: u64) -> Self {
        KhopParams {
            name: "fs-sim".into(),
            vertices,
            avg_degree: 27.5,
            alpha: 1.6,
            seed: 0xF2_EE5D,
        }
    }
}

/// A generated k-hop dataset (edge list kept so it can be materialized for
/// any partitioning).
pub struct KhopDataset {
    params: KhopParams,
    edges: Vec<(u64, u64)>,
    weights: Vec<i64>,
}

impl KhopDataset {
    /// Generate deterministically from the parameters.
    pub fn generate(params: KhopParams) -> Self {
        let n = params.vertices as usize;
        let mut rng = derive(params.seed, 1);
        // Degree distribution: power law over 1..max_deg scaled to hit the
        // average. Sample raw shape first, then scale.
        let max_deg = ((params.avg_degree * 40.0) as usize).clamp(8, n.max(8));
        let deg_dist = PowerLaw::new(max_deg, params.alpha);
        let mut degs: Vec<usize> = (0..n).map(|_| deg_dist.sample(&mut rng) + 1).collect();
        let raw_avg = degs.iter().sum::<usize>() as f64 / n as f64;
        let scale = params.avg_degree / raw_avg;
        for d in &mut degs {
            let scaled = (*d as f64 * scale).round() as usize;
            *d = scaled.clamp(1, n.saturating_sub(1).max(1));
        }
        // Target popularity: power law over a permuted id space so hubs are
        // spread across the hash partitions.
        let pop = PowerLaw::new(n, params.alpha - 0.5);
        let mut perm: Vec<u64> = (0..params.vertices).collect();
        // Fisher-Yates with the seeded rng.
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            perm.swap(i, j);
        }
        let mut edges = Vec::with_capacity((n as f64 * params.avg_degree) as usize);
        for (src, &d) in degs.iter().enumerate() {
            let mut emitted = 0;
            let mut attempts = 0;
            while emitted < d && attempts < d * 4 {
                attempts += 1;
                let dst = perm[pop.sample(&mut rng)];
                if dst != src as u64 {
                    edges.push((src as u64, dst));
                    emitted += 1;
                }
            }
        }
        edges.sort_unstable();
        edges.dedup();
        let mut wrng = derive(params.seed, 2);
        let weights = (0..n).map(|_| wrng.gen_range(0..1_000_000i64)).collect();
        KhopDataset {
            params,
            edges,
            weights,
        }
    }

    /// The generation parameters.
    pub fn params(&self) -> &KhopParams {
        &self.params
    }

    /// Directed edge count.
    pub fn num_edges(&self) -> u64 {
        self.edges.len() as u64
    }

    /// Materialize for a cluster topology.
    pub fn build(&self, partitioner: Partitioner) -> GdResult<Graph> {
        let mut b = GraphBuilder::new(partitioner);
        let node = b.schema_mut().register_vertex_label("Node");
        let link = b.schema_mut().register_edge_label("link");
        let weight = b.schema_mut().register_prop("weight");
        for v in 0..self.params.vertices {
            b.add_vertex(
                VertexId(v),
                node,
                vec![(weight, Value::Int(self.weights[v as usize]))],
            )?;
        }
        for &(s, d) in &self.edges {
            b.add_edge(VertexId(s), link, VertexId(d), vec![])?;
        }
        Ok(b.finish())
    }

    /// Table II summary (bytes measured on a single-partition build).
    pub fn summary(&self) -> DatasetSummary {
        DatasetSummary {
            name: self.params.name.clone(),
            vertices: self.params.vertices,
            edges: self.num_edges(),
            raw_bytes: 0, // filled by callers that built the graph
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphdance_storage::Direction;

    #[test]
    fn generation_is_deterministic() {
        let a = KhopDataset::generate(KhopParams::lj_sim(500));
        let b = KhopDataset::generate(KhopParams::lj_sim(500));
        assert_eq!(a.edges, b.edges);
        assert_eq!(a.weights, b.weights);
    }

    #[test]
    fn different_seeds_differ() {
        let mut p = KhopParams::lj_sim(500);
        let a = KhopDataset::generate(p.clone());
        p.seed ^= 1;
        let b = KhopDataset::generate(p);
        assert_ne!(a.edges, b.edges);
    }

    #[test]
    fn average_degree_roughly_matches() {
        let d = KhopDataset::generate(KhopParams::lj_sim(2000));
        let avg = d.num_edges() as f64 / 2000.0;
        assert!(avg > 4.0 && avg < 14.0, "avg degree {avg}");
        let fs = KhopDataset::generate(KhopParams::fs_sim(2000));
        let fs_avg = fs.num_edges() as f64 / 2000.0;
        assert!(fs_avg > avg, "fs should be denser: {fs_avg} vs {avg}");
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let d = KhopDataset::generate(KhopParams::lj_sim(2000));
        let mut indeg = vec![0usize; 2000];
        for &(_, dst) in &d.edges {
            indeg[dst as usize] += 1;
        }
        indeg.sort_unstable_by(|a, b| b.cmp(a));
        let top_share: usize = indeg[..20].iter().sum();
        assert!(
            top_share * 5 > d.edges.len(),
            "top-1% of vertices should attract >20% of edges ({top_share}/{})",
            d.edges.len()
        );
    }

    #[test]
    fn builds_into_graph() {
        let d = KhopDataset::generate(KhopParams::lj_sim(300));
        let g = d.build(Partitioner::new(2, 2)).unwrap();
        assert_eq!(g.total_vertices(), 300);
        assert_eq!(g.total_edges(), d.num_edges());
        // weights readable
        let w = g.schema().prop("weight").unwrap();
        assert!(g
            .vertex_prop(VertexId(0), w)
            .unwrap()
            .unwrap()
            .as_int()
            .is_some());
        // edges traversable
        let link = g.schema().edge_label("link").unwrap();
        let deg: usize = (0..300)
            .map(|v| {
                g.neighbors(VertexId(v), Direction::Out, link, 1)
                    .unwrap()
                    .len()
            })
            .sum();
        assert_eq!(deg as u64, d.num_edges());
    }

    #[test]
    fn no_self_loops() {
        let d = KhopDataset::generate(KhopParams::fs_sim(500));
        assert!(d.edges.iter().all(|(s, t)| s != t));
    }
}
