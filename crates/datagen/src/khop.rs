//! Power-law graphs for the k-hop scalability studies (LiveJournal- and
//! Friendster-shaped, Table II).
//!
//! Out-degrees follow a bounded power law; edge targets are drawn from a
//! power-law popularity distribution over a permuted vertex space, giving
//! the hub-dominated structure of real social graphs. "As all these graphs
//! are unweighted, we assign a random integer weight to each vertex for
//! aggregation queries" (§V) — we do the same.

use rand::Rng;

use graphdance_common::rng::{derive, PowerLaw};
use graphdance_common::{FxHashMap, GdResult, Partitioner, Value, VertexId};
use graphdance_storage::{
    adjacency, partition_stream, FennelConfig, Graph, GraphBuilder, PartitionMode,
};

use crate::DatasetSummary;

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct KhopParams {
    /// Dataset name (for reports).
    pub name: String,
    /// Vertex count.
    pub vertices: u64,
    /// Average out-degree target.
    pub avg_degree: f64,
    /// Power-law exponent for both degrees and target popularity.
    pub alpha: f64,
    /// Master seed.
    pub seed: u64,
    /// Community-locality axis: probability that an edge targets a
    /// vertex inside the source's community instead of the global
    /// popularity draw. `0.0` (the default) reproduces the original
    /// hub-dominated structure bit-for-bit.
    pub locality: f64,
    /// Community width: consecutive-id blocks of this many vertices.
    /// Ignored while `locality == 0.0`.
    pub community: u64,
}

impl KhopParams {
    /// LiveJournal-shaped graph (original: 4.0 M vertices, 34.7 M edges,
    /// avg degree ≈ 8.7) scaled down to `vertices`.
    pub fn lj_sim(vertices: u64) -> Self {
        KhopParams {
            name: "lj-sim".into(),
            vertices,
            avg_degree: 8.7,
            alpha: 1.7,
            seed: 0x11_AE90,
            locality: 0.0,
            community: 0,
        }
    }

    /// Friendster-shaped graph (original: 65.6 M vertices, 1.81 B edges,
    /// avg degree ≈ 27.5) scaled down to `vertices`.
    pub fn fs_sim(vertices: u64) -> Self {
        KhopParams {
            name: "fs-sim".into(),
            vertices,
            avg_degree: 27.5,
            alpha: 1.6,
            seed: 0xF2_EE5D,
            locality: 0.0,
            community: 0,
        }
    }

    /// Enable the community-locality axis: each edge targets a vertex in
    /// the source's `community`-wide consecutive-id block with probability
    /// `locality` (power-law within the block), and falls back to the
    /// global popularity draw otherwise. Models the community structure
    /// real social graphs have and hash partitioning destroys — the
    /// workload where a graph-aware placement (Fennel) pays off.
    pub fn with_locality(mut self, locality: f64, community: u64) -> Self {
        self.locality = locality.clamp(0.0, 1.0);
        self.community = community;
        self
    }
}

/// A generated k-hop dataset (edge list kept so it can be materialized for
/// any partitioning).
pub struct KhopDataset {
    params: KhopParams,
    edges: Vec<(u64, u64)>,
    weights: Vec<i64>,
}

impl KhopDataset {
    /// Generate deterministically from the parameters.
    pub fn generate(params: KhopParams) -> Self {
        let n = params.vertices as usize;
        let mut rng = derive(params.seed, 1);
        // Degree distribution: power law over 1..max_deg scaled to hit the
        // average. Sample raw shape first, then scale.
        let max_deg = ((params.avg_degree * 40.0) as usize).clamp(8, n.max(8));
        let deg_dist = PowerLaw::new(max_deg, params.alpha);
        let mut degs: Vec<usize> = (0..n).map(|_| deg_dist.sample(&mut rng) + 1).collect();
        let raw_avg = degs.iter().sum::<usize>() as f64 / n as f64;
        let scale = params.avg_degree / raw_avg;
        for d in &mut degs {
            let scaled = (*d as f64 * scale).round() as usize;
            *d = scaled.clamp(1, n.saturating_sub(1).max(1));
        }
        // Target popularity: power law over a permuted id space so hubs are
        // spread across the hash partitions.
        let pop = PowerLaw::new(n, params.alpha - 0.5);
        let mut perm: Vec<u64> = (0..params.vertices).collect();
        // Fisher-Yates with the seeded rng.
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            perm.swap(i, j);
        }
        // Community-local targets (power law inside the source's
        // consecutive-id block). The `locality > 0.0` short-circuit keeps
        // the RNG stream bit-identical to the original generator when the
        // axis is off, so existing datasets do not change.
        let comm = params.community.max(1);
        let local_pop = PowerLaw::new(comm as usize, params.alpha - 0.5);
        let mut edges = Vec::with_capacity((n as f64 * params.avg_degree) as usize);
        for (src, &d) in degs.iter().enumerate() {
            let mut emitted = 0;
            let mut attempts = 0;
            while emitted < d && attempts < d * 4 {
                attempts += 1;
                let dst = if params.locality > 0.0 && comm > 1 && rng.gen_bool(params.locality) {
                    let base = (src as u64 / comm) * comm;
                    let span = comm.min(params.vertices - base);
                    base + local_pop.sample(&mut rng) as u64 % span
                } else {
                    perm[pop.sample(&mut rng)]
                };
                if dst != src as u64 {
                    edges.push((src as u64, dst));
                    emitted += 1;
                }
            }
        }
        edges.sort_unstable();
        edges.dedup();
        let mut wrng = derive(params.seed, 2);
        let weights = (0..n).map(|_| wrng.gen_range(0..1_000_000i64)).collect();
        KhopDataset {
            params,
            edges,
            weights,
        }
    }

    /// The generation parameters.
    pub fn params(&self) -> &KhopParams {
        &self.params
    }

    /// Directed edge count.
    pub fn num_edges(&self) -> u64 {
        self.edges.len() as u64
    }

    /// Materialize for a cluster topology with hash placement.
    pub fn build(&self, partitioner: Partitioner) -> GdResult<Graph> {
        self.build_with_mode(partitioner, PartitionMode::Hash)
    }

    /// Materialize for a cluster topology under the given placement mode.
    /// `Fennel` streams the edge list through the one-pass partitioner
    /// (id order) and layers the resulting assignment over the hash.
    pub fn build_with_mode(
        &self,
        partitioner: Partitioner,
        mode: PartitionMode,
    ) -> GdResult<Graph> {
        let assignments = match mode {
            PartitionMode::Hash => FxHashMap::default(),
            PartitionMode::Fennel => {
                let edges: Vec<(VertexId, VertexId)> = self
                    .edges
                    .iter()
                    .map(|&(s, d)| (VertexId(s), VertexId(d)))
                    .collect();
                let order: Vec<VertexId> = (0..self.params.vertices).map(VertexId).collect();
                partition_stream(
                    partitioner.num_parts(),
                    &order,
                    &adjacency(&edges),
                    &FennelConfig::default(),
                )
            }
        };
        let mut b = GraphBuilder::with_assignments(partitioner, assignments);
        let node = b.schema_mut().register_vertex_label("Node");
        let link = b.schema_mut().register_edge_label("link");
        let weight = b.schema_mut().register_prop("weight");
        for v in 0..self.params.vertices {
            b.add_vertex(
                VertexId(v),
                node,
                vec![(weight, Value::Int(self.weights[v as usize]))],
            )?;
        }
        for &(s, d) in &self.edges {
            b.add_edge(VertexId(s), link, VertexId(d), vec![])?;
        }
        Ok(b.finish())
    }

    /// Table II summary (bytes measured on a single-partition build).
    pub fn summary(&self) -> DatasetSummary {
        DatasetSummary {
            name: self.params.name.clone(),
            vertices: self.params.vertices,
            edges: self.num_edges(),
            raw_bytes: 0, // filled by callers that built the graph
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphdance_storage::Direction;

    #[test]
    fn generation_is_deterministic() {
        let a = KhopDataset::generate(KhopParams::lj_sim(500));
        let b = KhopDataset::generate(KhopParams::lj_sim(500));
        assert_eq!(a.edges, b.edges);
        assert_eq!(a.weights, b.weights);
    }

    #[test]
    fn different_seeds_differ() {
        let mut p = KhopParams::lj_sim(500);
        let a = KhopDataset::generate(p.clone());
        p.seed ^= 1;
        let b = KhopDataset::generate(p);
        assert_ne!(a.edges, b.edges);
    }

    #[test]
    fn average_degree_roughly_matches() {
        let d = KhopDataset::generate(KhopParams::lj_sim(2000));
        let avg = d.num_edges() as f64 / 2000.0;
        assert!(avg > 4.0 && avg < 14.0, "avg degree {avg}");
        let fs = KhopDataset::generate(KhopParams::fs_sim(2000));
        let fs_avg = fs.num_edges() as f64 / 2000.0;
        assert!(fs_avg > avg, "fs should be denser: {fs_avg} vs {avg}");
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let d = KhopDataset::generate(KhopParams::lj_sim(2000));
        let mut indeg = vec![0usize; 2000];
        for &(_, dst) in &d.edges {
            indeg[dst as usize] += 1;
        }
        indeg.sort_unstable_by(|a, b| b.cmp(a));
        let top_share: usize = indeg[..20].iter().sum();
        assert!(
            top_share * 5 > d.edges.len(),
            "top-1% of vertices should attract >20% of edges ({top_share}/{})",
            d.edges.len()
        );
    }

    #[test]
    fn builds_into_graph() {
        let d = KhopDataset::generate(KhopParams::lj_sim(300));
        let g = d.build(Partitioner::new(2, 2)).unwrap();
        assert_eq!(g.total_vertices(), 300);
        assert_eq!(g.total_edges(), d.num_edges());
        // weights readable
        let w = g.schema().prop("weight").unwrap();
        assert!(g
            .vertex_prop(VertexId(0), w)
            .unwrap()
            .unwrap()
            .as_int()
            .is_some());
        // edges traversable
        let link = g.schema().edge_label("link").unwrap();
        let deg: usize = (0..300)
            .map(|v| {
                g.neighbors(VertexId(v), Direction::Out, link, 1)
                    .unwrap()
                    .len()
            })
            .sum();
        assert_eq!(deg as u64, d.num_edges());
    }

    #[test]
    fn no_self_loops() {
        let d = KhopDataset::generate(KhopParams::fs_sim(500));
        assert!(d.edges.iter().all(|(s, t)| s != t));
    }

    #[test]
    fn locality_zero_is_bit_identical_to_original() {
        let a = KhopDataset::generate(KhopParams::lj_sim(500));
        let b = KhopDataset::generate(KhopParams::lj_sim(500).with_locality(0.0, 64));
        assert_eq!(a.edges, b.edges);
        assert_eq!(a.weights, b.weights);
    }

    #[test]
    fn locality_concentrates_edges_within_communities() {
        let comm = 50u64;
        let local = KhopDataset::generate(KhopParams::lj_sim(2000).with_locality(0.8, comm));
        let global = KhopDataset::generate(KhopParams::lj_sim(2000));
        let within_frac = |d: &KhopDataset| {
            let within = d.edges.iter().filter(|(s, t)| s / comm == t / comm).count();
            within as f64 / d.edges.len() as f64
        };
        let (l, g) = (within_frac(&local), within_frac(&global));
        assert!(l > 0.5, "locality 0.8 should keep most edges local ({l})");
        assert!(l > 4.0 * g, "local {l} vs global {g}");
    }

    #[test]
    fn fennel_build_preserves_graph_and_cuts_fewer_edges() {
        use graphdance_common::PartId;
        let d = KhopDataset::generate(KhopParams::lj_sim(400).with_locality(0.8, 40));
        let part = Partitioner::new(2, 2);
        let h = d.build(part).unwrap();
        let f = d.build_with_mode(part, PartitionMode::Fennel).unwrap();
        assert_eq!(f.total_vertices(), 400);
        assert_eq!(f.total_edges(), d.num_edges());
        let edges: Vec<(VertexId, VertexId)> = d
            .edges
            .iter()
            .map(|&(s, t)| (VertexId(s), VertexId(t)))
            .collect();
        let cut = |g: &Graph| graphdance_storage::edge_cut(&edges, |v| -> PartId { g.part_of(v) });
        assert!(
            cut(&f) < cut(&h),
            "fennel cut {} vs hash cut {}",
            cut(&f),
            cut(&h)
        );
    }
}
