//! Weakly connected components via parallel label propagation.

use std::sync::atomic::{AtomicBool, Ordering};

use graphdance_common::{FxHashMap, Label, VertexId};
use graphdance_storage::{Direction, Graph, TS_LIVE};

use parking_lot::Mutex;

/// Compute weakly connected components over edges with `label`
/// ([`Label::ANY`] for all). Returns `vertex -> component id` where the
/// component id is the minimum vertex id in the component.
pub fn weakly_connected_components(graph: &Graph, label: Label) -> FxHashMap<VertexId, VertexId> {
    let ts = TS_LIVE - 1;
    let parts: Vec<_> = graph.partitioner().parts().collect();
    // Global label map, sharded per partition.
    let shards: Vec<Mutex<FxHashMap<VertexId, VertexId>>> = parts
        .iter()
        .map(|&p| {
            let part = graph.read(p);
            Mutex::new(part.scan_all(ts).map(|v| (v, v)).collect())
        })
        .collect();

    let changed = AtomicBool::new(true);
    let mut rounds = 0usize;
    // sync: convergence flag only — the scoped-thread join below is the
    // happens-before edge for the label data itself
    while changed.swap(false, Ordering::Relaxed) {
        rounds += 1;
        assert!(rounds < 10_000, "label propagation must converge");
        std::thread::scope(|scope| {
            for (pi, &p) in parts.iter().enumerate() {
                let shards = &shards;
                let changed = &changed;
                let graph = &graph;
                scope.spawn(move || {
                    let part = graph.read(p);
                    let vertices: Vec<VertexId> = shards[pi].lock().keys().copied().collect();
                    for v in vertices {
                        let mine = *shards[pi].lock().get(&v).expect("known vertex");
                        let mut best = mine;
                        for e in part
                            .edges(v, Direction::Both, label, ts)
                            .expect("vertex exists")
                        {
                            let other_shard = graph.part_of(e.neighbor).as_usize();
                            if let Some(theirs) = shards[other_shard].lock().get(&e.neighbor) {
                                if *theirs < best {
                                    best = *theirs;
                                }
                            }
                        }
                        if best < mine {
                            shards[pi].lock().insert(v, best);
                            // sync: flag re-read only after scope join
                            changed.store(true, Ordering::Relaxed);
                            // Push to neighbours eagerly (min propagation).
                            for e in part
                                .edges(v, Direction::Both, label, ts)
                                .expect("vertex exists")
                            {
                                let os = graph.part_of(e.neighbor).as_usize();
                                let mut shard = shards[os].lock();
                                if let Some(t) = shard.get_mut(&e.neighbor) {
                                    if best < *t {
                                        *t = best;
                                    }
                                }
                            }
                        }
                    }
                });
            }
        });
    }
    shards.into_iter().flat_map(|s| s.into_inner()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphdance_common::Partitioner;
    use graphdance_storage::GraphBuilder;

    #[test]
    fn two_components() {
        let mut b = GraphBuilder::new(Partitioner::new(2, 2));
        let l = b.schema_mut().register_vertex_label("V");
        let e = b.schema_mut().register_edge_label("E");
        for i in 0..10u64 {
            b.add_vertex(VertexId(i), l, vec![]).unwrap();
        }
        // component A: 0-1-2-3-4 chain; component B: 5-6-7-8-9 ring
        for i in 0..4u64 {
            b.add_edge(VertexId(i), e, VertexId(i + 1), vec![]).unwrap();
        }
        for i in 5..10u64 {
            b.add_edge(VertexId(i), e, VertexId(5 + (i - 5 + 1) % 5), vec![])
                .unwrap();
        }
        let g = b.finish();
        let cc = weakly_connected_components(&g, Label::ANY);
        for i in 0..5u64 {
            assert_eq!(cc[&VertexId(i)], VertexId(0), "vertex {i}");
        }
        for i in 5..10u64 {
            assert_eq!(cc[&VertexId(i)], VertexId(5), "vertex {i}");
        }
    }

    #[test]
    fn isolated_vertices_are_their_own_component() {
        let mut b = GraphBuilder::new(Partitioner::single());
        let l = b.schema_mut().register_vertex_label("V");
        b.schema_mut().register_edge_label("E");
        for i in 0..3u64 {
            b.add_vertex(VertexId(i), l, vec![]).unwrap();
        }
        let g = b.finish();
        let cc = weakly_connected_components(&g, Label::ANY);
        for i in 0..3u64 {
            assert_eq!(cc[&VertexId(i)], VertexId(i));
        }
    }

    #[test]
    fn direction_is_ignored() {
        // a -> b and c -> b: all weakly connected despite directions.
        let mut b = GraphBuilder::new(Partitioner::new(1, 2));
        let l = b.schema_mut().register_vertex_label("V");
        let e = b.schema_mut().register_edge_label("E");
        for i in 0..3u64 {
            b.add_vertex(VertexId(i), l, vec![]).unwrap();
        }
        b.add_edge(VertexId(0), e, VertexId(1), vec![]).unwrap();
        b.add_edge(VertexId(2), e, VertexId(1), vec![]).unwrap();
        let g = b.finish();
        let cc = weakly_connected_components(&g, Label::ANY);
        assert!(cc.values().all(|c| *c == VertexId(0)));
    }
}
