//! # graphdance-analytics
//!
//! Offline whole-graph analytics — the third workload class of the paper's
//! Table I ("PageRank, community detection, graph coloring"; dense access,
//! ~100% of the graph, minute-to-hour latency class at production scale).
//!
//! Algorithms run directly over the partitioned storage with one thread
//! per partition and superstep barriers — the classic iterative
//! vertex-program shape (§II-A), deliberately *not* the PSTM traverser
//! model, to measure the contrast Table I describes.

pub mod degree;
pub mod pagerank;
pub mod wcc;

pub use degree::degree_histogram;
pub use pagerank::{pagerank, PageRankConfig};
pub use wcc::weakly_connected_components;
