//! Degree-distribution statistics (used to sanity-check the synthetic
//! datasets against their real-world counterparts' shapes).

use graphdance_common::{FxHashMap, Label};
use graphdance_storage::{Direction, Graph, TS_LIVE};

/// Histogram of out-degrees: `degree -> vertex count`, computed in parallel
/// over partitions.
pub fn degree_histogram(graph: &Graph, label: Label) -> FxHashMap<usize, u64> {
    let ts = TS_LIVE - 1;
    let parts: Vec<_> = graph.partitioner().parts().collect();
    let partials: Vec<FxHashMap<usize, u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = parts
            .iter()
            .map(|&p| {
                let graph = &graph;
                scope.spawn(move || {
                    let part = graph.read(p);
                    let mut h: FxHashMap<usize, u64> = FxHashMap::default();
                    for v in part.scan_all(ts) {
                        let d = part
                            .degree(v, Direction::Out, label, ts)
                            .expect("scanned vertex exists");
                        *h.entry(d).or_insert(0) += 1;
                    }
                    h
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no panics"))
            .collect()
    });
    let mut out: FxHashMap<usize, u64> = FxHashMap::default();
    for p in partials {
        for (d, c) in p {
            *out.entry(d).or_insert(0) += c;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphdance_common::{Partitioner, VertexId};
    use graphdance_storage::GraphBuilder;

    #[test]
    fn histogram_counts_degrees() {
        let mut b = GraphBuilder::new(Partitioner::new(2, 2));
        let l = b.schema_mut().register_vertex_label("V");
        let e = b.schema_mut().register_edge_label("E");
        for i in 0..6u64 {
            b.add_vertex(VertexId(i), l, vec![]).unwrap();
        }
        // v0: degree 3, v1: degree 1, rest: 0
        for d in [1u64, 2, 3] {
            b.add_edge(VertexId(0), e, VertexId(d), vec![]).unwrap();
        }
        b.add_edge(VertexId(1), e, VertexId(2), vec![]).unwrap();
        let g = b.finish();
        let h = degree_histogram(&g, Label::ANY);
        assert_eq!(h.get(&3), Some(&1));
        assert_eq!(h.get(&1), Some(&1));
        assert_eq!(h.get(&0), Some(&4));
        assert_eq!(h.values().sum::<u64>(), 6);
    }

    #[test]
    fn power_law_dataset_has_heavy_tail() {
        use graphdance_datagen::{KhopDataset, KhopParams};
        let d = KhopDataset::generate(KhopParams::fs_sim(1500));
        let g = d.build(Partitioner::new(1, 2)).unwrap();
        let link = g.schema().edge_label("link").unwrap();
        let h = degree_histogram(&g, link);
        let max_deg = h.keys().max().copied().unwrap_or(0);
        let avg = d.num_edges() as f64 / 1500.0;
        assert!(
            max_deg as f64 > avg * 3.0,
            "heavy tail expected: max {max_deg}, avg {avg}"
        );
    }
}
