//! Parallel PageRank over the partitioned graph.
//!
//! One thread per partition; each iteration scatters `rank/out_degree`
//! along out-edges into per-partition accumulators and gathers with the
//! damping update, separated by barriers — the BSP iterative-analytics
//! pattern of §II-A.

use std::sync::Barrier;

use graphdance_common::{FxHashMap, Label, VertexId};
use graphdance_storage::{Direction, Graph, TS_LIVE};

use parking_lot::Mutex;

/// PageRank parameters.
#[derive(Debug, Clone)]
pub struct PageRankConfig {
    /// Damping factor (0.85 in the original paper).
    pub damping: f64,
    /// Number of iterations.
    pub iterations: usize,
    /// Edge label to walk ([`Label::ANY`] for the whole graph).
    pub label: Label,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        PageRankConfig {
            damping: 0.85,
            iterations: 20,
            label: Label::ANY,
        }
    }
}

/// Run PageRank; returns `(vertex, rank)` for every vertex. Ranks sum to
/// ~1 (dangling mass is redistributed uniformly).
pub fn pagerank(graph: &Graph, config: &PageRankConfig) -> FxHashMap<VertexId, f64> {
    let parts: Vec<_> = graph.partitioner().parts().collect();
    let ts = TS_LIVE - 1;
    // Per-partition vertex lists and out-degrees.
    let locals: Vec<Vec<(VertexId, usize)>> = parts
        .iter()
        .map(|&p| {
            let part = graph.read(p);
            part.scan_all(ts)
                .map(|v| {
                    let deg = part
                        .degree(v, Direction::Out, config.label, ts)
                        .expect("scanned vertex exists");
                    (v, deg)
                })
                .collect()
        })
        .collect();
    let n: usize = locals.iter().map(Vec::len).sum();
    if n == 0 {
        return FxHashMap::default();
    }

    // rank maps per partition, double-buffered.
    let mut ranks: Vec<FxHashMap<VertexId, f64>> = locals
        .iter()
        .map(|l| l.iter().map(|(v, _)| (*v, 1.0 / n as f64)).collect())
        .collect();

    let barrier = Barrier::new(parts.len());
    for _ in 0..config.iterations {
        // Scatter into per-partition inboxes (locked; contention is part of
        // the dense-workload profile).
        let inboxes: Vec<Mutex<FxHashMap<VertexId, f64>>> = parts
            .iter()
            .map(|_| Mutex::new(FxHashMap::default()))
            .collect();
        let dangling = Mutex::new(0.0f64);
        std::thread::scope(|scope| {
            for (pi, &p) in parts.iter().enumerate() {
                let locals = &locals[pi];
                let ranks = &ranks[pi];
                let inboxes = &inboxes;
                let barrier = &barrier;
                let dangling = &dangling;
                let graph = &graph;
                let label = config.label;
                scope.spawn(move || {
                    let part = graph.read(p);
                    let mut local_dangling = 0.0;
                    // Buffer contributions per destination partition to
                    // bound lock traffic.
                    let mut outbufs: Vec<FxHashMap<VertexId, f64>> =
                        (0..inboxes.len()).map(|_| FxHashMap::default()).collect();
                    for (v, deg) in locals {
                        let r = ranks[v];
                        if *deg == 0 {
                            local_dangling += r;
                            continue;
                        }
                        let share = r / *deg as f64;
                        for e in part
                            .edges(*v, Direction::Out, label, TS_LIVE - 1)
                            .expect("vertex exists")
                        {
                            let dest = graph.part_of(e.neighbor).as_usize();
                            *outbufs[dest].entry(e.neighbor).or_insert(0.0) += share;
                        }
                    }
                    for (dest, buf) in outbufs.into_iter().enumerate() {
                        if !buf.is_empty() {
                            let mut inbox = inboxes[dest].lock();
                            for (v, c) in buf {
                                *inbox.entry(v).or_insert(0.0) += c;
                            }
                        }
                    }
                    *dangling.lock() += local_dangling;
                    barrier.wait();
                });
            }
        });
        // Gather.
        let dangling_share = dangling.into_inner() / n as f64;
        let base = (1.0 - config.damping) / n as f64;
        for (pi, inbox) in inboxes.into_iter().enumerate() {
            let inbox = inbox.into_inner();
            for (v, _) in &locals[pi] {
                let incoming = inbox.get(v).copied().unwrap_or(0.0);
                ranks[pi].insert(*v, base + config.damping * (incoming + dangling_share));
            }
        }
    }
    ranks.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphdance_common::Partitioner;
    use graphdance_storage::GraphBuilder;

    fn star(n: u64) -> Graph {
        // spokes all point at hub 0
        let mut b = GraphBuilder::new(Partitioner::new(2, 2));
        let l = b.schema_mut().register_vertex_label("V");
        let e = b.schema_mut().register_edge_label("E");
        for i in 0..n {
            b.add_vertex(VertexId(i), l, vec![]).unwrap();
        }
        for i in 1..n {
            b.add_edge(VertexId(i), e, VertexId(0), vec![]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn ranks_sum_to_one() {
        let g = star(20);
        let ranks = pagerank(&g, &PageRankConfig::default());
        let total: f64 = ranks.values().sum();
        assert!((total - 1.0).abs() < 1e-6, "total {total}");
    }

    #[test]
    fn hub_dominates_a_star() {
        let g = star(20);
        let ranks = pagerank(&g, &PageRankConfig::default());
        let hub = ranks[&VertexId(0)];
        for i in 1..20u64 {
            assert!(hub > ranks[&VertexId(i)] * 3.0, "hub should dominate");
        }
    }

    #[test]
    fn ring_is_uniform() {
        let mut b = GraphBuilder::new(Partitioner::new(1, 2));
        let l = b.schema_mut().register_vertex_label("V");
        let e = b.schema_mut().register_edge_label("E");
        for i in 0..10u64 {
            b.add_vertex(VertexId(i), l, vec![]).unwrap();
        }
        for i in 0..10u64 {
            b.add_edge(VertexId(i), e, VertexId((i + 1) % 10), vec![])
                .unwrap();
        }
        let g = b.finish();
        let ranks = pagerank(&g, &PageRankConfig::default());
        for (_, r) in ranks {
            assert!((r - 0.1).abs() < 1e-9, "symmetric ring rank {r}");
        }
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(Partitioner::single()).finish();
        assert!(pagerank(&g, &PageRankConfig::default()).is_empty());
    }
}
