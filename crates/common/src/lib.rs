//! # graphdance-common
//!
//! Foundation types shared by every GraphDance crate: identifiers, property
//! values, error types, a fast non-cryptographic hasher, deterministic RNG
//! helpers, and the graph partitioning function `H : V -> PartId` from the
//! PSTM paper (§II-C).
//!
//! Nothing in this crate depends on the storage or execution layers; it is
//! the bottom of the dependency graph.

pub mod error;
pub mod fxhash;
pub mod ids;
pub mod partition;
pub mod rng;
pub mod time;
pub mod value;

pub use error::{GdError, GdResult};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use ids::{EdgeId, Label, NodeId, PartId, PropKey, QueryId, ScopeId, VertexId, WorkerId};
pub use partition::Partitioner;
pub use value::Value;
