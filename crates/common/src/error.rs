//! Error types shared across GraphDance crates.

use std::fmt;

use crate::ids::{QueryId, VertexId};

/// Result alias used throughout GraphDance.
pub type GdResult<T> = Result<T, GdError>;

/// Top-level error type.
#[derive(Debug, Clone, PartialEq)]
pub enum GdError {
    /// A vertex id was not present in the graph.
    VertexNotFound(VertexId),
    /// A label or property key string was not registered in the schema.
    UnknownSymbol(String),
    /// A query program failed validation (e.g. a Join probe side references
    /// an undefined alias, or an aggregate appears in a non-tail position).
    InvalidProgram(String),
    /// Parse error in the Gremlin-like text DSL, with byte offset.
    Parse { offset: usize, message: String },
    /// Type mismatch during evaluation (e.g. comparing a string to an int
    /// with an arithmetic predicate).
    TypeError(String),
    /// The engine rejected a query submission (e.g. shut down).
    EngineClosed,
    /// A query exceeded its deadline and was aborted (mirrors the 50 ms
    /// time-budget abort policy cited in §II-A).
    QueryTimeout(QueryId),
    /// A query was cancelled by the client (or the service front-end) and
    /// its distributed state was torn down before completion.
    QueryCancelled(QueryId),
    /// The service admission queue was full; the submission was shed at
    /// the door instead of queueing unboundedly (backpressure).
    Overloaded,
    /// A transaction was aborted by concurrency control.
    TxnAborted(String),
    /// A runtime invariant checker (weight conservation, message
    /// conservation, liveness watchdog) detected a violation. Carries the
    /// checker's diagnostic dump. Only produced in debug builds, where the
    /// checkers are active; indicates an engine bug, not a user error.
    InvariantViolation(String),
    /// Internal invariant violation; indicates a bug.
    Internal(String),
}

impl fmt::Display for GdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GdError::VertexNotFound(v) => write!(f, "vertex {v:?} not found"),
            GdError::UnknownSymbol(s) => write!(f, "unknown label/property symbol: {s}"),
            GdError::InvalidProgram(m) => write!(f, "invalid traversal program: {m}"),
            GdError::Parse { offset, message } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            GdError::TypeError(m) => write!(f, "type error: {m}"),
            GdError::EngineClosed => write!(f, "engine is shut down"),
            GdError::QueryTimeout(q) => write!(f, "query {q:?} timed out"),
            GdError::QueryCancelled(q) => write!(f, "query {q:?} was cancelled"),
            GdError::Overloaded => write!(f, "service overloaded: admission queue full"),
            GdError::TxnAborted(m) => write!(f, "transaction aborted: {m}"),
            GdError::InvariantViolation(m) => write!(f, "invariant violation: {m}"),
            GdError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for GdError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            GdError::VertexNotFound(VertexId(3)).to_string(),
            "vertex v3 not found"
        );
        assert!(GdError::Parse {
            offset: 4,
            message: "x".into()
        }
        .to_string()
        .contains("byte 4"));
        assert!(GdError::QueryTimeout(QueryId(1)).to_string().contains("q1"));
        assert!(GdError::QueryCancelled(QueryId(2))
            .to_string()
            .contains("q2"));
        assert!(GdError::Overloaded.to_string().contains("overloaded"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&GdError::EngineClosed);
    }
}
