//! Date/time helpers, and the engine's one sanctioned wall clock.
//!
//! LDBC SNB properties (`creationDate`, `birthday`, `joinDate`, ...) are
//! timestamps. We store them as epoch milliseconds inside [`crate::Value::Int`]
//! and provide just enough calendar arithmetic for the benchmark queries
//! (which filter by date ranges and by birthday month/day).
//!
//! [`now`] is the only place the engine reads the host clock. Everything
//! else must call it instead of `std::time::Instant::now()` — enforced by
//! `cargo xtask check` (the `nondeterminism` lint) — so that clock reads
//! are findable in one grep and can be centrally instrumented or frozen.

use std::time::Instant;

/// Read the wall clock. The single sanctioned `Instant::now()` in the
/// workspace; see the module docs.
#[inline]
pub fn now() -> Instant {
    Instant::now() // lint: allow(nondeterminism) — the sanctioned clock read
}

/// Milliseconds in one day.
pub const MILLIS_PER_DAY: i64 = 24 * 60 * 60 * 1000;

/// Epoch milliseconds for midnight UTC on the given date.
///
/// Uses the standard civil-from-days algorithm (proleptic Gregorian).
/// Valid for all dates the benchmark generates (2002..2013).
pub fn date_millis(year: i32, month: u32, day: u32) -> i64 {
    days_from_civil(year, month, day) * MILLIS_PER_DAY
}

/// (year, month, day) for the given epoch milliseconds (UTC midnight-based).
pub fn civil_from_millis(ms: i64) -> (i32, u32, u32) {
    civil_from_days(ms.div_euclid(MILLIS_PER_DAY))
}

/// The month (1..=12) of an epoch-millis timestamp.
pub fn month_of(ms: i64) -> u32 {
    civil_from_millis(ms).1
}

/// The day-of-month (1..=31) of an epoch-millis timestamp.
pub fn day_of(ms: i64) -> u32 {
    civil_from_millis(ms).2
}

// Howard Hinnant's `days_from_civil`: days since 1970-01-01.
fn days_from_civil(y: i32, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y } as i64;
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = ((m + 9) % 12) as i64; // Mar=0 .. Feb=11
    let doy = (153 * mp + 2) / 5 + d as i64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

// Inverse of `days_from_civil`.
fn civil_from_days(z: i64) -> (i32, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    ((if m <= 2 { y + 1 } else { y }) as i32, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_zero() {
        assert_eq!(date_millis(1970, 1, 1), 0);
    }

    #[test]
    fn known_dates() {
        // 2010-01-01 is 14610 days after epoch.
        assert_eq!(date_millis(2010, 1, 1), 14_610 * MILLIS_PER_DAY);
        assert_eq!(civil_from_millis(date_millis(2010, 1, 1)), (2010, 1, 1));
    }

    #[test]
    fn roundtrip_many_dates() {
        for year in [1970, 1999, 2000, 2004, 2010, 2012, 2013] {
            for month in 1..=12u32 {
                for day in [1u32, 15, 28] {
                    let ms = date_millis(year, month, day);
                    assert_eq!(civil_from_millis(ms), (year, month, day));
                }
            }
        }
    }

    #[test]
    fn leap_year_handling() {
        let feb29 = date_millis(2012, 2, 29);
        assert_eq!(civil_from_millis(feb29), (2012, 2, 29));
        assert_eq!(civil_from_millis(feb29 + MILLIS_PER_DAY), (2012, 3, 1));
    }

    #[test]
    fn month_day_extractors() {
        let ms = date_millis(2011, 7, 21) + 5 * 60 * 60 * 1000; // 5am
        assert_eq!(month_of(ms), 7);
        assert_eq!(day_of(ms), 21);
    }

    #[test]
    fn ordering_matches_calendar() {
        assert!(date_millis(2010, 5, 3) < date_millis(2010, 5, 4));
        assert!(date_millis(2009, 12, 31) < date_millis(2010, 1, 1));
    }
}
