//! Date/time helpers, and the engine's one sanctioned wall clock.
//!
//! LDBC SNB properties (`creationDate`, `birthday`, `joinDate`, ...) are
//! timestamps. We store them as epoch milliseconds inside [`crate::Value::Int`]
//! and provide just enough calendar arithmetic for the benchmark queries
//! (which filter by date ranges and by birthday month/day).
//!
//! [`now`] is the only place the engine reads the host clock. Everything
//! else must call it instead of `std::time::Instant::now()` — enforced by
//! `cargo xtask check` (the `nondeterminism` lint) — so that clock reads
//! are findable in one grep and can be centrally instrumented or frozen.
//!
//! "Frozen" is not hypothetical: [`sim`] provides a thread-local **virtual
//! clock** for the deterministic simulation mode. While a thread holds a
//! [`sim::ClockGuard`], its `now()` reads return a fixed epoch plus a
//! virtual-nanosecond offset that only moves when the simulator advances
//! it, making timeouts, propagation delays, and watchdogs pure functions of
//! the simulation schedule.

use std::time::Instant;

/// Read the clock: the thread's virtual clock when frozen ([`sim`]),
/// otherwise the wall clock. The single sanctioned `Instant::now()` in the
/// workspace; see the module docs.
#[inline]
pub fn now() -> Instant {
    if let Some(ns) = sim::current_nanos() {
        return sim::base() + std::time::Duration::from_nanos(ns);
    }
    Instant::now() // lint: allow(nondeterminism) — the sanctioned clock read
}

/// The thread-local virtual clock behind deterministic simulation.
///
/// The clock is per-thread on purpose: a simulation runs its whole cluster
/// on one OS thread, and freezing only that thread's clock lets other test
/// threads (and the threaded engine) keep real time. All virtual instants
/// are `base() + offset`, so `Instant` arithmetic (deadlines, `deliver_at`,
/// durations) behaves identically to wall-clock code paths.
pub mod sim {
    use std::cell::Cell;
    use std::marker::PhantomData;
    use std::sync::OnceLock;
    use std::time::{Duration, Instant};

    thread_local! {
        /// Virtual nanoseconds since [`base`], or `None` when this thread
        /// reads the wall clock.
        static VIRTUAL_NANOS: Cell<Option<u64>> = const { Cell::new(None) };
    }

    /// The process-wide epoch all virtual instants are offsets from.
    pub(super) fn base() -> Instant {
        static BASE: OnceLock<Instant> = OnceLock::new();
        *BASE.get_or_init(|| {
            Instant::now() // lint: allow(nondeterminism) — virtual-clock epoch anchor
        })
    }

    /// The thread's virtual offset, or `None` when unfrozen.
    #[inline]
    pub(super) fn current_nanos() -> Option<u64> {
        VIRTUAL_NANOS.with(Cell::get)
    }

    /// Keeps the calling thread's clock frozen; dropping it restores wall
    /// time (panic-safe, so a failing simulation test cannot leak a frozen
    /// clock into the next test on the same thread).
    #[must_use = "the clock unfreezes when the guard drops"]
    pub struct ClockGuard {
        /// `!Send`: the guard must drop on the thread it froze.
        _pinned: PhantomData<*const ()>,
    }

    impl Drop for ClockGuard {
        fn drop(&mut self) {
            VIRTUAL_NANOS.with(|v| v.set(None));
        }
    }

    /// Freeze this thread's clock at virtual time zero.
    ///
    /// # Panics
    /// Panics if the thread's clock is already frozen — nesting two
    /// simulations on one thread would silently share (and reset) a clock.
    pub fn freeze_clock() -> ClockGuard {
        VIRTUAL_NANOS.with(|v| {
            assert!(
                v.get().is_none(),
                "virtual clock is already frozen on this thread"
            );
            v.set(Some(0));
        });
        let _ = base(); // pin the epoch before the first virtual read
        ClockGuard {
            _pinned: PhantomData,
        }
    }

    /// Is this thread's clock frozen?
    #[inline]
    pub fn is_frozen() -> bool {
        current_nanos().is_some()
    }

    /// Virtual nanoseconds since the freeze.
    ///
    /// # Panics
    /// Panics if the clock is not frozen.
    pub fn now_nanos() -> u64 {
        // lint: allow(hot-path-blocking) documented misuse panic: sim code
        // freezes the clock before stepping (see `# Panics` above)
        current_nanos().expect("virtual clock is not frozen on this thread")
    }

    /// Advance the frozen clock by `d`.
    ///
    /// # Panics
    /// Panics if the clock is not frozen.
    pub fn advance(d: Duration) {
        VIRTUAL_NANOS.with(|v| {
            // lint: allow(hot-path-blocking) documented misuse panic: only
            // callable after freeze(), threaded mode never reaches here
            let cur = v.get().expect("virtual clock is not frozen on this thread");
            v.set(Some(cur.saturating_add(d.as_nanos() as u64)));
        });
    }

    /// Advance the frozen clock to `target` (no-op if `target` is not in
    /// the future — the simulated clock never runs backwards).
    ///
    /// # Panics
    /// Panics if the clock is not frozen.
    pub fn advance_to(target: Instant) {
        let ns = target.saturating_duration_since(base()).as_nanos() as u64;
        VIRTUAL_NANOS.with(|v| {
            // lint: allow(hot-path-blocking) documented misuse panic: only
            // callable after freeze(), threaded mode never reaches here
            let cur = v.get().expect("virtual clock is not frozen on this thread");
            if ns > cur {
                v.set(Some(ns));
            }
        });
    }
}

/// Milliseconds in one day.
pub const MILLIS_PER_DAY: i64 = 24 * 60 * 60 * 1000;

/// Epoch milliseconds for midnight UTC on the given date.
///
/// Uses the standard civil-from-days algorithm (proleptic Gregorian).
/// Valid for all dates the benchmark generates (2002..2013).
pub fn date_millis(year: i32, month: u32, day: u32) -> i64 {
    days_from_civil(year, month, day) * MILLIS_PER_DAY
}

/// (year, month, day) for the given epoch milliseconds (UTC midnight-based).
pub fn civil_from_millis(ms: i64) -> (i32, u32, u32) {
    civil_from_days(ms.div_euclid(MILLIS_PER_DAY))
}

/// The month (1..=12) of an epoch-millis timestamp.
pub fn month_of(ms: i64) -> u32 {
    civil_from_millis(ms).1
}

/// The day-of-month (1..=31) of an epoch-millis timestamp.
pub fn day_of(ms: i64) -> u32 {
    civil_from_millis(ms).2
}

// Howard Hinnant's `days_from_civil`: days since 1970-01-01.
fn days_from_civil(y: i32, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y } as i64;
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = ((m + 9) % 12) as i64; // Mar=0 .. Feb=11
    let doy = (153 * mp + 2) / 5 + d as i64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

// Inverse of `days_from_civil`.
fn civil_from_days(z: i64) -> (i32, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    ((if m <= 2 { y + 1 } else { y }) as i32, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_zero() {
        assert_eq!(date_millis(1970, 1, 1), 0);
    }

    #[test]
    fn known_dates() {
        // 2010-01-01 is 14610 days after epoch.
        assert_eq!(date_millis(2010, 1, 1), 14_610 * MILLIS_PER_DAY);
        assert_eq!(civil_from_millis(date_millis(2010, 1, 1)), (2010, 1, 1));
    }

    #[test]
    fn roundtrip_many_dates() {
        for year in [1970, 1999, 2000, 2004, 2010, 2012, 2013] {
            for month in 1..=12u32 {
                for day in [1u32, 15, 28] {
                    let ms = date_millis(year, month, day);
                    assert_eq!(civil_from_millis(ms), (year, month, day));
                }
            }
        }
    }

    #[test]
    fn leap_year_handling() {
        let feb29 = date_millis(2012, 2, 29);
        assert_eq!(civil_from_millis(feb29), (2012, 2, 29));
        assert_eq!(civil_from_millis(feb29 + MILLIS_PER_DAY), (2012, 3, 1));
    }

    #[test]
    fn month_day_extractors() {
        let ms = date_millis(2011, 7, 21) + 5 * 60 * 60 * 1000; // 5am
        assert_eq!(month_of(ms), 7);
        assert_eq!(day_of(ms), 21);
    }

    #[test]
    fn ordering_matches_calendar() {
        assert!(date_millis(2010, 5, 3) < date_millis(2010, 5, 4));
        assert!(date_millis(2009, 12, 31) < date_millis(2010, 1, 1));
    }

    #[test]
    fn frozen_clock_only_moves_when_advanced() {
        let _guard = sim::freeze_clock();
        assert!(sim::is_frozen());
        assert_eq!(sim::now_nanos(), 0);
        let t0 = now();
        assert_eq!(now(), t0, "frozen clock does not tick on its own");
        sim::advance(std::time::Duration::from_micros(7));
        assert_eq!(sim::now_nanos(), 7_000);
        assert_eq!(now() - t0, std::time::Duration::from_micros(7));
    }

    #[test]
    fn advance_to_is_monotonic() {
        let _guard = sim::freeze_clock();
        let later = now() + std::time::Duration::from_millis(3);
        sim::advance_to(later);
        assert_eq!(sim::now_nanos(), 3_000_000);
        // Advancing to a past instant is a no-op.
        sim::advance_to(later - std::time::Duration::from_millis(1));
        assert_eq!(sim::now_nanos(), 3_000_000);
    }

    #[test]
    fn guard_drop_restores_wall_time() {
        {
            let _guard = sim::freeze_clock();
            assert!(sim::is_frozen());
        }
        assert!(!sim::is_frozen());
        // Wall clock is live again: two reads are ordered, not pinned.
        let a = now();
        let b = now();
        assert!(b >= a);
    }
}
