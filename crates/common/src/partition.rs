//! The graph partitioning function `H : V -> PartId` (paper §II-C) and the
//! cluster topology that maps partitions onto workers and nodes.

use serde::{Deserialize, Serialize};

use crate::fxhash::hash_u64;
use crate::ids::{NodeId, PartId, VertexId, WorkerId};

/// Hash partitioner over vertex ids, plus the node/worker topology.
///
/// The topology is fixed for the lifetime of a cluster: `nodes` simulated
/// machines, each hosting `workers_per_node` single-threaded workers, one
/// graph partition per worker (shared-nothing, §IV). Partition `p` lives on
/// worker `p`, which lives on node `p / workers_per_node`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partitioner {
    nodes: u32,
    workers_per_node: u32,
}

impl Partitioner {
    /// Create a topology of `nodes × workers_per_node` partitions.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(nodes: u32, workers_per_node: u32) -> Self {
        assert!(nodes > 0, "cluster needs at least one node");
        assert!(workers_per_node > 0, "node needs at least one worker");
        Partitioner {
            nodes,
            workers_per_node,
        }
    }

    /// A single-partition topology, used by tests and the single-node
    /// baseline.
    pub fn single() -> Self {
        Partitioner::new(1, 1)
    }

    /// Number of simulated cluster nodes.
    #[inline]
    pub fn nodes(&self) -> u32 {
        self.nodes
    }

    /// Number of workers (= partitions) per node.
    #[inline]
    pub fn workers_per_node(&self) -> u32 {
        self.workers_per_node
    }

    /// Total number of partitions (`n_parts`).
    #[inline]
    pub fn num_parts(&self) -> u32 {
        self.nodes * self.workers_per_node
    }

    /// The partitioning function `H(v)`.
    #[inline]
    pub fn part_of(&self, v: VertexId) -> PartId {
        PartId((hash_u64(v.0) % self.num_parts() as u64) as u32)
    }

    /// The worker owning a partition (1:1).
    #[inline]
    pub fn worker_of_part(&self, p: PartId) -> WorkerId {
        WorkerId(p.0)
    }

    /// The worker owning a vertex.
    #[inline]
    pub fn worker_of(&self, v: VertexId) -> WorkerId {
        self.worker_of_part(self.part_of(v))
    }

    /// The node hosting a worker.
    #[inline]
    pub fn node_of_worker(&self, w: WorkerId) -> NodeId {
        NodeId(w.0 / self.workers_per_node)
    }

    /// The node hosting a vertex's partition.
    #[inline]
    pub fn node_of(&self, v: VertexId) -> NodeId {
        self.node_of_worker(self.worker_of(v))
    }

    /// Iterate over all workers hosted on `node`.
    pub fn workers_on(&self, node: NodeId) -> impl Iterator<Item = WorkerId> {
        let base = node.0 * self.workers_per_node;
        (base..base + self.workers_per_node).map(WorkerId)
    }

    /// Iterate over all partitions.
    pub fn parts(&self) -> impl Iterator<Item = PartId> {
        (0..self.num_parts()).map(PartId)
    }

    /// Hash-partition an arbitrary 64-bit key (used by partitionable steps
    /// whose `h_ψ` keys on something other than the current vertex, e.g. a
    /// join key, §III-A).
    #[inline]
    pub fn part_of_key(&self, key: u64) -> PartId {
        PartId((hash_u64(key) % self.num_parts() as u64) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_panics() {
        Partitioner::new(0, 4);
    }

    #[test]
    fn topology_arithmetic() {
        let p = Partitioner::new(2, 4);
        assert_eq!(p.num_parts(), 8);
        assert_eq!(p.node_of_worker(WorkerId(0)), NodeId(0));
        assert_eq!(p.node_of_worker(WorkerId(3)), NodeId(0));
        assert_eq!(p.node_of_worker(WorkerId(4)), NodeId(1));
        assert_eq!(p.node_of_worker(WorkerId(7)), NodeId(1));
        let on_n1: Vec<_> = p.workers_on(NodeId(1)).collect();
        assert_eq!(
            on_n1,
            vec![WorkerId(4), WorkerId(5), WorkerId(6), WorkerId(7)]
        );
    }

    #[test]
    fn partitioning_is_stable_and_in_range() {
        let p = Partitioner::new(3, 5);
        for i in 0..1000u64 {
            let v = VertexId(i);
            let part = p.part_of(v);
            assert!(part.0 < p.num_parts());
            assert_eq!(part, p.part_of(v), "H must be a pure function");
            assert_eq!(p.node_of(v), p.node_of_worker(p.worker_of(v)));
        }
    }

    #[test]
    fn partitioning_is_balanced() {
        let p = Partitioner::new(2, 4);
        let mut counts = vec![0usize; p.num_parts() as usize];
        let n = 80_000u64;
        for i in 0..n {
            counts[p.part_of(VertexId(i)).as_usize()] += 1;
        }
        let expect = n as usize / counts.len();
        for c in &counts {
            // within 10% of perfectly balanced
            assert!(
                (*c as i64 - expect as i64).unsigned_abs() < (expect / 10) as u64,
                "imbalanced: {counts:?}"
            );
        }
    }

    #[test]
    fn parts_enumeration() {
        let p = Partitioner::new(2, 2);
        let parts: Vec<_> = p.parts().collect();
        assert_eq!(parts, vec![PartId(0), PartId(1), PartId(2), PartId(3)]);
    }
}
