//! Deterministic RNG helpers.
//!
//! All data generation and workload drivers are seeded so that every
//! experiment is reproducible run-to-run. Workers that need private RNGs
//! (e.g. for weight splitting, §IV-A) derive per-worker streams from a master
//! seed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::fxhash::hash_u64;

/// Create a seeded fast RNG.
pub fn seeded(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Derive an independent RNG stream for a sub-component (e.g. worker `i` of a
/// run seeded with `master`). Mixing through the finalizer keeps the derived
/// seeds decorrelated even for sequential indices.
pub fn derive(master: u64, stream: u64) -> SmallRng {
    SmallRng::seed_from_u64(hash_u64(master ^ hash_u64(stream)))
}

/// Sample from a discrete power-law ("Zipf-like") distribution over
/// `{0, .., n-1}` with exponent `alpha` (> 0), using inverse-CDF on a
/// precomputed table.
///
/// Social-network degree distributions (LiveJournal, Friendster, SNB `knows`)
/// are heavy-tailed; this is the workhorse for the synthetic dataset
/// generators (DESIGN.md substitutions).
#[derive(Clone, Debug)]
pub struct PowerLaw {
    cdf: Vec<f64>,
}

impl PowerLaw {
    /// Build the distribution table. O(n) time and memory.
    ///
    /// # Panics
    /// Panics if `n == 0` or `alpha <= 0`.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "power law needs at least one outcome");
        assert!(alpha > 0.0, "alpha must be positive");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        PowerLaw { cdf }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// `true` if there is exactly one outcome (sampling is then constant).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draw one sample.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        // Binary search for the first CDF entry >= u.
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("cdf entries are finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = seeded(7);
        let mut b = seeded(7);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn derived_streams_differ() {
        let mut a = derive(7, 0);
        let mut b = derive(7, 1);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn power_law_in_range_and_skewed() {
        let pl = PowerLaw::new(1000, 1.5);
        let mut rng = seeded(42);
        let mut head = 0usize;
        let n = 20_000;
        for _ in 0..n {
            let s = pl.sample(&mut rng);
            assert!(s < 1000);
            if s < 10 {
                head += 1;
            }
        }
        // With alpha=1.5, the top-10 outcomes carry well over a third of mass.
        assert!(head > n / 3, "head mass too small: {head}/{n}");
    }

    #[test]
    fn power_law_single_outcome() {
        let pl = PowerLaw::new(1, 2.0);
        let mut rng = seeded(1);
        for _ in 0..10 {
            assert_eq!(pl.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn power_law_rejects_bad_alpha() {
        PowerLaw::new(10, 0.0);
    }
}
