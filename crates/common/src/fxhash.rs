//! A fast non-cryptographic hasher (the FxHash algorithm used by rustc).
//!
//! Graph query execution hashes vertex ids on every `Expand`, `Dedup`, and
//! memo access; SipHash would dominate profiles. This is a self-contained
//! reimplementation so we stay within the approved dependency set.

// lint: allow(std-hash) — the alias definition site: Fx types *are* std maps
// with an explicit non-SipHash hasher.
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc Fx hash.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash hasher state.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`]. Used for all hot-path maps (memoranda,
/// dedup sets, join tables).
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Hash a single `u64` to a well-mixed `u64` (used by the partitioner).
#[inline]
pub fn hash_u64(v: u64) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(v);
    // One extra finalization round: FxHash's raw output keeps low-entropy in
    // the low bits for sequential keys, which would skew modulo partitioning.
    let x = h.finish();
    let x = x ^ (x >> 33);
    let x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^ (x >> 33)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(t: &T) -> u64 {
        let mut h = FxHasher::default();
        t.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"abc"), hash_of(&"abc"));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&"abc"), hash_of(&"abd"));
        assert_ne!(hash_of(&"a"), hash_of(&"b"));
    }

    #[test]
    fn byte_stream_tail_handling() {
        // 7-, 8-, 9-byte strings exercise the chunk remainder path.
        assert_ne!(hash_of(&"1234567"), hash_of(&"12345678"));
        assert_ne!(hash_of(&"12345678"), hash_of(&"123456789"));
    }

    #[test]
    fn hash_u64_spreads_sequential_keys() {
        // Sequential ids must land in different buckets mod small n.
        let n = 8u64;
        let mut counts = [0usize; 8];
        for i in 0..8000u64 {
            counts[(hash_u64(i) % n) as usize] += 1;
        }
        for c in counts {
            assert!(c > 500, "bucket too empty: {counts:?}");
        }
    }

    #[test]
    fn fx_map_basic() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        m.insert(1, 10);
        m.insert(2, 20);
        assert_eq!(m.get(&1), Some(&10));
        assert_eq!(m.len(), 2);
    }
}
