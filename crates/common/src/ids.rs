//! Strongly-typed identifiers used throughout GraphDance.
//!
//! All identifiers are thin newtypes over integers so that they are `Copy`,
//! hash quickly with [`crate::fxhash::FxHasher`], and cannot be confused with
//! one another at compile time.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a vertex in the property graph.
///
/// Vertex ids are globally unique across the whole graph (not per-partition);
/// the partition owning a vertex is derived via [`crate::Partitioner`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct VertexId(pub u64);

impl VertexId {
    /// The distinguished invalid vertex id, used as a sentinel.
    pub const INVALID: VertexId = VertexId(u64::MAX);

    /// Returns `true` if this id is the invalid sentinel.
    #[inline]
    pub fn is_valid(self) -> bool {
        self != Self::INVALID
    }
}

impl fmt::Debug for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for VertexId {
    fn from(v: u64) -> Self {
        VertexId(v)
    }
}

/// Identifier of a directed edge.
///
/// Edge ids are unique within the partition that owns the edge's source
/// vertex (edges are stored with their source, matching the shared-nothing
/// layout of §IV).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct EdgeId(pub u64);

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Identifier of a graph partition (`PartId = {0, 1, .., n_parts - 1}`,
/// paper §II-C). Each partition is owned by exactly one worker thread.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct PartId(pub u32);

impl PartId {
    #[inline]
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for PartId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Identifier of a (simulated) cluster node. A node hosts several workers and
/// one network thread (§IV-B).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    #[inline]
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a worker thread. Workers map 1:1 to partitions, so a
/// `WorkerId` and a `PartId` carry the same number; the distinct types keep
/// the runtime plumbing honest about which concept it is handling.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct WorkerId(pub u32);

impl WorkerId {
    #[inline]
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }

    /// The partition owned by this worker (1:1 mapping).
    #[inline]
    pub fn part(self) -> PartId {
        PartId(self.0)
    }
}

impl fmt::Debug for WorkerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

/// Identifier of a running query. Assigned by the coordinator; unique for the
/// lifetime of the cluster. Memoranda entries are keyed by `QueryId` so they
/// can be reclaimed when the query terminates (§III-B).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct QueryId(pub u64);

impl fmt::Debug for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// Identifier of a progress-tracking scope within a query.
///
/// Scope 0 is the root traversal; each aggregation subquery opens a fresh
/// scope with its own weight domain (§III-C). Scope ids are assigned by the
/// query compiler, not at runtime, so all workers agree on them.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct ScopeId(pub u32);

impl ScopeId {
    /// The root scope of every query.
    pub const ROOT: ScopeId = ScopeId(0);
}

impl fmt::Debug for ScopeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// An interned vertex/edge label (e.g. `Person`, `KNOWS`). Schemas are small,
/// so a `u16` suffices; the schema object owns the string table.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Label(pub u16);

impl Label {
    /// Wildcard label used by `Expand` steps that traverse any edge type.
    pub const ANY: Label = Label(u16::MAX);
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Label::ANY {
            write!(f, "L*")
        } else {
            write!(f, "L{}", self.0)
        }
    }
}

/// An interned property key (the `Key` of `λ : (V ⊎ E) × Key -> Value`,
/// §II-B). The schema object owns the string table.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct PropKey(pub u16);

impl fmt::Debug for PropKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_id_sentinel() {
        assert!(!VertexId::INVALID.is_valid());
        assert!(VertexId(0).is_valid());
        assert!(VertexId(u64::MAX - 1).is_valid());
    }

    #[test]
    fn worker_part_mapping_is_identity() {
        for i in [0u32, 1, 7, 255] {
            assert_eq!(WorkerId(i).part(), PartId(i));
        }
    }

    #[test]
    fn debug_formats_are_compact() {
        assert_eq!(format!("{:?}", VertexId(5)), "v5");
        assert_eq!(format!("{:?}", EdgeId(9)), "e9");
        assert_eq!(format!("{:?}", PartId(2)), "p2");
        assert_eq!(format!("{:?}", NodeId(1)), "n1");
        assert_eq!(format!("{:?}", QueryId(3)), "q3");
        assert_eq!(format!("{:?}", ScopeId(0)), "s0");
        assert_eq!(format!("{:?}", Label::ANY), "L*");
    }

    #[test]
    fn ids_order_by_value() {
        assert!(VertexId(1) < VertexId(2));
        assert!(QueryId(10) > QueryId(9));
    }
}
