//! Property values: the `Value` codomain of `λ : (V ⊎ E) × Key -> Value`.
//!
//! Values travel inside traverser local-variable sets (`π`, §III-B), inside
//! memoranda records, and across the simulated network, so they must be cheap
//! to clone (strings are `Arc<str>`) and serializable.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::ids::VertexId;

/// A dynamically-typed property value.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Absent / NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer. Dates are stored as epoch milliseconds in this
    /// variant (see [`crate::time`]).
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Interned UTF-8 string. `Arc` keeps clones O(1) — traversers clone
    /// their locals on every spawn.
    Str(Arc<str>),
    /// A vertex reference (e.g. the result of a projection of `_id`).
    Vertex(VertexId),
    /// A list of values (e.g. `Person.speaks`, collected aggregation output).
    List(Arc<[Value]>),
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Build a list value.
    pub fn list(items: Vec<Value>) -> Value {
        Value::List(Arc::from(items))
    }

    /// Returns the integer payload, if this is an `Int`.
    #[inline]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the float payload, coercing `Int` losslessly where possible.
    #[inline]
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Returns the string payload, if this is a `Str`.
    #[inline]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the boolean payload, if this is a `Bool`.
    #[inline]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the vertex payload, if this is a `Vertex`.
    #[inline]
    pub fn as_vertex(&self) -> Option<VertexId> {
        match self {
            Value::Vertex(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the list payload, if this is a `List`.
    #[inline]
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }

    /// `true` if this value is `Null`.
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Total order used by `OrderBy`/`TopK` steps. Orders first by type rank,
    /// then by payload; `Null` sorts first; float NaN sorts last among
    /// floats. This gives a deterministic order for heterogeneous columns,
    /// which query results require.
    pub fn cmp_total(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) => 2,
                Value::Float(_) => 2, // numeric types compare together
                Value::Str(_) => 3,
                Value::Vertex(_) => 4,
                Value::List(_) => 5,
            }
        }
        let (ra, rb) = (rank(self), rank(other));
        if ra != rb {
            return ra.cmp(&rb);
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.partial_cmp(b).unwrap_or(Ordering::Equal),
            (Value::Int(a), Value::Float(b)) => {
                (*a as f64).partial_cmp(b).unwrap_or(Ordering::Less)
            }
            (Value::Float(a), Value::Int(b)) => {
                a.partial_cmp(&(*b as f64)).unwrap_or(Ordering::Greater)
            }
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Vertex(a), Value::Vertex(b)) => a.cmp(b),
            (Value::List(a), Value::List(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    let c = x.cmp_total(y);
                    if c != Ordering::Equal {
                        return c;
                    }
                }
                a.len().cmp(&b.len())
            }
            // lint: allow(hot-path-blocking) impossible by construction:
            // mismatched variants were ordered by rank() before this match
            _ => unreachable!("rank() groups variants"),
        }
    }

    /// A hashable grouping key for this value (used by `GroupBy` and `Dedup`
    /// memo keys). Floats are keyed by bit pattern.
    pub fn group_key(&self) -> ValueKey {
        match self {
            Value::Null => ValueKey::Null,
            Value::Bool(b) => ValueKey::Bool(*b),
            Value::Int(i) => ValueKey::Int(*i),
            Value::Float(f) => ValueKey::Float(f.to_bits()),
            Value::Str(s) => ValueKey::Str(s.clone()),
            Value::Vertex(v) => ValueKey::Vertex(*v),
            Value::List(l) => ValueKey::List(l.iter().map(Value::group_key).collect()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Vertex(v) => write!(f, "v{}", v.0),
            Value::List(l) => {
                write!(f, "[")?;
                for (i, v) in l.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}
impl From<VertexId> for Value {
    fn from(v: VertexId) -> Self {
        Value::Vertex(v)
    }
}

/// A hashable, `Eq` projection of a [`Value`], suitable as a map key.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ValueKey {
    Null,
    Bool(bool),
    Int(i64),
    /// Float keyed by IEEE-754 bit pattern.
    Float(u64),
    Str(Arc<str>),
    Vertex(VertexId),
    List(Vec<ValueKey>),
}

impl ValueKey {
    /// Convert the key back into a value (floats recover their payload).
    pub fn to_value(&self) -> Value {
        match self {
            ValueKey::Null => Value::Null,
            ValueKey::Bool(b) => Value::Bool(*b),
            ValueKey::Int(i) => Value::Int(*i),
            ValueKey::Float(bits) => Value::Float(f64::from_bits(*bits)),
            ValueKey::Str(s) => Value::Str(s.clone()),
            ValueKey::Vertex(v) => Value::Vertex(*v),
            ValueKey::List(l) => Value::list(l.iter().map(ValueKey::to_value).collect()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_roundtrip() {
        assert_eq!(Value::Int(4).as_int(), Some(4));
        assert_eq!(Value::Int(4).as_float(), Some(4.0));
        assert_eq!(Value::Float(2.5).as_float(), Some(2.5));
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Vertex(VertexId(7)).as_vertex(), Some(VertexId(7)));
        assert!(Value::Null.is_null());
        assert_eq!(Value::Null.as_int(), None);
    }

    #[test]
    fn total_order_numeric_mixing() {
        assert_eq!(Value::Int(1).cmp_total(&Value::Float(1.5)), Ordering::Less);
        assert_eq!(
            Value::Float(2.0).cmp_total(&Value::Int(1)),
            Ordering::Greater
        );
        assert_eq!(Value::Int(3).cmp_total(&Value::Int(3)), Ordering::Equal);
    }

    #[test]
    fn total_order_cross_type() {
        assert_eq!(Value::Null.cmp_total(&Value::Int(0)), Ordering::Less);
        assert_eq!(Value::str("a").cmp_total(&Value::Int(9)), Ordering::Greater);
        assert_eq!(
            Value::list(vec![Value::Int(1)])
                .cmp_total(&Value::list(vec![Value::Int(1), Value::Int(2)])),
            Ordering::Less
        );
    }

    #[test]
    fn group_key_roundtrip() {
        let vals = [
            Value::Null,
            Value::Bool(false),
            Value::Int(-3),
            Value::Float(1.25),
            Value::str("hello"),
            Value::Vertex(VertexId(11)),
            Value::list(vec![Value::Int(1), Value::str("a")]),
        ];
        for v in vals {
            assert_eq!(v.group_key().to_value(), v);
        }
    }

    #[test]
    fn group_key_distinguishes_types() {
        assert_ne!(Value::Int(1).group_key(), Value::Float(1.0).group_key());
        assert_ne!(Value::Null.group_key(), Value::Bool(false).group_key());
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            Value::list(vec![Value::Int(1), Value::str("x")]).to_string(),
            "[1, x]"
        );
        assert_eq!(Value::Vertex(VertexId(5)).to_string(), "v5");
    }
}
