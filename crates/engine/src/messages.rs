//! Message types exchanged between workers, network threads, and the
//! coordinator.

use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel::Sender;

use graphdance_common::{GdError, GdResult, PartId, QueryId, Value, VertexId};
use graphdance_pstm::{AggState, Row, Traverser, Weight};
use graphdance_query::plan::Plan;
use graphdance_storage::{Timestamp, VertexSegment};

/// Immutable per-query context, shipped once per query to every worker.
/// (Control-plane messages carry it by `Arc`; the network layer charges a
/// nominal plan-shipping cost for remote nodes.)
#[derive(Debug)]
pub struct QueryCtx {
    /// The query id.
    pub query: QueryId,
    /// The compiled plan.
    pub plan: Plan,
    /// Parameter values.
    pub params: Vec<Value>,
    /// Snapshot timestamp.
    pub read_ts: Timestamp,
    /// Routing version captured at submit: every ownership decision the
    /// query makes (spawn routing, scan filters, memo placement) resolves
    /// against this pinned version, so a migration committing mid-query
    /// cannot split one vertex's deduplication across two partitions.
    pub routing_version: u64,
}

/// Messages delivered to a worker's inbox.
#[derive(Debug)]
pub enum WorkerMsg {
    /// A batch of traversers routed to this worker's partition.
    Batch(Vec<Traverser>),
    /// Register a query's context (precedes all other traffic for it,
    /// except possibly traverser batches from fast remote workers, which
    /// the worker stashes until this arrives).
    QueryBegin { ctx: Arc<QueryCtx>, stage: u16 },
    /// Advance to a new stage: clear per-stage memo state.
    StageBegin { query: QueryId, stage: u16 },
    /// Execute a pipeline source on this worker's partition with the given
    /// share of the root weight.
    StartSource {
        query: QueryId,
        pipeline: u16,
        weight: Weight,
    },
    /// Reply with this partition's aggregation partial for the current
    /// stage (scope completed; Fig. 6 gather phase).
    GatherAgg { query: QueryId },
    /// The query finished or failed: release its memoranda.
    QueryEnd { query: QueryId },
    /// Cancel a query mid-flight: purge its queued traversers and refund
    /// their weight to the coordinator as ordinary progress so the weight
    /// tracker still lands exactly on `Weight::ROOT` (the drain protocol,
    /// DESIGN.md §13). The worker keeps the query in a `cancelled` set so
    /// late-delivered traversers are refunded too; `QueryEnd` follows once
    /// the coordinator observes completion and finishes the teardown.
    CancelQuery { query: QueryId },
    /// Migration phase 1 (coordinator → source worker): freeze `v`'s
    /// segment (writes abort) and ship its clone to `to`'s owner. `seq`
    /// threads the coordinator's migration state machine through every
    /// phase; acks echo it.
    MigrateFreeze { seq: u64, v: VertexId, to: PartId },
    /// Migration phase 2 (source worker → destination worker): install
    /// the cloned segment. Idempotent at the destination, so fault
    /// duplication is safe.
    MigrateInstall {
        seq: u64,
        v: VertexId,
        from: PartId,
        segment: Box<VertexSegment>,
    },
    /// Migration phase 3 (coordinator → source worker): routing has
    /// committed at `version`; arm the forwarding stub so traversers of
    /// queries pinned at `>= version` that still arrive here are
    /// forwarded to `to`.
    MigrateCommit {
        seq: u64,
        v: VertexId,
        to: PartId,
        version: u64,
    },
    /// Migration phase 4 (coordinator → source worker): no live query can
    /// route `v` here any more — purge the retained frozen copy. The stub
    /// stays as a backstop for stragglers.
    MigrateRetire { seq: u64, v: VertexId },
    /// BSP control signal (used only by the BSP baseline engine, which
    /// reuses this fabric; the asynchronous worker ignores these).
    Bsp(BspSignal),
    /// Stop the worker thread.
    Shutdown,
}

/// Superstep control for the BSP baseline (§II-C1, Fig. 2b).
#[derive(Debug, Clone, Copy)]
pub enum BspSignal {
    /// Execute every parked traverser at `depth`, then report `BspStepDone`.
    RunStep { query: QueryId, depth: u32 },
    /// Report the currently parked weight (delivery barrier probe).
    /// `round` disambiguates replies of successive probe rounds — a
    /// straggler from an earlier round must not be counted against a later
    /// one.
    Probe { query: QueryId, round: u64 },
}

/// Messages delivered to the coordinator.
#[derive(Debug)]
pub enum CoordMsg {
    /// Client submission.
    Submit {
        /// Query id, pre-assigned by the submitter so the client can
        /// cancel the query before the coordinator has even seen it.
        query: QueryId,
        /// Compiled plan.
        plan: Plan,
        /// Parameters.
        params: Vec<Value>,
        /// Snapshot timestamp override (None = current LCT).
        read_ts: Option<Timestamp>,
        /// Where to deliver the result.
        reply: Sender<GdResult<super::engine::QueryResult>>,
        /// Submission instant (latency measurement starts here).
        submitted_at: Instant,
        /// Per-query deadline override (None = coordinator default,
        /// `submitted_at + EngineConfig::query_timeout`).
        deadline: Option<Instant>,
    },
    /// Client cancellation: abort `query` promptly, tearing down its
    /// traversers, memos, and in-flight weight via the worker drain
    /// protocol. The query's reply channel receives `QueryCancelled`.
    Cancel { query: QueryId },
    /// A (possibly coalesced) finished-weight report. `steps` carries the
    /// number of plan steps executed since the last report (drives the
    /// Table I accessed-data accounting).
    Progress {
        query: QueryId,
        weight: Weight,
        steps: u64,
    },
    /// Result rows from a non-aggregating stage.
    Rows { query: QueryId, rows: Vec<Row> },
    /// A partition's aggregation partial (reply to `GatherAgg`).
    AggPartial {
        query: QueryId,
        part: PartId,
        state: Option<Box<AggState>>,
    },
    /// A worker hit an error executing this query.
    WorkerError { query: QueryId, error: GdError },
    /// BSP baseline: one worker finished its superstep. `finished` is the
    /// weight released during the step; `issued`/`count` describe the
    /// traversers this worker parked or sent for a later superstep, and
    /// `consumed`/`consumed_count` the previously parked traversers it
    /// executed. The driver's in-flight ledger (Σissued − Σconsumed) makes
    /// the delivery barrier immune to data-path messages overtaking the
    /// `RunStep` control signal.
    BspStepDone {
        query: QueryId,
        part: PartId,
        finished: Weight,
        issued: Weight,
        count: u64,
        consumed: Weight,
        consumed_count: u64,
    },
    /// BSP baseline: reply to a delivery-barrier probe.
    BspParked {
        query: QueryId,
        part: PartId,
        parked: Weight,
        round: u64,
    },
    /// Ask the coordinator to migrate each `(vertex, dest)` pair through
    /// the live-migration state machine (freeze → install → commit →
    /// retire). Sent by the rebalance planner or injected by the DST
    /// harness; moves whose vertex already routes to `dest` are skipped.
    Rebalance { moves: Vec<(VertexId, PartId)> },
    /// A worker's acknowledgement of a migration phase for `seq`.
    MigrateAck {
        seq: u64,
        v: VertexId,
        phase: MigPhase,
    },
    /// Periodic tick for deadline enforcement.
    Tick,
    /// Stop the coordinator thread.
    Shutdown,
}

/// Migration phases acknowledged by workers (DESIGN.md §14). Ordered by
/// protocol progress; `Failed` aborts the migration (e.g. freezing a
/// vertex that is absent or already frozen).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MigPhase {
    /// Destination installed the segment.
    Installed,
    /// Source armed the forwarding stub after routing commit.
    Committed,
    /// Source purged the retained frozen copy.
    Retired,
    /// The migration cannot proceed; the coordinator drops its state.
    Failed,
}

/// Migration control messages are tracked in the [`crate::invariants::MsgLedger`]
/// under pseudo query ids in a namespace disjoint from real queries
/// (engine qids count up from 1, the sim oracle uses `u64::MAX`).
pub const MIG_QID_BASE: u64 = 1 << 63;

/// The ledger pseudo-qid for migration `seq`.
#[inline]
pub fn migration_qid(seq: u64) -> QueryId {
    QueryId(MIG_QID_BASE | seq)
}

/// If `msg` is a migration control message, its ledger pseudo-qid.
pub fn worker_migration_qid(msg: &WorkerMsg) -> Option<QueryId> {
    match msg {
        WorkerMsg::MigrateFreeze { seq, .. }
        | WorkerMsg::MigrateInstall { seq, .. }
        | WorkerMsg::MigrateCommit { seq, .. }
        | WorkerMsg::MigrateRetire { seq, .. } => Some(migration_qid(*seq)),
        _ => None,
    }
}

/// If `msg` is a migration ack, its ledger pseudo-qid.
pub fn coord_migration_qid(msg: &CoordMsg) -> Option<QueryId> {
    match msg {
        CoordMsg::MigrateAck { seq, .. } => Some(migration_qid(*seq)),
        _ => None,
    }
}

/// Clone a migration control message for fault-injected duplication
/// (`WorkerMsg` as a whole is not `Clone`: traverser batches must not be
/// duplicated structurally). Returns `None` for non-migration messages.
pub fn clone_migration_worker_msg(msg: &WorkerMsg) -> Option<WorkerMsg> {
    match msg {
        WorkerMsg::MigrateFreeze { seq, v, to } => Some(WorkerMsg::MigrateFreeze {
            seq: *seq,
            v: *v,
            to: *to,
        }),
        WorkerMsg::MigrateInstall {
            seq,
            v,
            from,
            segment,
        } => Some(WorkerMsg::MigrateInstall {
            seq: *seq,
            v: *v,
            from: *from,
            segment: segment.clone(),
        }),
        WorkerMsg::MigrateCommit {
            seq,
            v,
            to,
            version,
        } => Some(WorkerMsg::MigrateCommit {
            seq: *seq,
            v: *v,
            to: *to,
            version: *version,
        }),
        WorkerMsg::MigrateRetire { seq, v } => Some(WorkerMsg::MigrateRetire { seq: *seq, v: *v }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_msg_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<WorkerMsg>();
        assert_send::<CoordMsg>();
    }
}
