//! The shared-nothing worker thread (§IV).
//!
//! Each worker owns one graph partition and one memo. It executes
//! traversers from a depth-ordered local queue (shorter trajectories first,
//! §III-B), routes spawned traversers through its tier-1 outbox, coalesces
//! finished weights, and — before going to sleep — flushes every buffer
//! including its progress report (§IV-A/B).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crossbeam::channel::Receiver;
use rand::rngs::SmallRng;

use graphdance_common::{FxHashMap, FxHashSet, GdError, PartId, QueryId, VertexId, WorkerId};
use graphdance_pstm::{
    ExpandCache, Frontier, HandleOutcome, Interpreter, LocalsTable, Memo, Outcome, Traverser,
    TraverserArena, TraverserHandle, Weight, WeightLedger,
};
use graphdance_storage::Graph;

use crate::config::EngineConfig;
use crate::messages::{CoordMsg, MigPhase, QueryCtx, WorkerMsg};
use crate::net::{Fabric, Outbox};

use std::sync::Arc;

/// A queued traverser: an arena handle on the arena execution path, an
/// owned heap traverser on the cloned path. The two never coexist — the
/// layout is fixed per worker by `EngineConfig::arena_frontier`.
enum QueueItem {
    /// Arena path: the state lives in the worker's `TraverserArena`.
    Handle(TraverserHandle),
    /// Cloned path: the classic per-traverser heap object.
    Owned(Traverser),
}

/// Heap entry: smallest depth first, FIFO within a depth.
struct Queued {
    depth: u32,
    seq: u64,
    query: QueryId,
    /// Enqueue timestamp for queue-wait tracking (obs builds only).
    #[cfg(feature = "obs")]
    enq_ns: u64,
    item: QueueItem,
}

impl PartialEq for Queued {
    fn eq(&self, other: &Self) -> bool {
        self.depth == other.depth && self.seq == other.seq
    }
}
impl Eq for Queued {}
impl PartialOrd for Queued {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Queued {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so smaller depth/seq pops first.
        other
            .depth
            .cmp(&self.depth)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct ActiveQuery {
    ctx: Arc<QueryCtx>,
    stage: u16,
}

/// What one non-blocking scheduling quantum accomplished. Shared by the
/// worker and coordinator pumps so the deterministic simulator can drive
/// both through one interface.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PumpStatus {
    /// The actor processed messages or executed traversers.
    Worked,
    /// Nothing to do; all buffers flushed. The threaded loop blocks on the
    /// inbox here; the simulator moves on to another actor.
    Idle,
    /// `Shutdown` was consumed: the actor is done for good.
    Stopped,
}

/// One worker's mutable state and main loop.
pub struct Worker {
    id: WorkerId,
    graph: Graph,
    inbox: Receiver<WorkerMsg>,
    outbox: Outbox,
    memo: Memo,
    queries: FxHashMap<QueryId, ActiveQuery>,
    /// Messages for queries whose `QueryBegin` has not arrived yet.
    pending: FxHashMap<QueryId, Vec<WorkerMsg>>,
    /// Queries that have ended; late traversers for them are dropped.
    dead: FxHashSet<QueryId>,
    /// Queries in the cancellation drain: queued work was purged and its
    /// weight refunded, and any late-delivered traverser or source for
    /// them is refunded too (never silently dropped) so the coordinator's
    /// tracker still lands on `Weight::ROOT`. Entries move to `dead` when
    /// the `QueryEnd` broadcast arrives.
    cancelled: FxHashSet<QueryId>,
    queue: BinaryHeap<Queued>,
    /// Plan steps executed per query since the last progress flush.
    steps: FxHashMap<QueryId, u64>,
    seq: u64,
    rng: SmallRng,
    weight_coalescing: bool,
    batch: usize,
    sched_overhead: std::time::Duration,
    /// Debug-build weight-conservation checker (no-op in release).
    ledger: WeightLedger,
    /// Interpreter outcomes seen (drives `leak_weight_nth` fault injection).
    outcomes: u64,
    fault: crate::config::FaultInjection,
    /// Arena execution path enabled (`EngineConfig::arena_frontier`).
    arena_frontier: bool,
    /// Slab of live local traversers (arena path).
    arena: TraverserArena,
    /// Per-query interned locals tables, dropped wholesale on `QueryEnd`.
    locals: FxHashMap<QueryId, LocalsTable>,
    /// Reused SoA staging batch for same-depth queue runs.
    frontier: Frontier,
    /// Per-pump-quantum adjacency memo for batched expansion.
    expand_cache: ExpandCache,
    /// Reused outcome buffers for the arena path (no per-traverser
    /// spawned/emitted Vec churn).
    scratch: HandleOutcome,
    /// Forwarding stubs for vertices migrated away from this partition:
    /// `v → (commit routing version, destination)`. Armed by
    /// `MigrateCommit` and kept after retirement as a backstop: a
    /// traverser whose query routes `v` at or past the commit version but
    /// that still lands here (it raced the commit) is bounced to the
    /// destination instead of executing against the stale frozen copy.
    stubs: FxHashMap<VertexId, (u64, PartId)>,
    /// Traversers bounced through a forwarding stub (diagnostics / the
    /// `part.forwarded` counter).
    forwarded: u64,
    /// Hot-path instrumentation (metrics shard + span accumulator).
    #[cfg(feature = "obs")]
    obs: crate::obs::WorkerObs,
}

impl Worker {
    /// Build a worker. `inbox` must be the receiver paired with the sender
    /// registered in the fabric.
    pub fn new(
        id: WorkerId,
        graph: Graph,
        fabric: &Arc<Fabric>,
        inbox: Receiver<WorkerMsg>,
        config: &EngineConfig,
    ) -> Self {
        let node = fabric.partitioner().node_of_worker(id);
        Worker {
            id,
            graph,
            inbox,
            outbox: fabric.outbox(node),
            memo: Memo::new(),
            queries: FxHashMap::default(),
            pending: FxHashMap::default(),
            dead: FxHashSet::default(),
            cancelled: FxHashSet::default(),
            queue: BinaryHeap::new(),
            steps: FxHashMap::default(),
            seq: 0,
            rng: graphdance_common::rng::derive(config.seed, id.0 as u64),
            weight_coalescing: config.weight_coalescing,
            batch: config.worker_batch,
            sched_overhead: config.sched_overhead_per_op,
            ledger: WeightLedger::new(),
            outcomes: 0,
            fault: config.fault,
            arena_frontier: config.arena_frontier,
            arena: TraverserArena::new(),
            locals: FxHashMap::default(),
            frontier: Frontier::new(),
            expand_cache: ExpandCache::new(),
            scratch: HandleOutcome::new(),
            stubs: FxHashMap::default(),
            forwarded: 0,
            #[cfg(feature = "obs")]
            obs: crate::obs::WorkerObs::new(fabric, id),
        }
    }

    /// The worker main loop; returns on `Shutdown`.
    pub fn run(mut self) {
        loop {
            match self.pump() {
                PumpStatus::Stopped => return,
                PumpStatus::Worked => {}
                PumpStatus::Idle => {
                    // §IV-B: flush ALL buffers before the thread sleeps —
                    // including adaptive lanes still holding for their idle
                    // deadline. Waiting the deadline out on an OS timer
                    // would add scheduler slack straight to the query tail;
                    // held-lane combining pays only while the worker stays
                    // awake between pump quanta. The deterministic
                    // simulator, whose virtual-clock waits are free, drives
                    // the deadline path through `pump` directly.
                    self.outbox.flush_all();
                    match self.inbox.recv() {
                        Ok(WorkerMsg::Shutdown) | Err(_) => return,
                        Ok(msg) => self.handle(msg),
                    }
                }
            }
        }
    }

    /// One non-blocking scheduling quantum: drain the inbox, execute up to
    /// one batch of local traversers, and flush buffers when the queue goes
    /// empty. The threaded [`Worker::run`] loop calls this and blocks on
    /// [`PumpStatus::Idle`]; the deterministic simulator calls it directly.
    pub fn pump(&mut self) -> PumpStatus {
        let mut worked = false;
        // Drain the inbox without blocking.
        loop {
            match self.inbox.try_recv() {
                Ok(WorkerMsg::Shutdown) => return PumpStatus::Stopped,
                Ok(msg) => {
                    self.handle(msg);
                    worked = true;
                }
                Err(_) => break,
            }
        }
        // Execute a batch of local traversers, shallow first.
        let mut executed = 0;
        if self.arena_frontier {
            // Arena path: stage runs of same-depth queue entries into the
            // SoA frontier and execute them back to back. Staging a whole
            // same-depth run up front is schedule-identical to popping one
            // entry at a time: any child spawned mid-run is deeper or
            // carries a larger sequence number, so it sorts after every
            // staged entry either way. The adjacency cache spans one pump
            // quantum — the batch window where repeated scans cluster.
            self.expand_cache.begin_quantum();
            while executed < self.batch {
                let staged = self.stage_frontier(self.batch - executed);
                if staged == 0 {
                    break;
                }
                for i in 0..staged {
                    // Pin (query, stage) before executing; a query that died
                    // between enqueue and pop records nothing.
                    #[cfg(feature = "obs")]
                    let obs_info = self.queries.get(&self.frontier.queries[i]).map(|a| {
                        (
                            self.frontier.queries[i],
                            a.stage,
                            self.obs.exec_begin(self.frontier.enq_ns[i]),
                        )
                    });
                    self.execute_frontier(i);
                    #[cfg(feature = "obs")]
                    if let Some((qid, stage, (t0, wait))) = obs_info {
                        let stats = self.memo.take_stats(qid);
                        self.obs.exec_end(qid, stage, t0, wait, stats);
                    }
                }
                executed += staged;
            }
        } else {
            while executed < self.batch {
                let Some(q) = self.queue.pop() else { break };
                // Pin (query, stage) before executing; a query that died
                // between enqueue and pop records nothing.
                #[cfg(feature = "obs")]
                let obs_info = self
                    .queries
                    .get(&q.query)
                    .map(|a| (q.query, a.stage, self.obs.exec_begin(q.enq_ns)));
                match q.item {
                    QueueItem::Owned(t) => self.execute(t),
                    QueueItem::Handle(h) => {
                        // Defensive: handles only exist on the arena path.
                        let lt = self.locals.entry(q.query).or_default();
                        let t = self.arena.extract(h, lt);
                        self.execute(t);
                    }
                }
                #[cfg(feature = "obs")]
                if let Some((qid, stage, (t0, wait))) = obs_info {
                    let stats = self.memo.take_stats(qid);
                    self.obs.exec_end(qid, stage, t0, wait, stats);
                }
                executed += 1;
            }
        }
        worked |= executed > 0;
        #[cfg(feature = "obs")]
        self.obs.queue_depth(self.queue.len() as u64);
        // Adaptive lanes whose idle-flush deadline passed are flushed even
        // while the worker stays busy.
        worked |= self.outbox.poll_deadlines();
        // Keep same-node latency low.
        self.outbox.flush_local();
        if self.queue.is_empty() {
            // About to go idle: flush everything, progress included (§IV-B
            // "if there are no more traversers ready for execution, we
            // flush all the buffers before the current thread sleeps").
            // Under `IoMode::Adaptive` pure-traverser remote lanes are held
            // for their threshold or deadline instead (see
            // `Outbox::flush_idle`).
            self.flush_progress();
            self.outbox.flush_idle();
            if !worked {
                return PumpStatus::Idle;
            }
        }
        PumpStatus::Worked
    }

    /// Is a quantum worth scheduling — queued input, runnable traversers,
    /// or an adaptive flush deadline that has come due?
    /// (An all-flushed worker with an empty inbox would just report `Idle`.)
    pub fn has_work(&self) -> bool {
        !self.inbox.is_empty()
            || !self.queue.is_empty()
            || self
                .outbox
                .next_flush_deadline()
                .is_some_and(|d| d <= graphdance_common::time::now())
    }

    /// The earliest pending adaptive flush deadline, if any. The
    /// deterministic simulator folds this into its timer horizon so a held
    /// lane wakes the worker on the virtual clock.
    pub fn next_flush_deadline(&self) -> Option<std::time::Instant> {
        self.outbox.next_flush_deadline()
    }

    fn handle(&mut self, msg: WorkerMsg) {
        match msg {
            WorkerMsg::Batch(ts) => {
                for t in ts {
                    self.enqueue(t);
                }
            }
            WorkerMsg::QueryBegin { ctx, stage } => {
                let q = ctx.query;
                self.dead.remove(&q);
                self.queries.insert(q, ActiveQuery { ctx, stage });
                if let Some(stash) = self.pending.remove(&q) {
                    for m in stash {
                        self.handle(m);
                    }
                }
            }
            WorkerMsg::StageBegin { query, stage } => {
                if let Some(aq) = self.queries.get_mut(&query) {
                    #[cfg(feature = "obs")]
                    let prev_stage = aq.stage;
                    aq.stage = stage;
                    // Per-stage memo state (dedup sets, join tables, agg
                    // partial) is dropped between stages.
                    let _ = self.memo.query_mut(query).take_stage_state();
                    #[cfg(feature = "obs")]
                    self.obs.flush_stage(query, prev_stage);
                }
            }
            WorkerMsg::StartSource {
                query,
                pipeline,
                weight,
            } => {
                self.start_source(query, pipeline, weight);
            }
            WorkerMsg::GatherAgg { query } => {
                let state = self.memo.query_mut(query).take_stage_state();
                let _sz = self.outbox.send_ctrl_coord(CoordMsg::AggPartial {
                    query,
                    part: self.id.part(),
                    state: state.map(Box::new),
                });
                #[cfg(feature = "obs")]
                {
                    let stage = self.queries.get(&query).map_or(0, |a| a.stage);
                    self.obs.note_ctrl(query, stage, _sz as u64);
                }
            }
            WorkerMsg::CancelQuery { query } => {
                self.cancel_query(query);
            }
            WorkerMsg::QueryEnd { query } => {
                #[cfg(feature = "obs")]
                self.obs.end_query(query);
                self.memo.clear_query(query);
                self.queries.remove(&query);
                self.pending.remove(&query);
                self.steps.remove(&query);
                self.cancelled.remove(&query);
                self.dead.insert(query);
                // Drop any queued traversers of the dead query; arena
                // handles free their slab slots (the query's locals table
                // is dropped wholesale below, values and all).
                let drained: Vec<Queued> = std::mem::take(&mut self.queue).into_vec();
                self.queue = drained
                    .into_iter()
                    .filter_map(|q| {
                        if q.query == query {
                            if let QueueItem::Handle(h) = q.item {
                                let _ = self.arena.remove(h);
                            }
                            None
                        } else {
                            Some(q)
                        }
                    })
                    .collect();
                self.locals.remove(&query);
            }
            WorkerMsg::MigrateFreeze { seq, v, to } => self.migrate_freeze(seq, v, to),
            WorkerMsg::MigrateInstall {
                seq, v, segment, ..
            } => {
                // Idempotent at the store: a duplicated install is Ok(false).
                match self.graph.install_segment(self.id.part(), *segment) {
                    Ok(_) => self.migrate_ack(seq, v, MigPhase::Installed),
                    Err(_) => self.migrate_ack(seq, v, MigPhase::Failed),
                }
            }
            WorkerMsg::MigrateCommit {
                seq,
                v,
                to,
                version,
            } => {
                // Arm (or re-arm, under duplication) the forwarding stub.
                self.stubs.insert(v, (version, to));
                self.migrate_ack(seq, v, MigPhase::Committed);
            }
            WorkerMsg::MigrateRetire { seq, v } => {
                // Idempotent purge of the retained frozen copy; the stub
                // stays armed as a backstop for stragglers.
                self.graph.purge_vertex(self.id.part(), v);
                self.migrate_ack(seq, v, MigPhase::Retired);
            }
            WorkerMsg::Bsp(_) => {
                // BSP signals are for the BSP baseline's workers only.
            }
            // Both worker loops return on Shutdown before dispatching here.
            WorkerMsg::Shutdown => unreachable!("handled by the loops"), // lint: allow(hot-path-panics)
        }
    }

    /// The cancellation drain (DESIGN.md §13): purge every queued
    /// traverser and stashed message of `query`, absorb this worker's
    /// coalesced finished weight, and refund the total to the coordinator
    /// as one ordinary `Progress` report. The query stays in `cancelled`
    /// so weight still in flight when the purge ran is refunded on
    /// arrival; once every share has reported, the coordinator's tracker
    /// completes and its `QueryEnd` finishes the teardown.
    fn cancel_query(&mut self, query: QueryId) {
        if self.dead.contains(&query) || !self.cancelled.insert(query) {
            return;
        }
        let mut refund = Weight::ZERO;
        // Queued traversers (arena handles free their slab slots and
        // release their interned locals — the table itself lives until
        // `QueryEnd` drops it wholesale).
        let drained: Vec<Queued> = std::mem::take(&mut self.queue).into_vec();
        self.queue = drained
            .into_iter()
            .filter_map(|q| {
                if q.query == query {
                    match q.item {
                        QueueItem::Handle(h) => {
                            let at = self.arena.remove(h);
                            if let Some(lt) = self.locals.get_mut(&query) {
                                lt.unref(at.locals);
                            }
                            refund.absorb(at.weight);
                        }
                        QueueItem::Owned(t) => refund.absorb(t.weight),
                    }
                    None
                } else {
                    Some(q)
                }
            })
            .collect();
        // Messages stashed before `QueryBegin` (reordered delivery).
        if let Some(stash) = self.pending.remove(&query) {
            for m in stash {
                match m {
                    WorkerMsg::Batch(ts) => {
                        for t in ts {
                            refund.absorb(t.weight);
                        }
                    }
                    WorkerMsg::StartSource { weight, .. } => refund.absorb(weight),
                    _ => {}
                }
            }
        }
        // Finished weight coalesced but not yet reported.
        if let Some(w) = self.memo.query_mut(query).finished.drain() {
            refund.absorb(w);
        }
        let steps = self.steps.remove(&query).unwrap_or(0);
        if refund != Weight::ZERO || steps > 0 {
            self.outbox.send_progress(query, refund, steps);
            #[cfg(feature = "obs")]
            {
                let stage = self.queries.get(&query).map_or(0, |a| a.stage);
                self.obs.note_progress(query, stage);
            }
        }
    }

    /// Migration phase 1 at the source: freeze `v` (idempotent — a
    /// duplicated freeze re-clones and re-sends the install, which the
    /// destination deduplicates) and ship the segment to `to`'s owner. A
    /// vertex this partition never held fails the migration instead.
    fn migrate_freeze(&mut self, seq: u64, v: VertexId, to: PartId) {
        match self.graph.freeze_and_clone(self.id.part(), v) {
            Ok(seg) => {
                let dest = self.graph.partitioner().worker_of_part(to);
                let _ = self.outbox.send_ctrl_worker(
                    dest,
                    WorkerMsg::MigrateInstall {
                        seq,
                        v,
                        from: self.id.part(),
                        segment: Box::new(seg),
                    },
                );
            }
            Err(_) => self.migrate_ack(seq, v, MigPhase::Failed),
        }
    }

    fn migrate_ack(&mut self, seq: u64, v: VertexId, phase: MigPhase) {
        let _ = self
            .outbox
            .send_ctrl_coord(CoordMsg::MigrateAck { seq, v, phase });
    }

    /// Traversers bounced through a forwarding stub so far.
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }

    fn enqueue(&mut self, t: Traverser) {
        let q = t.query;
        if self.dead.contains(&q) {
            return;
        }
        if self.cancelled.contains(&q) {
            // Late delivery during the drain: refund instead of running
            // (or silently dropping — the tracker is owed this weight).
            self.outbox.send_progress(q, t.weight, 0);
            return;
        }
        // Forwarding-stub backstop: the traverser's query routes its
        // vertex to the migration destination (its pinned routing version
        // is at or past the commit), but the traverser landed here anyway
        // — it was spawned against the pre-commit routing and raced the
        // commit. Bounce it to the destination rather than executing
        // against the retained frozen copy. Queries pinned *before* the
        // commit still execute here: the frozen copy is exactly the state
        // their snapshot routes to.
        if !self.stubs.is_empty() {
            if let Some(&(commit_ver, dest)) = self.stubs.get(&t.vertex) {
                // A query whose ctx has not arrived yet stashes below and
                // re-enters here after `QueryBegin`, so 0 (never forward
                // blind) is safe.
                let pinned = self
                    .queries
                    .get(&q)
                    .map(|aq| aq.ctx.routing_version)
                    .unwrap_or(0);
                if pinned >= commit_ver {
                    self.forwarded += 1;
                    #[cfg(feature = "obs")]
                    self.obs.stub_forwarded();
                    let w = self.graph.partitioner().worker_of_part(dest);
                    self.outbox.send_traverser(w, t);
                    return;
                }
            }
        }
        if !self.queries.contains_key(&q) {
            self.pending
                .entry(q)
                .or_default()
                .push(WorkerMsg::Batch(vec![t]));
            return;
        }
        self.push_local(t);
    }

    /// Push a runnable traverser onto the local queue in the worker's
    /// configured layout: interned into the arena on the arena path, owned
    /// on the cloned path.
    fn push_local(&mut self, t: Traverser) {
        self.seq += 1;
        let (depth, query) = (t.depth, t.query);
        #[cfg(feature = "obs")]
        let enq_ns = self.obs.now_ns();
        let item = if self.arena_frontier {
            let lt = self.locals.entry(query).or_default();
            QueueItem::Handle(self.arena.admit(t, lt))
        } else {
            QueueItem::Owned(t)
        };
        self.queue.push(Queued {
            depth,
            seq: self.seq,
            query,
            #[cfg(feature = "obs")]
            enq_ns,
            item,
        });
    }

    fn start_source(&mut self, query: QueryId, pipeline: u16, weight: Weight) {
        if self.cancelled.contains(&query) {
            // The drain already ran on this worker: refund the source's
            // whole share instead of expanding it.
            self.outbox.send_progress(query, weight, 0);
            return;
        }
        let Some(aq) = self.queries.get(&query) else {
            self.pending
                .entry(query)
                .or_default()
                .push(WorkerMsg::StartSource {
                    query,
                    pipeline,
                    weight,
                });
            return;
        };
        let ctx = Arc::clone(&aq.ctx);
        let stage = aq.stage as usize;
        let interp = Interpreter {
            graph: &self.graph,
            plan: &ctx.plan,
            stage_idx: stage,
            query,
            params: &ctx.params,
            read_ts: ctx.read_ts,
            routing_version: ctx.routing_version,
        };
        let result = {
            let part = self.graph.read(self.id.part());
            interp.run_source(pipeline, weight, &part, &mut self.rng)
        };
        match result {
            Ok(out) => self.route(query, weight, out),
            Err(e) => {
                self.outbox
                    .send_ctrl_coord(CoordMsg::WorkerError { query, error: e });
            }
        }
    }

    /// Stage the run of minimal-depth queue entries (up to `budget`) into
    /// the SoA frontier. Returns the number staged.
    fn stage_frontier(&mut self, budget: usize) -> usize {
        self.frontier.clear();
        let Some(top) = self.queue.peek() else {
            return 0;
        };
        let depth = top.depth;
        while self.frontier.len() < budget {
            match self.queue.peek() {
                Some(q) if q.depth == depth => {
                    let q = self.queue.pop().expect("peeked entry"); // lint: allow(hot-path-panics)
                    let h = match q.item {
                        QueueItem::Handle(h) => h,
                        QueueItem::Owned(t) => {
                            // Defensive: owned entries only exist on the
                            // cloned path; intern so the batch stays uniform.
                            let lt = self.locals.entry(q.query).or_default();
                            self.arena.admit(t, lt)
                        }
                    };
                    let at = self.arena.get(h);
                    let (vertex, pc, weight) = (at.vertex, at.pc, at.weight);
                    self.frontier.push(
                        h,
                        q.query,
                        vertex,
                        pc,
                        weight,
                        #[cfg(feature = "obs")]
                        q.enq_ns,
                    );
                }
                _ => break,
            }
        }
        self.frontier.len()
    }

    /// Execute one staged frontier entry through the arena interpreter and
    /// route its outcome. The arena twin of [`execute`](Self::execute).
    fn execute_frontier(&mut self, idx: usize) {
        let query = self.frontier.queries[idx];
        let Some(aq) = self.queries.get(&query) else {
            // Query died between staging and execution: the queue purge
            // already dropped its locals table; free the slab slot.
            let _ = self.arena.remove(self.frontier.handles[idx]);
            return;
        };
        let ctx = Arc::clone(&aq.ctx);
        let stage = aq.stage as usize;
        if !self.sched_overhead.is_zero() {
            // Dataflow-baseline mode: model polling one operator instance
            // per plan step per scheduled traverser (§V-B).
            crate::net::charge(self.sched_overhead * ctx.plan.num_steps() as u32);
        }
        let interp = Interpreter {
            graph: &self.graph,
            plan: &ctx.plan,
            stage_idx: stage,
            query,
            params: &ctx.params,
            read_ts: ctx.read_ts,
            routing_version: ctx.routing_version,
        };
        let input = self.frontier.weights[idx];
        let mut out = std::mem::take(&mut self.scratch);
        let result = {
            let locals = self.locals.entry(query).or_default();
            let part = self.graph.read(self.id.part());
            interp.run_frontier(
                &self.frontier,
                idx,
                &mut self.arena,
                locals,
                &mut self.expand_cache,
                &part,
                self.memo.query_mut(query),
                &mut self.rng,
                &mut out,
            )
        };
        match result {
            Ok(()) => self.route_handles(query, input, &mut out),
            Err(e) => {
                self.outbox
                    .send_ctrl_coord(CoordMsg::WorkerError { query, error: e });
            }
        }
        self.scratch = out;
    }

    fn execute(&mut self, t: Traverser) {
        let query = t.query;
        let Some(aq) = self.queries.get(&query) else {
            return;
        };
        let ctx = Arc::clone(&aq.ctx);
        let stage = aq.stage as usize;
        if !self.sched_overhead.is_zero() {
            // Dataflow-baseline mode: model polling one operator instance
            // per plan step per scheduled traverser (§V-B).
            crate::net::charge(self.sched_overhead * ctx.plan.num_steps() as u32);
        }
        let interp = Interpreter {
            graph: &self.graph,
            plan: &ctx.plan,
            stage_idx: stage,
            query,
            params: &ctx.params,
            read_ts: ctx.read_ts,
            routing_version: ctx.routing_version,
        };
        let input = t.weight;
        let result = {
            let part = self.graph.read(self.id.part());
            interp.run_traverser(t, &part, self.memo.query_mut(query), &mut self.rng)
        };
        match result {
            Ok(out) => self.route(query, input, out),
            Err(e) => {
                self.outbox
                    .send_ctrl_coord(CoordMsg::WorkerError { query, error: e });
            }
        }
    }

    /// Route one interpreter outcome, first verifying weight conservation
    /// (`input == Σ spawned + finished`, debug builds). A violation aborts
    /// the query with the ledger's diagnostic instead of letting the
    /// tracker hang or fire early.
    fn route(&mut self, query: QueryId, input: Weight, mut out: Outcome) {
        self.outcomes += 1;
        if WeightLedger::ENABLED && self.fault.leak_weight_nth == Some(self.outcomes) {
            // Injected fault: leak one unit of weight out of this outcome.
            out.finished = out.finished.sub(Weight(1));
        }
        if let Err(diag) = self.ledger.check_step(query, input, &out) {
            self.outbox.send_ctrl_coord(CoordMsg::WorkerError {
                query,
                error: GdError::InvariantViolation(diag),
            });
            return;
        }
        #[cfg(feature = "obs")]
        let obs_stage = self.queries.get(&query).map_or(0, |a| a.stage);
        #[cfg(feature = "obs")]
        let mut obs_local = 0u64;
        #[cfg(feature = "obs")]
        let mut obs_remote: Vec<(u32, u64)> = Vec::new();
        #[cfg(feature = "obs")]
        let mut obs_rows: Option<u64> = None;
        #[cfg(feature = "obs")]
        let mut obs_progress = false;
        for (dest, t) in out.spawned {
            if dest == self.id.part() {
                #[cfg(feature = "obs")]
                {
                    obs_local += 1;
                }
                self.push_local(t);
            } else {
                let w = self.graph.partitioner().worker_of_part(dest);
                let hot = self.outbox.fabric().hot_tracker();
                if hot.is_enabled() {
                    hot.record(t.vertex, self.id.part());
                }
                #[cfg(feature = "obs")]
                obs_remote.push((w.0, t.approx_bytes() as u64));
                self.outbox.send_traverser(w, t);
            }
        }
        if !out.emitted.is_empty() {
            let _approx = self.outbox.send_rows(query, out.emitted);
            #[cfg(feature = "obs")]
            {
                obs_rows = Some(_approx as u64);
            }
        }
        *self.steps.entry(query).or_insert(0) += out.steps_executed as u64;
        if out.finished != Weight::ZERO {
            if self.weight_coalescing {
                self.memo.query_mut(query).finished.add(out.finished);
            } else {
                // Naive progress tracking: one report per termination.
                let steps = self.steps.remove(&query).unwrap_or(0);
                self.outbox.send_progress(query, out.finished, steps);
                #[cfg(feature = "obs")]
                {
                    obs_progress = true;
                }
            }
        }
        #[cfg(feature = "obs")]
        self.obs.route_done(
            query,
            obs_stage,
            obs_local,
            &obs_remote,
            obs_rows,
            obs_progress,
        );
    }

    /// Route one arena-path outcome: the handle twin of
    /// [`route`](Self::route). Conservation is verified through the
    /// arena's generation-checked accessors (debug builds), local children
    /// stay as handles, remote children flatten to the wire format at the
    /// outbox boundary.
    fn route_handles(&mut self, query: QueryId, input: Weight, out: &mut HandleOutcome) {
        self.outcomes += 1;
        if WeightLedger::ENABLED && self.fault.leak_weight_nth == Some(self.outcomes) {
            // Injected fault: leak one unit of weight out of this outcome.
            out.finished = out.finished.sub(Weight(1));
        }
        if let Err(diag) = self.ledger.check_step_arena(query, input, out, &self.arena) {
            // The query is being aborted; free the spawned children so the
            // slab does not leak them.
            for (_, h) in out.spawned.drain(..) {
                let at = self.arena.remove(h);
                if let Some(lt) = self.locals.get_mut(&query) {
                    lt.unref(at.locals);
                }
            }
            self.outbox.send_ctrl_coord(CoordMsg::WorkerError {
                query,
                error: GdError::InvariantViolation(diag),
            });
            return;
        }
        #[cfg(feature = "obs")]
        let obs_stage = self.queries.get(&query).map_or(0, |a| a.stage);
        #[cfg(feature = "obs")]
        let mut obs_local = 0u64;
        #[cfg(feature = "obs")]
        let mut obs_remote: Vec<(u32, u64)> = Vec::new();
        #[cfg(feature = "obs")]
        let mut obs_rows: Option<u64> = None;
        #[cfg(feature = "obs")]
        let mut obs_progress = false;
        for (dest, h) in out.spawned.drain(..) {
            if dest == self.id.part() {
                self.seq += 1;
                #[cfg(feature = "obs")]
                {
                    obs_local += 1;
                }
                let depth = self.arena.get(h).depth;
                self.queue.push(Queued {
                    depth,
                    seq: self.seq,
                    query,
                    #[cfg(feature = "obs")]
                    enq_ns: self.obs.now_ns(),
                    item: QueueItem::Handle(h),
                });
            } else {
                let w = self.graph.partitioner().worker_of_part(dest);
                let lt = self.locals.entry(query).or_default();
                let t = self.arena.extract(h, lt);
                let hot = self.outbox.fabric().hot_tracker();
                if hot.is_enabled() {
                    hot.record(t.vertex, self.id.part());
                }
                #[cfg(feature = "obs")]
                obs_remote.push((w.0, t.approx_bytes() as u64));
                self.outbox.send_traverser(w, t);
            }
        }
        if !out.emitted.is_empty() {
            let _approx = self
                .outbox
                .send_rows(query, std::mem::take(&mut out.emitted));
            #[cfg(feature = "obs")]
            {
                obs_rows = Some(_approx as u64);
            }
        }
        *self.steps.entry(query).or_insert(0) += out.steps_executed as u64;
        if out.finished != Weight::ZERO {
            if self.weight_coalescing {
                self.memo.query_mut(query).finished.add(out.finished);
            } else {
                // Naive progress tracking: one report per termination.
                let steps = self.steps.remove(&query).unwrap_or(0);
                self.outbox.send_progress(query, out.finished, steps);
                #[cfg(feature = "obs")]
                {
                    obs_progress = true;
                }
            }
        }
        #[cfg(feature = "obs")]
        self.obs.route_done(
            query,
            obs_stage,
            obs_local,
            &obs_remote,
            obs_rows,
            obs_progress,
        );
    }

    fn flush_progress(&mut self) {
        if !self.weight_coalescing {
            return; // already sent eagerly
        }
        let queries: Vec<QueryId> = self.queries.keys().copied().collect();
        for q in queries {
            if let Some(w) = self.memo.query_mut(q).finished.drain() {
                let steps = self.steps.remove(&q).unwrap_or(0);
                if self.fault.sim.progress_side_channel {
                    // Injected regression: pre-fix drain order where the
                    // coalesced progress report bypasses the row FIFO.
                    self.outbox.send_progress_sidechannel(q, w, steps);
                } else {
                    self.outbox.send_progress(q, w, steps);
                }
                #[cfg(feature = "obs")]
                {
                    let stage = self.queries.get(&q).map_or(0, |a| a.stage);
                    self.obs.note_progress(q, stage);
                }
            }
        }
    }
}

/// Spawn all worker threads for a cluster.
pub fn spawn_workers(
    graph: &Graph,
    fabric: &Arc<Fabric>,
    inboxes: Vec<Receiver<WorkerMsg>>,
    config: &EngineConfig,
) -> Vec<std::thread::JoinHandle<()>> {
    inboxes
        .into_iter()
        .enumerate()
        .map(|(i, inbox)| {
            let worker = Worker::new(WorkerId(i as u32), graph.clone(), fabric, inbox, config);
            std::thread::Builder::new()
                .name(format!("gd-worker-{i}"))
                .spawn(move || worker.run())
                // Engine startup, before any query is accepted.
                .expect("spawn worker") // lint: allow(hot-path-panics)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_orders_by_depth_then_fifo() {
        let mk = |depth, seq| Queued {
            depth,
            seq,
            query: QueryId(1),
            #[cfg(feature = "obs")]
            enq_ns: 0,
            item: QueueItem::Owned(Traverser::root(QueryId(1), 0, VertexId(0), 0, Weight(0))),
        };
        let mut h = BinaryHeap::new();
        h.push(mk(2, 1));
        h.push(mk(0, 2));
        h.push(mk(1, 3));
        h.push(mk(0, 4));
        let order: Vec<(u32, u64)> =
            std::iter::from_fn(|| h.pop().map(|q| (q.depth, q.seq))).collect();
        assert_eq!(order, vec![(0, 2), (0, 4), (1, 3), (2, 1)]);
    }

    /// With `obs` disabled, the instrumentation must compile to nothing —
    /// the hot-path heap entry carries exactly its functional fields.
    #[cfg(not(feature = "obs"))]
    #[test]
    fn queued_has_no_instrumentation_fields() {
        struct Plain {
            _depth: u32,
            _seq: u64,
            _query: QueryId,
            _item: QueueItem,
        }
        assert_eq!(size_of::<Queued>(), size_of::<Plain>());
    }
}

#[cfg(test)]
mod handler_tests {
    use super::*;
    use crossbeam::channel::unbounded;
    use graphdance_common::{Partitioner, Value, VertexId};
    use graphdance_pstm::Weight;
    use graphdance_query::QueryBuilder;
    use graphdance_storage::GraphBuilder;

    /// Build a worker without spawning its thread, so `handle` can be
    /// driven directly.
    fn test_worker() -> (Worker, Arc<Fabric>, Vec<Receiver<WorkerMsg>>) {
        let mut b = GraphBuilder::new(Partitioner::new(1, 2));
        let n = b.schema_mut().register_vertex_label("N");
        let e = b.schema_mut().register_edge_label("e");
        b.add_vertex(VertexId(0), n, vec![]).unwrap();
        b.add_vertex(VertexId(1), n, vec![]).unwrap();
        b.add_edge(VertexId(0), e, VertexId(1), vec![]).unwrap();
        let graph = b.finish();
        let config = EngineConfig::new(1, 2);
        let mut wtx = Vec::new();
        let mut wrx = Vec::new();
        for _ in 0..2 {
            let (tx, rx) = unbounded();
            wtx.push(tx);
            wrx.push(rx);
        }
        let (ctx, _crx) = unbounded();
        let (fabric, _handles) = Fabric::new(&config, wtx, ctx);
        // Find which worker owns vertex 0 so StartSource lands correctly.
        let owner = graph.partitioner().worker_of(VertexId(0));
        let (_, inbox) = unbounded::<WorkerMsg>();
        let worker = Worker::new(owner, graph, &fabric, inbox, &config);
        (worker, fabric, wrx)
    }

    fn ctx_for(worker: &Worker) -> Arc<QueryCtx> {
        let mut qb = QueryBuilder::new(worker.graph.schema());
        qb.v_param(0).out("e");
        Arc::new(QueryCtx {
            query: QueryId(5),
            plan: qb.compile().unwrap(),
            params: vec![Value::Vertex(VertexId(0))],
            read_ts: 1,
            routing_version: 0,
        })
    }

    #[test]
    fn early_traversers_are_stashed_until_query_begin() {
        let (mut w, _fabric, _wrx) = test_worker();
        let ctx = ctx_for(&w);
        let t = Traverser::root(QueryId(5), 0, VertexId(0), 0, Weight::ROOT);
        // Batch before QueryBegin: stashed, not queued.
        w.handle(WorkerMsg::Batch(vec![t]));
        assert!(w.queue.is_empty());
        assert_eq!(w.pending.len(), 1);
        // QueryBegin replays the stash into the run queue.
        w.handle(WorkerMsg::QueryBegin { ctx, stage: 0 });
        assert!(w.pending.is_empty());
        assert_eq!(w.queue.len(), 1);
    }

    #[test]
    fn dead_query_traversers_are_dropped() {
        let (mut w, _fabric, _wrx) = test_worker();
        let ctx = ctx_for(&w);
        w.handle(WorkerMsg::QueryBegin { ctx, stage: 0 });
        w.handle(WorkerMsg::QueryEnd { query: QueryId(5) });
        let t = Traverser::root(QueryId(5), 0, VertexId(0), 0, Weight::ROOT);
        w.handle(WorkerMsg::Batch(vec![t]));
        assert!(
            w.queue.is_empty(),
            "late traversers for an ended query are dropped"
        );
        assert!(w.pending.is_empty());
    }

    #[test]
    fn query_end_purges_queued_traversers_of_that_query_only() {
        let (mut w, _fabric, _wrx) = test_worker();
        let ctx5 = ctx_for(&w);
        let mut qb = QueryBuilder::new(w.graph.schema());
        qb.v_param(0).out("e");
        let ctx6 = Arc::new(QueryCtx {
            query: QueryId(6),
            plan: qb.compile().unwrap(),
            params: vec![Value::Vertex(VertexId(0))],
            read_ts: 1,
            routing_version: 0,
        });
        w.handle(WorkerMsg::QueryBegin {
            ctx: ctx5,
            stage: 0,
        });
        w.handle(WorkerMsg::QueryBegin {
            ctx: ctx6,
            stage: 0,
        });
        w.handle(WorkerMsg::Batch(vec![
            Traverser::root(QueryId(5), 0, VertexId(0), 0, Weight(1)),
            Traverser::root(QueryId(6), 0, VertexId(0), 0, Weight(2)),
        ]));
        assert_eq!(w.queue.len(), 2);
        w.handle(WorkerMsg::QueryEnd { query: QueryId(5) });
        assert_eq!(w.queue.len(), 1);
        assert_eq!(w.queue.peek().unwrap().query, QueryId(6));
        // The purged query's arena slot and locals table are gone too.
        assert_eq!(w.arena.live(), 1);
        assert!(!w.locals.contains_key(&QueryId(5)));
    }

    #[test]
    fn start_source_before_begin_is_replayed() {
        let (mut w, _fabric, _wrx) = test_worker();
        let ctx = ctx_for(&w);
        w.handle(WorkerMsg::StartSource {
            query: QueryId(5),
            pipeline: 0,
            weight: Weight::ROOT,
        });
        assert!(w.queue.is_empty());
        w.handle(WorkerMsg::QueryBegin { ctx, stage: 0 });
        // The replayed source spawned the root traverser (vertex 0 is local
        // to this worker by construction).
        assert_eq!(w.queue.len(), 1);
    }

    #[test]
    fn migrate_freeze_clones_and_ships_the_segment() {
        let (mut w, _fabric, wrx) = test_worker();
        let own = w.id.part();
        let other = PartId(1 - own.0);
        // `test_worker` builds the worker that owns vertex 0.
        w.handle(WorkerMsg::MigrateFreeze {
            seq: 3,
            v: VertexId(0),
            to: other,
        });
        let dest = w.graph.partitioner().worker_of_part(other);
        match wrx[dest.0 as usize].try_recv() {
            Ok(WorkerMsg::MigrateInstall {
                seq,
                v,
                from,
                segment,
            }) => {
                assert_eq!(seq, 3);
                assert_eq!(v, VertexId(0));
                assert_eq!(from, own);
                assert_eq!(segment.v, VertexId(0));
            }
            got => panic!("expected MigrateInstall at the destination, got {got:?}"),
        }
    }

    #[test]
    fn forwarding_stub_respects_pinned_routing_version() {
        let (mut w, _fabric, _wrx) = test_worker();
        let ctx = ctx_for(&w); // QueryId(5), pinned at routing version 0
        w.handle(WorkerMsg::QueryBegin {
            ctx: Arc::clone(&ctx),
            stage: 0,
        });
        let other = PartId(1 - w.id.part().0);
        // Arm a stub: vertex 0 committed to `other` at routing version 1.
        w.handle(WorkerMsg::MigrateCommit {
            seq: 0,
            v: VertexId(0),
            to: other,
            version: 1,
        });
        // Pinned below the commit: the retained frozen copy here is exactly
        // the state this query's snapshot routes to — execute locally.
        let t = Traverser::root(QueryId(5), 0, VertexId(0), 0, Weight::ROOT);
        w.handle(WorkerMsg::Batch(vec![t]));
        assert_eq!(w.queue.len(), 1, "pre-commit query executes locally");
        assert_eq!(w.forwarded(), 0);
        // Pinned at the commit: the traverser raced the routing flip and
        // must bounce to the new home instead of running on the old copy.
        let mut qb = QueryBuilder::new(w.graph.schema());
        qb.v_param(0).out("e");
        let ctx2 = Arc::new(QueryCtx {
            query: QueryId(6),
            plan: qb.compile().unwrap(),
            params: vec![Value::Vertex(VertexId(0))],
            read_ts: 1,
            routing_version: 1,
        });
        w.handle(WorkerMsg::QueryBegin {
            ctx: ctx2,
            stage: 0,
        });
        let t = Traverser::root(QueryId(6), 0, VertexId(0), 0, Weight::ROOT);
        w.handle(WorkerMsg::Batch(vec![t]));
        assert_eq!(
            w.queue.len(),
            1,
            "post-commit traverser was forwarded, not queued"
        );
        assert_eq!(w.forwarded(), 1);
    }
}
