//! # graphdance-engine
//!
//! The GraphDance asynchronous distributed query engine (paper §IV).
//!
//! A [`GraphDance`] instance simulates a cluster of
//! `nodes × workers_per_node` single-threaded, shared-nothing workers — one
//! graph partition per worker — plus one network thread per node and one
//! coordinator:
//!
//! * Workers interpret traversers with the PSTM `Interpreter`
//!   (`graphdance-pstm`), accessing only their local partition and memo.
//! * Inter-worker traffic flows through the **two-tier I/O scheduler**
//!   (§IV-B, [`net`]): tier 1 batches messages per worker per destination
//!   node (flushed at 8 KB or on idle), tier 2 combines packets from all
//!   local workers per destination node. Same-node messages take the
//!   shared-memory shortcut. Remote packets are really serialized
//!   ([`codec`]) and charged against a configurable network cost model.
//! * Query completion is detected with **progression weights** and
//!   **weight coalescing** (§IV-A, [`progress`]): workers locally sum the
//!   weights of finished traversers and piggyback one coalesced report per
//!   flush.
//!
//! The [`net::Fabric`] and [`codec`] are public so that the baseline engines
//! (`graphdance-baselines`) run on the identical simulated cluster.

//! Runtime invariants (weight conservation, message conservation, the
//! liveness watchdog) are checked in debug builds by [`invariants`] and
//! `graphdance-pstm`'s `WeightLedger`; see `cargo xtask check` for the
//! static half of the same contract.

pub mod codec;
pub mod config;
pub mod coordinator;
pub mod engine;
pub mod invariants;
pub mod messages;
pub mod net;
pub mod node;
pub mod obs;
pub mod progress;
pub mod rebalance;
pub mod sim;
pub mod transport;
pub mod wire;
pub mod worker;

pub use codec::{BytesPool, PoolStats, ProgressEntry};
pub use config::{AdaptivePolicy, EngineConfig, FaultInjection, IoMode, NetConfig, SimFaults};
pub use engine::{GraphDance, QueryHandle, QueryResult};
pub use invariants::{MsgCounts, MsgLedger};
pub use messages::MigPhase;
pub use net::{Fabric, FlushEvent, FlushTrigger, MsgClass, NetStats, NetStatsSnapshot};
pub use node::NodeRuntime;
pub use rebalance::{HotTracker, HotVertex, RebalanceConfig};
pub use sim::{
    FaultCounts, SimActor, SimCluster, SimEvent, SimEventKind, SimHandle, SimStep, SimTrace,
};
pub use transport::{
    PeerAddr, TcpStatsSnapshot, TcpTransport, TcpTransportConfig, Transport, WirePacket,
};
pub use worker::PumpStatus;

#[cfg(feature = "obs")]
pub use obs::{CoordObs, EngineObs, NetShard, WorkerObs};

/// Re-export of the observability crate (types appearing in the public
/// API: `GraphDance::metrics`, `GraphDance::query_traced`), so dependents
/// don't need their own `graphdance-obs` dependency.
#[cfg(feature = "obs")]
pub use graphdance_obs;
