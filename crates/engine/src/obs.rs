//! Engine-side observability glue: the bridge between the hot paths
//! (worker step loop, coordinator stage transitions, outbox flushing) and
//! the dependency-free `graphdance-obs` crate.
//!
//! With the `obs` cargo feature **enabled**, this module provides:
//!
//! * [`EngineObs`] — the cluster-wide metrics [`Registry`], the metric ids
//!   registered at fabric construction, the shared [`TraceSink`] for query
//!   spans, and the single monotonic epoch all timestamps are relative to.
//! * [`NetShard`] — a per-outbox / per-egress-thread single-writer metrics
//!   shard for the network counters.
//! * [`WorkerObs`] / [`CoordObs`] — per-thread span accumulators that batch
//!   `(query, stage)` activity locally and push one [`SpanRecord`] per
//!   stage into the sink (so the sink mutex is touched once per stage, not
//!   once per traverser).
//!
//! With the feature **disabled**, the same names exist as zero-sized stubs
//! so type-level references stay valid, and every call site in the engine
//! is `#[cfg(feature = "obs")]`-gated — the instrumentation compiles to
//! nothing (verified by `zero_cost_tests` below and the `Queued` layout
//! test in `worker.rs`).

#[cfg(feature = "obs")]
pub use real::*;

#[cfg(feature = "obs")]
mod real {
    use std::sync::Arc;
    use std::time::Instant;

    use graphdance_common::time::now;
    use graphdance_common::{FxHashMap, QueryId, WorkerId};
    use graphdance_obs::{MetricId, Registry, ShardHandle, SpanRecord, TraceSink, COORD_WORKER};
    use graphdance_pstm::MemoStats;

    use crate::net::Fabric;

    /// How many reassembled traces the sink retains for pickup.
    const TRACE_RING: usize = 32;

    /// Every metric id the engine records, registered once at fabric
    /// construction (before any shard exists).
    #[derive(Debug, Clone, Copy)]
    pub struct EngineIds {
        /// Logical message count per lane, `MsgClass` order.
        pub net_msgs: [MetricId; 4],
        /// Approximate payload bytes per lane, `MsgClass` order.
        pub net_bytes: [MetricId; 4],
        /// Wire packets sent by egress threads (tier-2 combining output).
        pub wire_packets: MetricId,
        /// Wire bytes (payload + packet header).
        pub wire_bytes: MetricId,
        /// Distribution of wire packet sizes.
        pub wire_packet_bytes: MetricId,
        /// Messages delivered via the same-node shared-memory shortcut.
        pub same_node_msgs: MetricId,
        /// Tier-1 flushes triggered by the byte threshold (vs. idle/ctrl).
        pub flush_threshold: MetricId,
        /// Tier-1 flushes triggered by an adaptive idle-flush deadline.
        pub deadline_flushes: MetricId,
        /// Distribution of tier-1 buffer sizes at flush time.
        pub flush_buf_bytes: MetricId,
        /// Ingress batch frames that failed to decode.
        pub decode_errors: MetricId,
        /// Progress reports piggybacked on outgoing traverser batches.
        pub progress_piggybacked: MetricId,
        /// Traversers executed by workers.
        pub executed: MetricId,
        /// Traversers spawned into the executing worker's own queue.
        pub spawned_local: MetricId,
        /// Traversers handed to an outbox for another partition.
        pub sent_remote: MetricId,
        /// Local queue depth at the end of each execution batch.
        pub queue_depth: MetricId,
        /// Time traversers waited in the local queue (ns).
        pub queue_wait_ns: MetricId,
        /// Per-traverser interpreter execution time (ns).
        pub exec_ns: MetricId,
        /// Memo lookups that hit existing state (dedup/min-dist/join).
        pub memo_hits: MetricId,
        /// Memo lookups that created fresh state.
        pub memo_misses: MetricId,
        /// Double-pipelined join probes.
        pub join_probes: MetricId,
        /// Aggregation partial updates.
        pub agg_updates: MetricId,
        /// Vertex migrations fully retired (live rebalancing, §14).
        pub migrations: MetricId,
        /// Traversers redirected by a source-side forwarding stub while a
        /// migration awaited retirement.
        pub forwarded: MetricId,
        /// Cross-partition edge cut at the last rebalance (gauge).
        pub cut_edges: MetricId,
    }

    /// Cluster-wide observability state, owned by the [`Fabric`].
    #[derive(Debug)]
    pub struct EngineObs {
        registry: Registry,
        ids: EngineIds,
        sink: TraceSink,
        epoch: Instant,
    }

    impl EngineObs {
        /// Register the engine's metric namespace and create the trace
        /// sink. `num_workers` is the number of seals expected per query
        /// (every worker seals on `QueryEnd`).
        pub fn new(num_workers: u32) -> Self {
            let r = Registry::new();
            let ids = EngineIds {
                net_msgs: [
                    r.counter("net.traverser_msgs"),
                    r.counter("net.progress_msgs"),
                    r.counter("net.rows_msgs"),
                    r.counter("net.control_msgs"),
                ],
                net_bytes: [
                    r.counter("net.traverser_bytes"),
                    r.counter("net.progress_bytes"),
                    r.counter("net.rows_bytes"),
                    r.counter("net.control_bytes"),
                ],
                wire_packets: r.counter("net.wire_packets"),
                wire_bytes: r.counter("net.wire_bytes"),
                wire_packet_bytes: r.histogram("net.wire_packet_bytes"),
                same_node_msgs: r.counter("net.same_node_msgs"),
                flush_threshold: r.counter("net.flush_threshold"),
                deadline_flushes: r.counter("net.deadline_flushes"),
                flush_buf_bytes: r.histogram("net.flush_buf_bytes"),
                decode_errors: r.counter("net.decode_errors"),
                progress_piggybacked: r.counter("net.progress_piggybacked"),
                executed: r.counter("worker.executed"),
                spawned_local: r.counter("worker.spawned_local"),
                sent_remote: r.counter("worker.sent_remote"),
                queue_depth: r.gauge("worker.queue_depth"),
                queue_wait_ns: r.histogram("worker.queue_wait_ns"),
                exec_ns: r.histogram("worker.exec_ns"),
                memo_hits: r.counter("memo.hits"),
                memo_misses: r.counter("memo.misses"),
                join_probes: r.counter("memo.join_probes"),
                agg_updates: r.counter("memo.agg_updates"),
                migrations: r.counter("part.migrations"),
                forwarded: r.counter("part.forwarded"),
                cut_edges: r.gauge("part.cut_edges"),
            };
            EngineObs {
                registry: r,
                ids,
                sink: TraceSink::new(num_workers, TRACE_RING),
                epoch: now(),
            }
        }

        /// The metrics registry (scrape with `registry().snapshot()`).
        pub fn registry(&self) -> &Registry {
            &self.registry
        }

        /// The registered metric ids.
        pub fn ids(&self) -> EngineIds {
            self.ids
        }

        /// The shared span sink.
        pub fn sink(&self) -> &TraceSink {
            &self.sink
        }

        /// Nanoseconds since the engine epoch.
        #[inline]
        pub fn now_ns(&self) -> u64 {
            now().saturating_duration_since(self.epoch).as_nanos() as u64
        }

        /// A fresh single-writer shard for one network-sending thread.
        pub fn net_shard(&self) -> NetShard {
            NetShard {
                shard: self.registry.shard(),
                ids: self.ids,
            }
        }
    }

    /// One sending thread's network-metrics shard (outbox or egress).
    #[derive(Debug)]
    pub struct NetShard {
        shard: ShardHandle,
        ids: EngineIds,
    }

    impl NetShard {
        /// Count one logical message on `lane` (a `MsgClass` index).
        #[inline]
        pub fn count(&self, lane: usize, bytes: usize) {
            if let (Some(m), Some(b)) = (self.ids.net_msgs.get(lane), self.ids.net_bytes.get(lane))
            {
                self.shard.inc(*m);
                self.shard.add(*b, bytes as u64);
            }
        }

        /// Count one wire packet of `wire` bytes (egress threads).
        #[inline]
        pub fn wire_packet(&self, wire: usize) {
            self.shard.inc(self.ids.wire_packets);
            self.shard.add(self.ids.wire_bytes, wire as u64);
            self.shard.observe(self.ids.wire_packet_bytes, wire as u64);
        }

        /// Count one message delivered via the same-node shortcut.
        #[inline]
        pub fn same_node(&self) {
            self.shard.inc(self.ids.same_node_msgs);
        }

        /// Count one threshold-triggered tier-1 flush.
        #[inline]
        pub fn flush_threshold(&self) {
            self.shard.inc(self.ids.flush_threshold);
        }

        /// Count one adaptive deadline-triggered tier-1 flush.
        #[inline]
        pub fn deadline_flush(&self) {
            self.shard.inc(self.ids.deadline_flushes);
        }

        /// Record the buffered byte count of one (non-empty) tier-1 flush.
        #[inline]
        pub fn flush_buf_bytes(&self, bytes: usize) {
            self.shard.observe(self.ids.flush_buf_bytes, bytes as u64);
        }

        /// Count one ingress batch frame that failed to decode.
        #[inline]
        pub fn decode_error(&self) {
            self.shard.inc(self.ids.decode_errors);
        }

        /// Count `n` progress reports piggybacked on a traverser batch.
        #[inline]
        pub fn piggybacked(&self, n: u64) {
            self.shard.add(self.ids.progress_piggybacked, n);
        }
    }

    /// Span accumulator for one `(query, stage)`; hops are folded into a
    /// map until flush.
    #[derive(Debug, Default)]
    struct SpanAcc {
        rec: SpanRecord,
        hops: FxHashMap<u32, u64>,
    }

    impl SpanAcc {
        fn into_record(mut self) -> SpanRecord {
            let mut hops: Vec<(u32, u64)> = self.hops.into_iter().collect();
            hops.sort_unstable();
            self.rec.hops = hops;
            self.rec
        }
    }

    fn span_entry(
        spans: &mut FxHashMap<(QueryId, u16), SpanAcc>,
        query: QueryId,
        stage: u16,
        worker: u32,
    ) -> &mut SpanAcc {
        spans.entry((query, stage)).or_insert_with(|| SpanAcc {
            rec: SpanRecord {
                query: query.0,
                stage: stage as u32,
                worker,
                ..Default::default()
            },
            hops: FxHashMap::default(),
        })
    }

    /// One worker thread's instrumentation state.
    #[derive(Debug)]
    pub struct WorkerObs {
        eng: Arc<EngineObs>,
        shard: ShardHandle,
        worker: u32,
        spans: FxHashMap<(QueryId, u16), SpanAcc>,
    }

    impl WorkerObs {
        /// Instrumentation for worker `id` on `fabric`'s cluster.
        pub fn new(fabric: &Arc<Fabric>, id: WorkerId) -> Self {
            let eng = Arc::clone(fabric.obs());
            WorkerObs {
                shard: eng.registry().shard(),
                worker: id.0,
                spans: FxHashMap::default(),
                eng,
            }
        }

        /// Nanoseconds since the engine epoch.
        #[inline]
        pub fn now_ns(&self) -> u64 {
            self.eng.now_ns()
        }

        /// A traverser enqueued at `enq_ns` is about to execute. Returns
        /// `(now_ns, wait_ns)`.
        #[inline]
        pub fn exec_begin(&self, enq_ns: u64) -> (u64, u64) {
            let t0 = self.eng.now_ns();
            (t0, t0.saturating_sub(enq_ns))
        }

        /// One traverser finished executing: fold timing and the drained
        /// memo stats into the `(query, stage)` span and the shard.
        pub fn exec_end(
            &mut self,
            query: QueryId,
            stage: u16,
            t0_ns: u64,
            wait_ns: u64,
            m: MemoStats,
        ) {
            let exec_ns = self.eng.now_ns().saturating_sub(t0_ns);
            let ids = self.eng.ids();
            self.shard.inc(ids.executed);
            self.shard.observe(ids.exec_ns, exec_ns);
            self.shard.observe(ids.queue_wait_ns, wait_ns);
            let (hits, misses) = (m.hits(), m.misses());
            self.shard.add(ids.memo_hits, hits);
            self.shard.add(ids.memo_misses, misses);
            self.shard.add(ids.join_probes, m.join_probes);
            self.shard.add(ids.agg_updates, m.agg_updates);
            let sp = span_entry(&mut self.spans, query, stage, self.worker);
            sp.rec.executed += 1;
            sp.rec.exec_ns += exec_ns;
            sp.rec.queue_wait_ns += wait_ns;
            sp.rec.memo_hits += hits;
            sp.rec.memo_misses += misses;
        }

        /// Fold one routed interpreter outcome into the span: local spawns,
        /// remote sends (`(dest worker, approx bytes)`), emitted rows, and
        /// whether an eager progress report went out.
        pub fn route_done(
            &mut self,
            query: QueryId,
            stage: u16,
            local: u64,
            remote: &[(u32, u64)],
            rows_bytes: Option<u64>,
            progress: bool,
        ) {
            let ids = self.eng.ids();
            self.shard.add(ids.spawned_local, local);
            self.shard.add(ids.sent_remote, remote.len() as u64);
            let sp = span_entry(&mut self.spans, query, stage, self.worker);
            sp.rec.spawned_local += local;
            for &(dest, bytes) in remote {
                sp.rec.sent_remote += 1;
                sp.rec.msgs[0] += 1;
                sp.rec.bytes[0] += bytes;
                *sp.hops.entry(dest).or_insert(0) += 1;
            }
            if let Some(b) = rows_bytes {
                sp.rec.msgs[2] += 1;
                sp.rec.bytes[2] += b;
            }
            if progress {
                sp.rec.msgs[1] += 1;
                sp.rec.bytes[1] += 32;
            }
        }

        /// A coalesced progress report went out for `(query, stage)`.
        pub fn note_progress(&mut self, query: QueryId, stage: u16) {
            let sp = span_entry(&mut self.spans, query, stage, self.worker);
            sp.rec.msgs[1] += 1;
            sp.rec.bytes[1] += 32;
        }

        /// A control-plane message of `bytes` went out for `(query, stage)`.
        pub fn note_ctrl(&mut self, query: QueryId, stage: u16, bytes: u64) {
            let sp = span_entry(&mut self.spans, query, stage, self.worker);
            sp.rec.msgs[3] += 1;
            sp.rec.bytes[3] += bytes;
        }

        /// Publish the local queue depth gauge.
        #[inline]
        pub fn queue_depth(&self, depth: u64) {
            self.shard.set(self.eng.ids().queue_depth, depth);
        }

        /// A forwarding stub redirected one traverser to a migrated
        /// vertex's new home.
        #[inline]
        pub fn stub_forwarded(&self) {
            self.shard.inc(self.eng.ids().forwarded);
        }

        /// The stage advanced: push the finished stage's span to the sink.
        pub fn flush_stage(&mut self, query: QueryId, stage: u16) {
            if let Some(acc) = self.spans.remove(&(query, stage)) {
                self.eng.sink().record(acc.into_record());
            }
        }

        /// The query ended: flush every remaining span and seal.
        pub fn end_query(&mut self, query: QueryId) {
            let keys: Vec<(QueryId, u16)> = self
                .spans
                .keys()
                .filter(|k| k.0 == query)
                .copied()
                .collect();
            for k in keys {
                if let Some(acc) = self.spans.remove(&k) {
                    self.eng.sink().record(acc.into_record());
                }
            }
            self.eng.sink().seal(query.0);
        }
    }

    /// The coordinator's instrumentation state: stage timestamps plus its
    /// own seeding spans (reported as worker [`COORD_WORKER`]).
    #[derive(Debug)]
    pub struct CoordObs {
        eng: Arc<EngineObs>,
        shard: ShardHandle,
        spans: FxHashMap<(QueryId, u16), SpanAcc>,
    }

    impl CoordObs {
        /// Instrumentation for the coordinator on `fabric`'s cluster.
        pub fn new(fabric: &Arc<Fabric>) -> Self {
            let eng = Arc::clone(fabric.obs());
            CoordObs {
                shard: eng.registry().shard(),
                spans: FxHashMap::default(),
                eng,
            }
        }

        /// One vertex migration fully retired.
        #[inline]
        pub fn migration_done(&self) {
            self.shard.inc(self.eng.ids().migrations);
        }

        /// Publish the routed cross-partition edge cut (set after each
        /// rebalance round, not per-query).
        #[inline]
        pub fn set_cut_edges(&self, cut: u64) {
            self.shard.set(self.eng.ids().cut_edges, cut);
        }

        /// Stamp the begin time of `(query, stage)`.
        pub fn stage_begin(&self, query: QueryId, stage: u16) {
            self.eng
                .sink()
                .stage_begin(query.0, stage as u32, self.eng.now_ns());
        }

        /// Stamp the end time of `(query, stage)`.
        pub fn stage_end(&self, query: QueryId, stage: u16) {
            self.eng
                .sink()
                .stage_end(query.0, stage as u32, self.eng.now_ns());
        }

        /// The coordinator seeded one traverser to `dest` (inter-stage
        /// `PrevRows` sources).
        pub fn seed_sent(&mut self, query: QueryId, stage: u16, dest: u32, bytes: u64) {
            let sp = span_entry(&mut self.spans, query, stage, COORD_WORKER);
            sp.rec.sent_remote += 1;
            sp.rec.msgs[0] += 1;
            sp.rec.bytes[0] += bytes;
            *sp.hops.entry(dest).or_insert(0) += 1;
        }

        /// The coordinator sent a control message for `(query, stage)`.
        pub fn ctrl_sent(&mut self, query: QueryId, stage: u16, bytes: u64) {
            let sp = span_entry(&mut self.spans, query, stage, COORD_WORKER);
            sp.rec.msgs[3] += 1;
            sp.rec.bytes[3] += bytes;
        }

        /// The query finished: flush the coordinator's spans and hand the
        /// sink the final latency and ledger counts. Must be called before
        /// the ledger forgets the query.
        pub fn query_done(&mut self, query: QueryId, total_ns: u64, sent: u64, delivered: u64) {
            let keys: Vec<(QueryId, u16)> = self
                .spans
                .keys()
                .filter(|k| k.0 == query)
                .copied()
                .collect();
            for k in keys {
                if let Some(acc) = self.spans.remove(&k) {
                    self.eng.sink().record(acc.into_record());
                }
            }
            self.eng
                .sink()
                .query_done(query.0, total_ns, sent, delivered);
        }

        /// Discard all trace state of a query that will never complete.
        pub fn forget(&mut self, query: QueryId) {
            self.spans.retain(|k, _| k.0 != query);
            self.eng.sink().forget(query.0);
        }
    }
}

// ---------------------------------------------------------------------------
// Feature-off stubs: the names exist (so docs and type-level references
// stay valid) but carry no data and no methods — every call site in the
// engine is feature-gated, so nothing references them at runtime.
// ---------------------------------------------------------------------------

/// Zero-sized stub (the `obs` feature is disabled).
#[cfg(not(feature = "obs"))]
#[derive(Debug, Default, Clone, Copy)]
pub struct EngineObs;

/// Zero-sized stub (the `obs` feature is disabled).
#[cfg(not(feature = "obs"))]
#[derive(Debug, Default, Clone, Copy)]
pub struct NetShard;

/// Zero-sized stub (the `obs` feature is disabled).
#[cfg(not(feature = "obs"))]
#[derive(Debug, Default, Clone, Copy)]
pub struct WorkerObs;

/// Zero-sized stub (the `obs` feature is disabled).
#[cfg(not(feature = "obs"))]
#[derive(Debug, Default, Clone, Copy)]
pub struct CoordObs;

/// Compile-time proof that the disabled-feature build carries no
/// instrumentation state: every obs type is zero-sized, so no engine
/// struct grows and no hot-path code can touch observability data.
#[cfg(all(test, not(feature = "obs")))]
mod zero_cost_tests {
    #[test]
    fn stubs_are_zero_sized() {
        assert_eq!(std::mem::size_of::<super::EngineObs>(), 0);
        assert_eq!(std::mem::size_of::<super::NetShard>(), 0);
        assert_eq!(std::mem::size_of::<super::WorkerObs>(), 0);
        assert_eq!(std::mem::size_of::<super::CoordObs>(), 0);
    }
}
