//! The transport seam: how combined wire packets leave a node.
//!
//! [`crate::net::EgressPump`] performs tier-2 combining and then hands each
//! per-destination packet to a [`Transport`]. Three backends implement the
//! seam:
//!
//! - **channel** ([`crate::net::ChannelTransport`]): the in-process fabric.
//!   Charges the modeled send cost, stamps the propagation delay, and
//!   forwards to the destination node's ingress channel. This is both the
//!   threaded engine's backend and the DST target (the simulator pumps the
//!   same code cooperatively under the virtual clock), so its event
//!   sequence is bit-identical to the pre-seam fabric.
//! - **tcp** / **unix** ([`TcpTransport`]): a real socket backend. Packets
//!   are length-prefix framed over the zero-copy batch codec and written to
//!   per-peer streams; per-peer reader threads reassemble frames from
//!   arbitrary byte boundaries and deliver straight into the local fabric.
//!
//! ## Framing
//!
//! Every socket frame is `u32 len (LE) | u8 kind | body`, where `len`
//! counts the kind byte plus the body. Kinds:
//!
//! | kind | name    | body                                         |
//! |------|---------|----------------------------------------------|
//! | 1    | HELLO   | `u32 node` — sender's node id, first frame   |
//! | 2    | PACKET  | `u16 count`, then `count` wire msgs (`wire`) |
//! | 3    | GOODBYE | empty — sender will never write again        |
//!
//! Streams are directed: a node *connects* one stream to every peer and
//! uses it only for sending (HELLO first, GOODBYE last); every *accepted*
//! stream is receive-only. The mesh is therefore `n·(n-1)` directed
//! streams, and per-lane FIFO ordering reduces to TCP's in-order byte
//! stream.
//!
//! ## Drain-before-close
//!
//! [`Transport::end_of_stream`] runs on the egress thread after the pump
//! has consumed its `Shutdown` event. Because the egress channel is FIFO,
//! every packet the outboxes flushed before [`crate::net::Fabric::shutdown`]
//! has already been written to its socket by then; `end_of_stream` then
//! appends GOODBYE and closes the write half. A receiver consequently sees
//! every frame of every flushed outbox before EOF — messages are never
//! truncated by shutdown.

use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use graphdance_common::time::now;
use graphdance_common::{GdError, GdResult, NodeId};
use parking_lot::Mutex;

use crate::net::{Fabric, WireMsg};
use crate::wire;

/// One combined, per-destination wire packet handed from the egress pump
/// to the transport backend.
#[derive(Debug)]
pub struct WirePacket {
    /// Destination node.
    pub dest_node: NodeId,
    /// The messages riding in this packet, in lane-FIFO order.
    pub msgs: Vec<WireMsg>,
    /// Modeled payload size (sum of [`WireMsg::wire_size`]).
    pub bytes: usize,
}

/// How combined wire packets leave a node (and, for socket backends, how
/// inbound bytes come back in). One transport instance serves one node.
pub trait Transport: Send + Sync {
    /// Backend name for diagnostics ("channel", "tcp", "unix").
    fn name(&self) -> &'static str;

    /// Attach the local fabric and start any background receive machinery.
    /// Called exactly once, before the egress pump runs.
    fn start(&self, fabric: Arc<Fabric>);

    /// Ship one combined packet toward its destination node.
    fn ship(&self, pkt: WirePacket);

    /// The egress stream has ended (all flushed packets are shipped):
    /// propagate shutdown downstream. Socket backends append GOODBYE and
    /// close write halves; the channel backend forwards `Shutdown` to the
    /// ingress threads.
    fn end_of_stream(&self);
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Frame kind: sender's node id, first frame on every stream.
pub const FRAME_HELLO: u8 = 1;
/// Frame kind: a combined wire packet.
pub const FRAME_PACKET: u8 = 2;
/// Frame kind: orderly end of stream.
pub const FRAME_GOODBYE: u8 = 3;

/// Upper bound on a single frame body. A corrupt length prefix surfaces as
/// a decode error instead of a multi-gigabyte allocation.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// A parsed socket frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Peer introduction (sender's node id).
    Hello {
        /// The sending peer's node id.
        node: NodeId,
    },
    /// A combined wire packet body (decode with the packet codec in
    /// [`crate::wire`]).
    Packet(Vec<u8>),
    /// Orderly end of stream.
    Goodbye,
}

/// Encode one frame: `u32 len | u8 kind | body`.
pub fn encode_frame(buf: &mut Vec<u8>, kind: u8, body: &[u8]) {
    buf.extend_from_slice(&(body.len() as u32 + 1).to_le_bytes());
    buf.push(kind);
    buf.extend_from_slice(body);
}

/// Incremental frame reassembly for one inbound stream. Bytes arrive in
/// arbitrary chunks (1-byte reads, frames coalesced into one read, frames
/// split across reads); [`Reassembler::push`] buffers them and
/// [`Reassembler::pop`] yields complete frames. Corrupt prefixes and
/// unknown kinds surface as [`GdError`] — never a panic.
#[derive(Debug, Default)]
pub struct Reassembler {
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; compacted opportunistically so the buffer
    /// doesn't grow without bound across frames.
    start: usize,
}

impl Reassembler {
    /// Empty reassembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed bytes read off the stream.
    pub fn push(&mut self, bytes: &[u8]) {
        if self.start > 0 && self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet parsed.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Pop the next complete frame, `Ok(None)` if more bytes are needed.
    pub fn pop(&mut self) -> GdResult<Option<Frame>> {
        let avail = &self.buf[self.start..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([avail[0], avail[1], avail[2], avail[3]]) as usize;
        if len == 0 || len > MAX_FRAME_BYTES {
            return Err(GdError::Internal(format!(
                "transport: corrupt frame length {len}"
            )));
        }
        if avail.len() < 4 + len {
            return Ok(None);
        }
        let kind = avail[4];
        let body = &avail[5..4 + len];
        let frame = match kind {
            FRAME_HELLO => {
                if body.len() != 4 {
                    return Err(GdError::Internal("transport: malformed HELLO frame".into()));
                }
                Frame::Hello {
                    node: NodeId(u32::from_le_bytes([body[0], body[1], body[2], body[3]])),
                }
            }
            FRAME_PACKET => Frame::Packet(body.to_vec()),
            FRAME_GOODBYE => {
                if !body.is_empty() {
                    return Err(GdError::Internal(
                        "transport: malformed GOODBYE frame".into(),
                    ));
                }
                Frame::Goodbye
            }
            k => {
                return Err(GdError::Internal(format!(
                    "transport: unknown frame kind {k}"
                )))
            }
        };
        self.start += 4 + len;
        // Compact once the consumed prefix dominates, amortizing the copy.
        if self.start > 4096 && self.start * 2 > self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        Ok(Some(frame))
    }
}

// ---------------------------------------------------------------------------
// Addresses and streams
// ---------------------------------------------------------------------------

/// A peer's listen address: TCP (`host:port`) or Unix-domain
/// (`unix:/path/to.sock`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PeerAddr {
    /// TCP `host:port`.
    Tcp(String),
    /// Unix-domain socket path.
    Unix(PathBuf),
}

impl PeerAddr {
    /// Parse `host:port` or `unix:/path`.
    pub fn parse(s: &str) -> GdResult<PeerAddr> {
        if let Some(path) = s.strip_prefix("unix:") {
            if path.is_empty() {
                return Err(GdError::InvalidProgram(format!("bad peer address {s:?}")));
            }
            return Ok(PeerAddr::Unix(PathBuf::from(path)));
        }
        if !s.contains(':') {
            return Err(GdError::InvalidProgram(format!(
                "bad peer address {s:?} (expected host:port or unix:/path)"
            )));
        }
        Ok(PeerAddr::Tcp(s.to_string()))
    }
}

impl std::fmt::Display for PeerAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PeerAddr::Tcp(a) => write!(f, "{a}"),
            PeerAddr::Unix(p) => write!(f, "unix:{}", p.display()),
        }
    }
}

/// A connected stream of either family.
#[derive(Debug)]
enum Conn {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Conn {
    fn connect(addr: &PeerAddr) -> std::io::Result<Conn> {
        match addr {
            PeerAddr::Tcp(a) => {
                let s = TcpStream::connect(a)?;
                // One combined packet per write: Nagle only adds latency.
                s.set_nodelay(true)?;
                Ok(Conn::Tcp(s))
            }
            PeerAddr::Unix(p) => Ok(Conn::Unix(UnixStream::connect(p)?)),
        }
    }

    fn shutdown_write(&self) {
        match self {
            Conn::Tcp(s) => {
                let _ = s.shutdown(Shutdown::Write);
            }
            Conn::Unix(s) => {
                let _ = s.shutdown(Shutdown::Write);
            }
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Unix(s) => s.flush(),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Unix(s) => s.read(buf),
        }
    }
}

/// A bound, non-blocking listener of either family.
enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

impl Listener {
    fn bind(addr: &PeerAddr) -> std::io::Result<Listener> {
        match addr {
            PeerAddr::Tcp(a) => {
                let l = TcpListener::bind(a)?;
                l.set_nonblocking(true)?;
                Ok(Listener::Tcp(l))
            }
            PeerAddr::Unix(p) => {
                // A stale socket file from a crashed predecessor would make
                // bind fail; remove it first.
                let _ = std::fs::remove_file(p);
                let l = UnixListener::bind(p)?;
                l.set_nonblocking(true)?;
                Ok(Listener::Unix(l))
            }
        }
    }

    /// The actual bound TCP address (for `port 0` auto-assignment).
    fn local_addr(&self) -> Option<std::net::SocketAddr> {
        match self {
            Listener::Tcp(l) => l.local_addr().ok(),
            Listener::Unix(_) => None,
        }
    }

    fn accept(&self) -> std::io::Result<Conn> {
        match self {
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                s.set_nonblocking(false)?;
                s.set_nodelay(true)?;
                Ok(Conn::Tcp(s))
            }
            Listener::Unix(l) => {
                let (s, _) = l.accept()?;
                s.set_nonblocking(false)?;
                Ok(Conn::Unix(s))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// TcpTransport
// ---------------------------------------------------------------------------

/// Socket-backend counters (`net.tcp.*`). Plain atomics: the transport is
/// shared across the egress thread and per-peer reader threads, and these
/// counts feed the `transport_ab` bench and shutdown diagnostics.
#[derive(Debug, Default)]
pub struct TcpStats {
    frames_sent: AtomicU64, // lint: allow(adhoc-counter) net.tcp.* socket-backend counter
    frames_recv: AtomicU64, // lint: allow(adhoc-counter) net.tcp.* socket-backend counter
    bytes_sent: AtomicU64,  // lint: allow(adhoc-counter) net.tcp.* socket-backend counter
    bytes_recv: AtomicU64,  // lint: allow(adhoc-counter) net.tcp.* socket-backend counter
    write_syscalls: AtomicU64, // lint: allow(adhoc-counter) net.tcp.* socket-backend counter
    read_syscalls: AtomicU64, // lint: allow(adhoc-counter) net.tcp.* socket-backend counter
    connect_retries: AtomicU64, // lint: allow(adhoc-counter) net.tcp.* socket-backend counter
    send_errors: AtomicU64, // lint: allow(adhoc-counter) net.tcp.* socket-backend counter
}

/// Point-in-time copy of [`TcpStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TcpStatsSnapshot {
    /// PACKET frames written.
    pub frames_sent: u64,
    /// PACKET frames received and decoded.
    pub frames_recv: u64,
    /// Frame bytes written (all kinds, headers included).
    pub bytes_sent: u64,
    /// Bytes read off sockets.
    pub bytes_recv: u64,
    /// `write(2)` calls issued.
    pub write_syscalls: u64,
    /// `read(2)` calls issued.
    pub read_syscalls: u64,
    /// Connect attempts that had to back off and retry.
    pub connect_retries: u64,
    /// Packets dropped because the peer stream was gone.
    pub send_errors: u64,
}

impl TcpStats {
    fn snapshot(&self) -> TcpStatsSnapshot {
        // sync: monotonic diagnostic counters — torn cross-counter views
        // are acceptable in a snapshot
        let ld = |c: &AtomicU64| c.load(Ordering::Relaxed); // lint: allow(adhoc-counter) snapshot helper, no new counter
        TcpStatsSnapshot {
            frames_sent: ld(&self.frames_sent),
            frames_recv: ld(&self.frames_recv),
            bytes_sent: ld(&self.bytes_sent),
            bytes_recv: ld(&self.bytes_recv),
            write_syscalls: ld(&self.write_syscalls),
            read_syscalls: ld(&self.read_syscalls),
            connect_retries: ld(&self.connect_retries),
            send_errors: ld(&self.send_errors),
        }
    }
}

/// Configuration for [`TcpTransport`].
#[derive(Debug, Clone)]
pub struct TcpTransportConfig {
    /// This node's id (indexes `peers`).
    pub local: NodeId,
    /// Listen address of every node, indexed by node id. `peers[local]` is
    /// the local listen address.
    pub peers: Vec<PeerAddr>,
    /// Total budget for establishing each outbound stream.
    pub connect_timeout: Duration,
    /// Initial connect-retry backoff; doubles per retry up to 100 ms.
    pub retry_backoff: Duration,
}

impl TcpTransportConfig {
    /// Defaults: 10 s connect budget, 1 ms initial backoff.
    pub fn new(local: NodeId, peers: Vec<PeerAddr>) -> Self {
        TcpTransportConfig {
            local,
            peers,
            connect_timeout: Duration::from_secs(10),
            retry_backoff: Duration::from_millis(1),
        }
    }
}

/// The real-socket backend (TCP or Unix-domain). See the module docs for
/// the framing, mesh topology, and drain-before-close contract.
pub struct TcpTransport {
    cfg: TcpTransportConfig,
    /// The live peer table. Starts as `cfg.peers`; a launcher that binds
    /// every node on an ephemeral port first may replace it (with the
    /// resolved addresses) via [`TcpTransport::set_peers`] before `start`.
    peers: Mutex<Vec<PeerAddr>>,
    fabric: OnceLock<Arc<Fabric>>,
    /// Outbound send streams, indexed by node id (`None` at the local
    /// index and for peers that disconnected).
    senders: Mutex<Vec<Option<Conn>>>,
    /// Bound at construction — before any peer tries to connect — and
    /// consumed by the acceptor thread in `start`.
    listener: Mutex<Option<Listener>>,
    /// The resolved local listen address (after `port 0` assignment).
    local_addr: PeerAddr,
    /// Acceptor + reader threads, joined at `end_of_stream`.
    threads: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    /// Set once `end_of_stream` ran (stops the acceptor poll loop).
    closing: Arc<AtomicBool>,
    /// Reusable frame-encode scratch buffer (egress thread only).
    scratch: Mutex<Vec<u8>>,
    stats: Arc<TcpStats>,
}

impl TcpTransport {
    /// Bind the local listen address and prepare the transport. Binding
    /// happens here — before any peer process tries to connect — so
    /// `start` only has to dial outward.
    pub fn bind(cfg: TcpTransportConfig) -> GdResult<Arc<TcpTransport>> {
        let local = cfg.local.as_usize();
        if local >= cfg.peers.len() {
            return Err(GdError::InvalidProgram(format!(
                "local node {local} outside peer list of {}",
                cfg.peers.len()
            )));
        }
        let listener = Listener::bind(&cfg.peers[local])
            .map_err(|e| GdError::Internal(format!("bind {}: {e}", cfg.peers[local])))?;
        // Resolve `port 0` so tests can learn the assigned port.
        let local_addr = match listener.local_addr() {
            Some(a) => PeerAddr::Tcp(a.to_string()),
            None => cfg.peers[local].clone(),
        };
        let n = cfg.peers.len();
        let peers = Mutex::new(cfg.peers.clone());
        Ok(Arc::new(TcpTransport {
            cfg,
            peers,
            fabric: OnceLock::new(),
            senders: Mutex::new((0..n).map(|_| None).collect()),
            listener: Mutex::new(Some(listener)),
            local_addr,
            threads: Arc::new(Mutex::new(Vec::new())),
            closing: Arc::new(AtomicBool::new(false)),
            scratch: Mutex::new(Vec::new()),
            stats: Arc::new(TcpStats::default()),
        }))
    }

    /// The resolved local listen address (`port 0` replaced by the real
    /// port for TCP).
    pub fn local_addr(&self) -> &PeerAddr {
        &self.local_addr
    }

    /// Socket-level counters.
    pub fn stats(&self) -> TcpStatsSnapshot {
        self.stats.snapshot()
    }

    /// Replace the peer table before [`Transport::start`]. Launchers bind
    /// every node on an ephemeral port first, then exchange the resolved
    /// addresses and install them here; the cluster size is fixed at bind.
    ///
    /// # Panics
    /// Panics if the new list's length differs from the bind-time list.
    pub fn set_peers(&self, peers: Vec<PeerAddr>) {
        let mut cur = self.peers.lock();
        assert_eq!(
            cur.len(),
            peers.len(),
            "peer-list length is fixed at bind time"
        );
        *cur = peers;
    }

    /// Dial one peer with bounded retry + exponential backoff. Deadlines
    /// run on `common::time::now()` so the budget is uniform with the rest
    /// of the engine's timekeeping.
    fn dial(&self, addr: &PeerAddr) -> GdResult<Conn> {
        let deadline = now() + self.cfg.connect_timeout;
        let mut backoff = self.cfg.retry_backoff;
        loop {
            match Conn::connect(addr) {
                Ok(c) => return Ok(c),
                Err(e) => {
                    if now() + backoff >= deadline {
                        return Err(GdError::Internal(format!("connect {addr}: {e}")));
                    }
                    // sync: monotonic diagnostic counter
                    self.stats.connect_retries.fetch_add(1, Ordering::Relaxed);
                    // lint: allow(hot-path-blocking) startup-only connect retry
                    std::thread::sleep(backoff); // lint: allow(sim-determinism) real-socket backend, never sim-reachable
                    backoff = (backoff * 2).min(Duration::from_millis(100));
                }
            }
        }
    }
}

/// Read one inbound stream to completion: HELLO, then PACKET frames
/// delivered into the fabric, until GOODBYE or EOF. Framing and packet
/// decode errors are counted (`net.decode_errors`) and end the stream —
/// after a framing error the byte offsets are unrecoverable.
fn reader_loop(mut conn: Conn, fabric: Arc<Fabric>, stats: Arc<TcpStats>) {
    let mut asm = Reassembler::new();
    let mut chunk = vec![0u8; 64 << 10];
    let mut saw_hello = false;
    loop {
        let n = match conn.read(&mut chunk) {
            Ok(0) => return, // EOF without GOODBYE: peer died; quiesce
            Ok(n) => n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return,
        };
        // sync: monotonic diagnostic counter
        stats.read_syscalls.fetch_add(1, Ordering::Relaxed);
        // sync: monotonic diagnostic counter
        stats.bytes_recv.fetch_add(n as u64, Ordering::Relaxed);
        asm.push(&chunk[..n]);
        loop {
            match asm.pop() {
                Ok(None) => break,
                Ok(Some(Frame::Hello { .. })) => {
                    if saw_hello {
                        fabric.note_decode_error(GdError::Internal(
                            "transport: duplicate HELLO".into(),
                        ));
                        return;
                    }
                    saw_hello = true;
                }
                Ok(Some(Frame::Goodbye)) => return,
                Ok(Some(Frame::Packet(body))) => match wire::decode_packet(&body) {
                    Ok(msgs) => {
                        // sync: monotonic diagnostic counter
                        stats.frames_recv.fetch_add(1, Ordering::Relaxed);
                        for m in msgs {
                            fabric.deliver(m);
                        }
                    }
                    Err(e) => fabric.note_decode_error(e),
                },
                Err(e) => {
                    fabric.note_decode_error(e);
                    return;
                }
            }
        }
    }
}

impl Transport for TcpTransport {
    fn name(&self) -> &'static str {
        match self.local_addr {
            PeerAddr::Tcp(_) => "tcp",
            PeerAddr::Unix(_) => "unix",
        }
    }

    /// Establish the full mesh: spawn the acceptor for inbound (receive)
    /// streams, dial every peer for outbound (send) streams, introduce
    /// ourselves with HELLO. Returns once all outbound streams are up;
    /// inbound streams finish handshaking on their reader threads.
    fn start(&self, fabric: Arc<Fabric>) {
        let _ = self.fabric.set(Arc::clone(&fabric));
        let n = self.cfg.peers.len();
        let local = self.cfg.local.as_usize();
        if n <= 1 {
            return;
        }
        // Acceptor: non-blocking accept polled with backoff until every
        // inbound peer has arrived (or shutdown begins). Each accepted
        // stream gets its own reader thread immediately, so a slow peer
        // can't head-of-line-block the others' handshakes.
        if let Some(listener) = self.listener.lock().take() {
            let closing = Arc::clone(&self.closing);
            let fabric2 = Arc::clone(&fabric);
            let stats = Arc::clone(&self.stats);
            let readers = Arc::clone(&self.threads);
            let expect = n - 1;
            let acceptor = std::thread::Builder::new()
                .name(format!("gd-tcp-accept-{local}"))
                .spawn(move || {
                    let mut accepted = 0usize;
                    // sync: shutdown flag — the acceptor only needs to stop
                    // eventually, Relaxed suffices
                    while accepted < expect && !closing.load(Ordering::Relaxed) {
                        match listener.accept() {
                            Ok(conn) => {
                                accepted += 1;
                                let fabric3 = Arc::clone(&fabric2);
                                let stats3 = Arc::clone(&stats);
                                let h = std::thread::Builder::new()
                                    .name(format!("gd-tcp-read-{local}"))
                                    .spawn(move || reader_loop(conn, fabric3, stats3))
                                    // Mesh construction precedes queries.
                                    .expect("spawn transport reader"); // lint: allow(hot-path-panics)
                                readers.lock().push(h);
                            }
                            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                                // lint: allow(hot-path-blocking) startup-only accept poll
                                std::thread::sleep(Duration::from_micros(200)); // lint: allow(sim-determinism) real-socket backend, never sim-reachable
                            }
                            Err(_) => break,
                        }
                    }
                })
                // Mesh construction precedes all queries.
                .expect("spawn transport acceptor"); // lint: allow(hot-path-panics)
            self.threads.lock().push(acceptor);
        }
        // Outbound: dial every peer, introduce ourselves with HELLO.
        let mut hello = Vec::with_capacity(16);
        encode_frame(&mut hello, FRAME_HELLO, &self.cfg.local.0.to_le_bytes());
        let peers = self.peers.lock().clone();
        let mut senders = self.senders.lock();
        for node in 0..n {
            if node == local {
                continue;
            }
            match self.dial(&peers[node]) {
                Ok(mut conn) => {
                    if conn.write_all(&hello).is_ok() {
                        let nbytes = hello.len() as u64;
                        // sync: monotonic diagnostic counter
                        self.stats.write_syscalls.fetch_add(1, Ordering::Relaxed);
                        // sync: monotonic diagnostic counter
                        self.stats.bytes_sent.fetch_add(nbytes, Ordering::Relaxed);
                        senders[node] = Some(conn);
                    }
                }
                Err(e) => {
                    // A peer that never comes up is surfaced through the
                    // decode-error diagnostic and the ledger watchdog; the
                    // lane behaves like a dead link.
                    fabric.note_decode_error(e);
                }
            }
        }
    }

    fn ship(&self, pkt: WirePacket) {
        let fabric = self
            .fabric
            .get()
            // start() precedes the egress pump by construction.
            .expect("transport started"); // lint: allow(hot-path-panics)
        let WirePacket {
            dest_node, msgs, ..
        } = pkt;
        // Frame layout is `u32 len | u8 kind | body`: reserve the header,
        // encode the packet body in place, then patch the length — one
        // buffer, one write_all per combined packet. That 1:1 packet-to-
        // syscall shape is what `transport_ab` measures against the
        // modeled per-packet cost.
        // lint: allow(hot-path-blocking) socket backend only — the DST
        // never constructs a TcpTransport, so no scheduler quantum can
        // reach this; the scratch mutex is per-transport and uncontended
        // (one egress pump ships at a time per node)
        let mut frame = self.scratch.lock();
        frame.clear();
        frame.extend_from_slice(&[0, 0, 0, 0, FRAME_PACKET]);
        let encode_res = wire::encode_packet(&mut frame, &msgs);
        // Recycle leased batch frames whether or not the encode succeeded.
        for m in msgs {
            if let WireMsg::Batch { payload, .. } = m {
                fabric.pool_put(payload);
            }
        }
        if let Err(e) = encode_res {
            fabric.note_decode_error(e);
            return;
        }
        let len = (frame.len() - 4) as u32;
        frame[..4].copy_from_slice(&len.to_le_bytes());
        // lint: allow(hot-path-blocking) socket backend only — unreachable
        // from the DST (see scratch lock above); held for one write_all
        let mut senders = self.senders.lock();
        let slot = &mut senders[dest_node.as_usize()];
        let Some(conn) = slot.as_mut() else {
            // sync: monotonic diagnostic counter
            self.stats.send_errors.fetch_add(1, Ordering::Relaxed);
            return;
        };
        match conn.write_all(&frame) {
            Ok(()) => {
                // sync: monotonic diagnostic counter
                self.stats.write_syscalls.fetch_add(1, Ordering::Relaxed);
                // sync: monotonic diagnostic counter
                self.stats.frames_sent.fetch_add(1, Ordering::Relaxed);
                let nbytes = frame.len() as u64;
                // sync: monotonic diagnostic counter
                self.stats.bytes_sent.fetch_add(nbytes, Ordering::Relaxed);
            }
            Err(_) => {
                // sync: monotonic diagnostic counter
                self.stats.send_errors.fetch_add(1, Ordering::Relaxed);
                *slot = None;
            }
        }
    }

    /// Drain-before-close: every packet flushed before shutdown has been
    /// `write_all`'d by the FIFO egress pump, so appending GOODBYE and
    /// closing the write half guarantees receivers see the full stream.
    fn end_of_stream(&self) {
        // sync: shutdown flag for the acceptor poll loop
        self.closing.store(true, Ordering::Relaxed);
        let mut goodbye = Vec::with_capacity(8);
        encode_frame(&mut goodbye, FRAME_GOODBYE, &[]);
        {
            let mut senders = self.senders.lock();
            for slot in senders.iter_mut() {
                if let Some(conn) = slot.as_mut() {
                    let _ = conn.write_all(&goodbye);
                    let _ = conn.flush();
                    // sync: monotonic diagnostic counter
                    self.stats.write_syscalls.fetch_add(1, Ordering::Relaxed);
                    conn.shutdown_write();
                }
                *slot = None;
            }
        }
        // Wait for peers' GOODBYEs: each reader exits when its peer closes.
        // Every node sends its own GOODBYE before joining, so the mesh
        // cannot deadlock here.
        loop {
            let Some(h) = self.threads.lock().pop() else {
                break;
            };
            let _ = h.join();
        }
        // Remove the Unix socket file we bound.
        if let PeerAddr::Unix(p) = &self.local_addr {
            let _ = std::fs::remove_file(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip_through_arbitrary_chops() {
        let mut stream = Vec::new();
        encode_frame(&mut stream, FRAME_HELLO, &7u32.to_le_bytes());
        encode_frame(&mut stream, FRAME_PACKET, b"abcdef");
        encode_frame(&mut stream, FRAME_PACKET, b"");
        encode_frame(&mut stream, FRAME_GOODBYE, &[]);
        for chop in [1usize, 2, 3, 5, 7, stream.len()] {
            let mut asm = Reassembler::new();
            let mut got = Vec::new();
            for chunk in stream.chunks(chop) {
                asm.push(chunk);
                while let Some(f) = asm.pop().unwrap() {
                    got.push(f);
                }
            }
            assert_eq!(
                got,
                vec![
                    Frame::Hello { node: NodeId(7) },
                    Frame::Packet(b"abcdef".to_vec()),
                    Frame::Packet(Vec::new()),
                    Frame::Goodbye,
                ],
                "chop={chop}"
            );
            assert_eq!(asm.pending(), 0);
        }
    }

    #[test]
    fn corrupt_length_prefix_is_an_error_not_a_panic() {
        let mut asm = Reassembler::new();
        asm.push(&[0, 0, 0, 0, 9]); // len = 0
        assert!(asm.pop().is_err());
        let mut asm = Reassembler::new();
        asm.push(&u32::MAX.to_le_bytes());
        asm.push(&[FRAME_PACKET]);
        assert!(asm.pop().is_err(), "oversized length rejected before alloc");
    }

    #[test]
    fn unknown_kind_and_malformed_bodies_are_errors() {
        let mut asm = Reassembler::new();
        let mut buf = Vec::new();
        encode_frame(&mut buf, 42, b"??");
        asm.push(&buf);
        assert!(asm.pop().is_err());

        let mut asm = Reassembler::new();
        let mut buf = Vec::new();
        encode_frame(&mut buf, FRAME_HELLO, b"xx"); // HELLO body must be 4 bytes
        asm.push(&buf);
        assert!(asm.pop().is_err());

        let mut asm = Reassembler::new();
        let mut buf = Vec::new();
        encode_frame(&mut buf, FRAME_GOODBYE, b"trailing");
        asm.push(&buf);
        assert!(asm.pop().is_err());
    }

    #[test]
    fn reassembler_compacts_consumed_prefix() {
        let mut asm = Reassembler::new();
        let mut frame = Vec::new();
        encode_frame(&mut frame, FRAME_PACKET, &vec![0xAA; 2000]);
        for _ in 0..10 {
            asm.push(&frame);
            assert!(matches!(asm.pop().unwrap(), Some(Frame::Packet(_))));
        }
        assert_eq!(asm.pending(), 0);
        assert!(
            asm.buf.len() < 3 * frame.len(),
            "buffer stays bounded across frames (len {})",
            asm.buf.len()
        );
    }

    #[test]
    fn peer_addr_parses_both_families() {
        assert_eq!(
            PeerAddr::parse("127.0.0.1:9000").unwrap(),
            PeerAddr::Tcp("127.0.0.1:9000".into())
        );
        assert_eq!(
            PeerAddr::parse("unix:/tmp/x.sock").unwrap(),
            PeerAddr::Unix(PathBuf::from("/tmp/x.sock"))
        );
        assert!(PeerAddr::parse("nonsense").is_err());
        assert!(PeerAddr::parse("unix:").is_err());
    }
}
