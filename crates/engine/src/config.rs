//! Engine configuration: cluster topology, I/O scheduler mode, progress
//! tracking options, and the simulated network cost model.

use std::time::Duration;

/// Which tiers of the I/O scheduler are active (§IV-B / Fig. 12 ablation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoMode {
    /// Baseline: every message is synchronously serialized and sent as its
    /// own wire packet.
    Sync,
    /// Tier 1 only (thread-level combining, "TLC"): workers batch messages
    /// per destination node, but the network thread forwards each worker
    /// packet separately.
    ThreadCombining,
    /// Both tiers ("TLC + NLC"): the node's network thread additionally
    /// combines queued packets per destination into one wire message.
    TwoTier,
    /// Both tiers with **adaptive** tier-1 flushing: instead of a single
    /// static `flush_threshold`, each (worker, destination node) lane keeps
    /// its own threshold, adjusted by a feedback loop over egress queue
    /// depth and observed buffer residency (Fig. 12's sweep as a policy).
    /// Lanes that sit idle past [`AdaptivePolicy::idle_flush`] are flushed
    /// on a deadline read from `common::time::now()`, so the policy is
    /// fully exercisable under the sim clock. Progress reports are
    /// piggybacked onto outgoing traverser batches when safe (Fig. 10/11).
    Adaptive,
}

/// Feedback-policy knobs for [`IoMode::Adaptive`].
///
/// Thresholds move multiplicatively (double / halve) between
/// `min_threshold` and `max_threshold`:
///
/// * egress queue deep (≥ `egress_depth_high` packets waiting) or buffer
///   residency above `residency_high` ⇒ the lane is bandwidth-bound, grow
///   the batch;
/// * a deadline-triggered flush or residency below `residency_low` ⇒ the
///   lane is latency-bound, shrink the batch.
///
/// All decisions are functions of the seeded sim clock and queue state
/// only, so a `(seed, config)` pair yields a bit-identical flush schedule
/// on every replay.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdaptivePolicy {
    /// Smallest per-lane flush threshold in bytes.
    pub min_threshold: usize,
    /// Largest per-lane flush threshold in bytes.
    pub max_threshold: usize,
    /// Buffer residency below this ⇒ traversers arrive fast; grow batches.
    pub residency_low: Duration,
    /// Buffer residency above this ⇒ the lane is stalling; shrink batches.
    pub residency_high: Duration,
    /// A lane holding buffered messages longer than this is flushed on a
    /// deadline regardless of fill level.
    pub idle_flush: Duration,
    /// Egress queue depth (packets) at which the lane is considered
    /// bandwidth-bound.
    pub egress_depth_high: usize,
}

impl Default for AdaptivePolicy {
    fn default() -> Self {
        AdaptivePolicy {
            min_threshold: 256,
            max_threshold: 64 * 1024,
            residency_low: Duration::from_micros(5),
            residency_high: Duration::from_micros(20),
            idle_flush: Duration::from_micros(30),
            egress_depth_high: 4,
        }
    }
}

/// Simulated network cost model.
///
/// Each wire operation to a remote node costs
/// `per_message_overhead + bytes / bandwidth` of sender CPU/NIC time (the
/// message-rate limit of §II-C), plus `propagation_delay` before delivery.
#[derive(Clone, Copy, Debug)]
pub struct NetConfig {
    /// Link bandwidth in gigabits per second (the paper's cluster: 200).
    pub bandwidth_gbps: f64,
    /// Fixed cost per wire message (syscalls, doorbells, packet rate).
    pub per_message_overhead: Duration,
    /// One-way propagation delay.
    pub propagation_delay: Duration,
}

impl NetConfig {
    /// The paper's modern cluster: 200 Gbps, ~1.5 µs/message, 10 µs RTT/2.
    pub fn modern() -> Self {
        NetConfig {
            bandwidth_gbps: 200.0,
            per_message_overhead: Duration::from_nanos(1_500),
            propagation_delay: Duration::from_micros(5),
        }
    }

    /// A legacy configuration for the Fig. 13 hardware study.
    pub fn legacy(bandwidth_gbps: f64) -> Self {
        NetConfig {
            bandwidth_gbps,
            per_message_overhead: Duration::from_micros(4),
            propagation_delay: Duration::from_micros(20),
        }
    }

    /// Sender-side cost of transmitting `bytes`.
    pub fn send_cost(&self, bytes: usize) -> Duration {
        let bytes_per_sec = self.bandwidth_gbps * 1e9 / 8.0;
        let tx = Duration::from_secs_f64(bytes as f64 / bytes_per_sec);
        self.per_message_overhead + tx
    }
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig::modern()
    }
}

/// Debug-build fault injection, used by the invariant-checker tests to
/// prove that an injected bug is caught with a diagnostic instead of a
/// hang. All knobs are inert in release builds (the checkers they feed are
/// compiled out) and default to off.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultInjection {
    /// Drop the nth (1-based) remote traverser batch at ingress instead of
    /// delivering it — simulates a lost network message.
    pub drop_batch_nth: Option<u64>,
    /// Corrupt the finished weight of the nth (1-based) interpreter outcome
    /// on each worker — simulates a weight-conservation bug in a traversal
    /// step.
    pub leak_weight_nth: Option<u64>,
    /// Seed-derived probabilistic fault schedule for the deterministic
    /// simulator (see [`SimFaults`]).
    pub sim: SimFaults,
}

/// Seed-derived fault schedule for the deterministic simulator
/// (`crate::sim`). Every probability is expressed in **per mille**
/// (0..=1000) and rolled from an RNG derived from the engine seed, so one
/// `(seed, SimFaults)` pair names the exact same fault sequence on every
/// replay. Outside the simulator these knobs are inert, except
/// [`SimFaults::progress_side_channel`], which workers consult directly
/// (it re-creates a fixed ordering bug for regression tests).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimFaults {
    /// Chance a remote traverser batch is dropped at ingress.
    pub drop_permille: u16,
    /// Chance a remote traverser batch is delivered twice at ingress.
    pub dup_permille: u16,
    /// Chance a set of simultaneously-due packets is delivered in reverse
    /// arrival order.
    pub reorder_permille: u16,
    /// Chance an arriving packet is held for an extra per-link delay spike.
    pub delay_permille: u16,
    /// Magnitude of a delay spike.
    pub delay_spike: Duration,
    /// Chance a scheduled worker quantum stalls instead of running.
    pub stall_permille: u16,
    /// How long a stalled worker stays off the runnable set (virtual time).
    pub stall: Duration,
    /// Re-introduce the pre-fix `shared_state_khop` drain order: coalesced
    /// progress reports bypass the row FIFO and can overtake result rows
    /// still buffered in the sender's outbox. For regression tests only.
    pub progress_side_channel: bool,
}

impl SimFaults {
    /// A moderate lossy schedule (drops + duplicates + delays) for fault
    /// sweeps.
    pub fn lossy() -> Self {
        SimFaults {
            drop_permille: 40,
            dup_permille: 40,
            reorder_permille: 100,
            delay_permille: 100,
            delay_spike: Duration::from_micros(200),
            stall_permille: 20,
            stall: Duration::from_micros(500),
            progress_side_channel: false,
        }
    }

    /// Does this schedule inject message loss or duplication (outcomes the
    /// conservation checkers must flag)?
    pub fn is_lossy(&self) -> bool {
        self.drop_permille > 0 || self.dup_permille > 0
    }

    /// Does this schedule inject anything at all?
    pub fn is_quiet(&self) -> bool {
        *self == SimFaults::default()
    }
}

/// Full engine configuration.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Simulated cluster nodes.
    pub nodes: u32,
    /// Workers (= partitions) per node.
    pub workers_per_node: u32,
    /// Tier-1 flush threshold in bytes (8 KB in the paper's experiments).
    pub flush_threshold: usize,
    /// Weight coalescing (§IV-A). When disabled, every finished traverser
    /// weight is reported to the tracker as its own message — the "simple
    /// progress tracking" that costs up to 4.46× latency (§I).
    pub weight_coalescing: bool,
    /// I/O scheduler mode (Fig. 12).
    pub io_mode: IoMode,
    /// Feedback policy for [`IoMode::Adaptive`] (inert in other modes).
    pub adaptive: AdaptivePolicy,
    /// Network cost model (Fig. 13).
    pub net: NetConfig,
    /// Master RNG seed (worker streams are derived from it).
    pub seed: u64,
    /// Max traversers a worker executes between inbox polls.
    pub worker_batch: usize,
    /// Per-query deadline; queries exceeding it fail with `QueryTimeout`.
    pub query_timeout: Duration,
    /// Liveness watchdog window (debug builds): a query that reports no
    /// progress for this long *and* whose message ledger shows undelivered
    /// traversers is aborted immediately with a diagnostic dump instead of
    /// idling out `query_timeout`.
    pub watchdog_stall: Duration,
    /// Debug-build fault injection (see [`FaultInjection`]).
    pub fault: FaultInjection,
    /// Extra scheduling cost charged per executed traverser per plan
    /// operator. Zero for GraphDance; the dataflow baselines (GAIA-sim,
    /// Banyan-sim) set it to model per-worker operator-instance polling,
    /// whose aggregate cost grows linearly with the worker count (§V-B).
    pub sched_overhead_per_op: Duration,
    /// Arena execution path: local traversers live in a generation-indexed
    /// slab with interned copy-on-write locals and execute as SoA frontier
    /// batches. Schedule- and wire-identical to the cloned path (the
    /// differential proptests pin this); disable to run the per-traverser
    /// `clone()` layout for A/B benchmarking.
    pub arena_frontier: bool,
}

impl EngineConfig {
    /// The default experimental setup: `nodes × workers` with all paper
    /// optimizations enabled.
    pub fn new(nodes: u32, workers_per_node: u32) -> Self {
        EngineConfig {
            nodes,
            workers_per_node,
            flush_threshold: 8 * 1024,
            weight_coalescing: true,
            io_mode: IoMode::TwoTier,
            adaptive: AdaptivePolicy::default(),
            net: NetConfig::modern(),
            seed: 0xDA7A_BA5E,
            worker_batch: 64,
            query_timeout: Duration::from_secs(60),
            watchdog_stall: Duration::from_secs(10),
            fault: FaultInjection::default(),
            sched_overhead_per_op: Duration::ZERO,
            arena_frontier: true,
        }
    }

    /// Total partitions.
    pub fn num_parts(&self) -> u32 {
        self.nodes * self.workers_per_node
    }

    /// Builder-style: disable weight coalescing.
    pub fn without_weight_coalescing(mut self) -> Self {
        self.weight_coalescing = false;
        self
    }

    /// Builder-style: set the I/O mode.
    pub fn with_io_mode(mut self, mode: IoMode) -> Self {
        self.io_mode = mode;
        self
    }

    /// Builder-style: set the network cost model.
    pub fn with_net(mut self, net: NetConfig) -> Self {
        self.net = net;
        self
    }

    /// Builder-style: set the adaptive-flush policy (implies nothing about
    /// `io_mode`; combine with `with_io_mode(IoMode::Adaptive)`).
    pub fn with_adaptive(mut self, policy: AdaptivePolicy) -> Self {
        self.adaptive = policy;
        self
    }

    /// Builder-style: set the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style: choose the worker execution layout (arena/SoA vs
    /// per-traverser clones).
    pub fn with_arena_frontier(mut self, on: bool) -> Self {
        self.arena_frontier = on;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_cost_scales_with_bytes_and_bandwidth() {
        let fast = NetConfig::modern();
        let slow = NetConfig::legacy(10.0);
        assert!(fast.send_cost(1 << 20) < slow.send_cost(1 << 20));
        assert!(fast.send_cost(100) < fast.send_cost(1 << 20));
        // Small messages are dominated by per-message overhead.
        let small = fast.send_cost(64);
        assert!(small >= fast.per_message_overhead);
        assert!(small < fast.per_message_overhead * 2);
    }

    #[test]
    fn config_builders() {
        let c = EngineConfig::new(2, 4)
            .without_weight_coalescing()
            .with_io_mode(IoMode::Sync)
            .with_seed(7);
        assert_eq!(c.num_parts(), 8);
        assert!(!c.weight_coalescing);
        assert_eq!(c.io_mode, IoMode::Sync);
        assert_eq!(c.seed, 7);
    }

    #[test]
    fn adaptive_policy_defaults_are_ordered() {
        let p = AdaptivePolicy::default();
        assert!(p.min_threshold <= p.max_threshold);
        assert!(p.residency_low < p.residency_high);
        assert!(p.residency_high <= p.idle_flush);
        let c = EngineConfig::new(1, 1)
            .with_io_mode(IoMode::Adaptive)
            .with_adaptive(AdaptivePolicy {
                min_threshold: 64,
                ..p
            });
        assert_eq!(c.io_mode, IoMode::Adaptive);
        assert_eq!(c.adaptive.min_threshold, 64);
    }
}
