//! The query coordinator.
//!
//! Runs on node 0. Handles submissions, starts stage sources, tracks scope
//! completion via the weight mechanism, gathers aggregation partials at
//! stage boundaries (Fig. 6), seeds inter-stage `PrevRows` sources, and
//! responds to clients. The coordinator is also the central progress
//! tracker of §IV-A — workers talk to it through the same network fabric
//! as all other traffic, so tracker load is measured realistically.

use std::time::{Duration, Instant};

use graphdance_common::time::now;

use crossbeam::channel::{Receiver, Sender};
use rand::rngs::SmallRng;

use graphdance_common::{
    FxHashMap, GdError, GdResult, NodeId, PartId, QueryId, Value, VertexId, WorkerId,
};
use graphdance_pstm::{AggState, Interpreter, Row, Weight};
use graphdance_query::plan::{Plan, SourceSpec};
use graphdance_storage::{Graph, Timestamp};

use crate::config::EngineConfig;
use crate::engine::QueryResult;
use crate::invariants::MsgLedger;
use crate::messages::{migration_qid, CoordMsg, MigPhase, QueryCtx, WorkerMsg};
use crate::net::{Fabric, Outbox};
use crate::progress::ProgressTracker;
use crate::rebalance::{plan_moves, RebalanceConfig};

use std::sync::Arc;

/// Simulated bookkeeping cost of one progress report at the centralized
/// tracker (queue handling + map update on a contended path).
const TRACKER_COST_PER_REPORT: Duration = Duration::from_nanos(900);

struct QueryState {
    ctx: Arc<QueryCtx>,
    stage: u16,
    steps_executed: u64,
    rows: Vec<Row>,
    partials: Vec<(PartId, Option<Box<AggState>>)>,
    gathering: bool,
    prev_rows: Vec<Row>,
    reply: Sender<GdResult<QueryResult>>,
    submitted_at: Instant,
    deadline: Instant,
    /// Last time any worker message arrived for this query (drives the
    /// liveness watchdog).
    last_activity: Instant,
    /// Set by `CoordMsg::Cancel`: the drain protocol is running. Workers
    /// are purging and refunding this query's weight; when the tracker
    /// lands on `Weight::ROOT` the query finishes with `QueryCancelled`
    /// instead of advancing stages (DESIGN.md §13).
    cancelled: bool,
}

/// Where one in-flight vertex migration stands (DESIGN.md §14). Every
/// transition is driven by a worker `MigrateAck`; dropped or duplicated
/// control messages therefore stall or re-fire a single migration — they
/// can never corrupt routing, because the routing table only changes at
/// the single `commit_move` call in `Installed`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MigState {
    /// `MigrateFreeze` sent to the source; waiting for the destination's
    /// `Installed` ack (the source ships the segment directly).
    Freezing,
    /// Routing committed; `MigrateCommit` sent to arm the source's
    /// forwarding stub, waiting for `Committed`.
    Committing,
    /// Stub armed. Retire is gated: every active query must be pinned at
    /// or above `commit_version` before the frozen source copy may go.
    AwaitRetire,
    /// `MigrateRetire` sent; waiting for `Retired`.
    Retiring,
}

/// One in-flight vertex migration, keyed by its `seq`.
struct Migration {
    v: VertexId,
    from: PartId,
    to: PartId,
    state: MigState,
    /// Routing version this move committed at (0 until `Committing`).
    commit_version: u64,
}

/// A destructured `CoordMsg::Submit` (bundled so `submit` keeps a short
/// signature).
struct Submission {
    query: QueryId,
    plan: Plan,
    params: Vec<Value>,
    read_ts: Option<Timestamp>,
    reply: Sender<GdResult<QueryResult>>,
    submitted_at: Instant,
    deadline: Option<Instant>,
}

/// The coordinator thread state.
pub struct Coordinator {
    graph: Graph,
    fabric: Arc<Fabric>,
    inbox: Receiver<CoordMsg>,
    outbox: Outbox,
    tracker: ProgressTracker,
    queries: FxHashMap<QueryId, QueryState>,
    rng: SmallRng,
    timeout: Duration,
    watchdog_stall: Duration,
    /// Whether this process's [`MsgLedger`] sees the whole cluster (see
    /// [`Fabric::ledger_is_global`]). In a multi-process cluster a send is
    /// recorded in the sender's ledger and its delivery in the receiver's,
    /// so per-process `sent == delivered` never holds mid-query — the
    /// watchdog and the quiesce check must stand down, and cross-node
    /// conservation is instead asserted by summing ledgers across
    /// processes (the transport conformance suite does exactly that).
    ledger_global: bool,
    /// In-flight vertex migrations keyed by sequence number.
    migrations: FxHashMap<u64, Migration>,
    next_mig_seq: u64,
    migs_done: u64,
    /// Dedicated stream for planner tie-breaking (never map iteration
    /// order), so rebalance plans replay bit-identically per seed.
    planner_rng: SmallRng,
    /// Stage-transition instrumentation (span sink + seeding spans).
    #[cfg(feature = "obs")]
    obs: crate::obs::CoordObs,
}

impl Coordinator {
    /// Build the coordinator (call from the engine).
    pub fn new(
        graph: Graph,
        fabric: &Arc<Fabric>,
        inbox: Receiver<CoordMsg>,
        config: &EngineConfig,
    ) -> Self {
        Coordinator {
            graph,
            fabric: Arc::clone(fabric),
            inbox,
            outbox: fabric.outbox(NodeId(0)),
            tracker: ProgressTracker::new(),
            queries: FxHashMap::default(),
            rng: graphdance_common::rng::derive(config.seed, u64::MAX),
            timeout: config.query_timeout,
            watchdog_stall: config.watchdog_stall,
            ledger_global: fabric.ledger_is_global(),
            migrations: FxHashMap::default(),
            next_mig_seq: 0,
            migs_done: 0,
            planner_rng: graphdance_common::rng::derive(
                config.seed,
                crate::rebalance::REBALANCE_STREAM,
            ),
            #[cfg(feature = "obs")]
            obs: crate::obs::CoordObs::new(fabric),
        }
    }

    /// Main loop; returns on `Shutdown`.
    pub fn run(mut self) {
        loop {
            match self.pump() {
                crate::worker::PumpStatus::Stopped => return,
                crate::worker::PumpStatus::Worked | crate::worker::PumpStatus::Idle => {}
            }
            // Block (bounded by the timer tick) for the next message; the
            // next pump drains it along with anything else queued.
            match self.inbox.recv_timeout(Duration::from_millis(20)) {
                Ok(CoordMsg::Shutdown) => {
                    self.fail_all(GdError::EngineClosed);
                    return;
                }
                Ok(msg) => self.handle(msg),
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
            }
        }
    }

    /// One non-blocking scheduling quantum: drain every queued message and
    /// enforce timers. Used directly by the deterministic simulator and by
    /// [`Coordinator::run`].
    pub fn pump(&mut self) -> crate::worker::PumpStatus {
        let mut worked = false;
        loop {
            match self.inbox.try_recv() {
                Ok(CoordMsg::Shutdown) => {
                    self.fail_all(GdError::EngineClosed);
                    return crate::worker::PumpStatus::Stopped;
                }
                Ok(msg) => {
                    self.handle(msg);
                    worked = true;
                }
                Err(_) => break,
            }
        }
        worked |= self.enforce_deadlines() > 0;
        worked |= self.advance_migrations() > 0;
        if worked {
            crate::worker::PumpStatus::Worked
        } else {
            crate::worker::PumpStatus::Idle
        }
    }

    /// Is a quantum worth scheduling — queued messages, or a timer that has
    /// already expired under the current clock?
    pub fn has_work(&self) -> bool {
        !self.inbox.is_empty() || self.next_timer().is_some_and(|t| t <= now())
    }

    /// The earliest instant at which a timer fires: a query deadline, or —
    /// when the conservation ledger shows an imbalance — the liveness
    /// watchdog for a stalled query. The simulator advances its virtual
    /// clock here when the cluster is otherwise blocked.
    pub fn next_timer(&self) -> Option<Instant> {
        let mut next: Option<Instant> = None;
        let mut fold = |t: Instant| match next {
            Some(cur) if cur <= t => {}
            _ => next = Some(t),
        };
        for (q, s) in &self.queries {
            fold(s.deadline);
            if MsgLedger::ENABLED
                && self.ledger_global
                && self.fabric.invariants().has_imbalance(*q)
            {
                fold(s.last_activity + self.watchdog_stall);
            }
        }
        next
    }

    fn handle(&mut self, msg: CoordMsg) {
        match msg {
            CoordMsg::Submit {
                query,
                plan,
                params,
                read_ts,
                reply,
                submitted_at,
                deadline,
            } => {
                self.submit(Submission {
                    query,
                    plan,
                    params,
                    read_ts,
                    reply,
                    submitted_at,
                    deadline,
                });
            }
            CoordMsg::Cancel { query } => {
                self.cancel(query);
            }
            CoordMsg::Progress {
                query,
                weight,
                steps,
            } => {
                // The central tracker pays a per-report handling cost; with
                // weight coalescing the report count is tiny, without it
                // this serialized work is the bottleneck the paper measures
                // (§IV-A, Fig. 10/11).
                crate::net::charge(TRACKER_COST_PER_REPORT);
                if let Some(s) = self.queries.get_mut(&query) {
                    s.steps_executed += steps;
                    s.last_activity = now();
                }
                if self.tracker.report(query, weight) {
                    self.stage_complete(query);
                }
            }
            CoordMsg::Rows { query, rows } => {
                if let Some(s) = self.queries.get_mut(&query) {
                    s.last_activity = now();
                    // A cancelled query's rows are discarded — its client
                    // already stopped caring — but the report still counts
                    // as activity for the watchdog.
                    if !s.cancelled {
                        s.rows.extend(rows);
                    }
                }
            }
            CoordMsg::AggPartial { query, part, state } => {
                if let Some(s) = self.queries.get_mut(&query) {
                    s.last_activity = now();
                }
                self.agg_partial(query, part, state);
            }
            CoordMsg::WorkerError { query, error } => {
                self.finish(query, Err(error));
            }
            CoordMsg::Rebalance { moves } => {
                self.rebalance(moves);
            }
            CoordMsg::MigrateAck { seq, v, phase } => {
                self.migrate_ack(seq, v, phase);
            }
            CoordMsg::BspStepDone { .. } | CoordMsg::BspParked { .. } => {
                // BSP control traffic is only meaningful to the BSP driver.
            }
            CoordMsg::Tick => {}
            // The run() loop exits on Shutdown before dispatching here.
            CoordMsg::Shutdown => unreachable!("handled in run()"), // lint: allow(hot-path-panics)
        }
    }

    fn submit(&mut self, sub: Submission) {
        let Submission {
            query,
            plan,
            params,
            read_ts,
            reply,
            submitted_at,
            deadline,
        } = sub;
        if let Err(e) = plan.validate() {
            let _ = reply.send(Err(GdError::InvalidProgram(e)));
            return;
        }
        if params.len() < plan.num_params {
            let _ = reply.send(Err(GdError::InvalidProgram(format!(
                "plan needs {} params, got {}",
                plan.num_params,
                params.len()
            ))));
            return;
        }
        if self.queries.contains_key(&query) {
            let _ = reply.send(Err(GdError::Internal(format!(
                "duplicate query id {query:?} submitted"
            ))));
            return;
        }
        let ctx = Arc::new(QueryCtx {
            query,
            plan,
            params,
            read_ts: read_ts.unwrap_or(graphdance_storage::TS_LIVE - 1),
            routing_version: self.graph.routing_version(),
        });
        let deadline = deadline.unwrap_or(submitted_at + self.timeout);
        self.queries.insert(
            query,
            QueryState {
                ctx: Arc::clone(&ctx),
                stage: 0,
                steps_executed: 0,
                rows: Vec::new(),
                partials: Vec::new(),
                gathering: false,
                prev_rows: Vec::new(),
                reply,
                submitted_at,
                deadline,
                last_activity: now(),
                cancelled: false,
            },
        );
        // Register the query at every worker before any traverser can reach
        // them (workers also stash early arrivals defensively).
        for w in 0..self.fabric.partitioner().num_parts() {
            let _sz = self.outbox.send_ctrl_worker(
                WorkerId(w),
                WorkerMsg::QueryBegin {
                    ctx: Arc::clone(&ctx),
                    stage: 0,
                },
            );
            #[cfg(feature = "obs")]
            self.obs.ctrl_sent(query, 0, _sz as u64);
        }
        self.start_stage(query);
    }

    /// Begin the cancellation drain protocol for `query` (no-op if the
    /// query already finished or was never seen). Workers purge the
    /// query's queued traversers and refund their weight as ordinary
    /// `Progress`; when the tracker's wrapping sum lands on `Weight::ROOT`
    /// the query finishes with `QueryCancelled` — through the same quiesce
    /// check as a successful result, so a leaky teardown is an
    /// `InvariantViolation`, never silence.
    fn cancel(&mut self, query: QueryId) {
        let Some(state) = self.queries.get_mut(&query) else {
            return;
        };
        if state.cancelled {
            return;
        }
        state.cancelled = true;
        state.last_activity = now();
        #[cfg(feature = "obs")]
        let stage_no = state.stage;
        if state.gathering {
            // The stage scope already terminated (no weight in flight);
            // the query was only waiting on aggregation partials, which
            // travel on the control lane. Finish immediately — late
            // partials for a forgotten query are ignored.
            self.finish(query, Err(GdError::QueryCancelled(query)));
            return;
        }
        for w in 0..self.fabric.partitioner().num_parts() {
            let _sz = self
                .outbox
                .send_ctrl_worker(WorkerId(w), WorkerMsg::CancelQuery { query });
            #[cfg(feature = "obs")]
            self.obs.ctrl_sent(query, stage_no, _sz as u64);
        }
        self.outbox.flush_all();
    }

    /// Launch the current stage's sources for `query`.
    fn start_stage(&mut self, query: QueryId) {
        let Some(state) = self.queries.get_mut(&query) else {
            return;
        };
        let stage_idx = state.stage as usize;
        let ctx = Arc::clone(&state.ctx);
        let prev_rows = std::mem::take(&mut state.prev_rows);
        state.gathering = false;
        state.partials.clear();
        self.tracker.begin_stage(query);
        #[cfg(feature = "obs")]
        self.obs.stage_begin(query, stage_idx as u16);

        let stage = &ctx.plan.stages[stage_idx];
        let parts: Vec<PartId> = self.fabric.partitioner().parts().collect();
        let pipe_weights = Weight::ROOT.split(stage.pipelines.len(), &mut self.rng);
        let mut immediate = Weight::ZERO;
        for (pi, pw) in pipe_weights.into_iter().enumerate() {
            match &stage.pipelines[pi].source {
                SourceSpec::Param { param } => {
                    match ctx.params.get(*param).and_then(Value::as_vertex) {
                        Some(v) => {
                            // Route by the query's pinned routing version,
                            // not the raw hash — `v` may have migrated.
                            let owner = self.graph.worker_of_at(v, ctx.routing_version);
                            let _sz = self.outbox.send_ctrl_worker(
                                owner,
                                WorkerMsg::StartSource {
                                    query,
                                    pipeline: pi as u16,
                                    weight: pw,
                                },
                            );
                            #[cfg(feature = "obs")]
                            self.obs.ctrl_sent(query, stage_idx as u16, _sz as u64);
                        }
                        None => {
                            self.finish(
                                query,
                                Err(GdError::InvalidProgram(format!(
                                    "param {param} is not a vertex id"
                                ))),
                            );
                            return;
                        }
                    }
                }
                SourceSpec::IndexLookup { .. } | SourceSpec::ScanLabel { .. } => {
                    let shares = pw.split(parts.len(), &mut self.rng);
                    for (p, w) in parts.iter().zip(shares) {
                        let _sz = self.outbox.send_ctrl_worker(
                            self.fabric.partitioner().worker_of_part(*p),
                            WorkerMsg::StartSource {
                                query,
                                pipeline: pi as u16,
                                weight: w,
                            },
                        );
                        #[cfg(feature = "obs")]
                        self.obs.ctrl_sent(query, stage_idx as u16, _sz as u64);
                    }
                }
                SourceSpec::PrevRows { .. } => {
                    let interp = Interpreter {
                        graph: &self.graph,
                        plan: &ctx.plan,
                        stage_idx,
                        query,
                        params: &ctx.params,
                        read_ts: ctx.read_ts,
                        routing_version: ctx.routing_version,
                    };
                    match interp.seed_prev_rows(pi as u16, &prev_rows, pw, &mut self.rng) {
                        Ok(out) => {
                            for (dest, t) in out.spawned {
                                let w = self.fabric.partitioner().worker_of_part(dest);
                                #[cfg(feature = "obs")]
                                self.obs.seed_sent(
                                    query,
                                    stage_idx as u16,
                                    w.0,
                                    t.approx_bytes() as u64,
                                );
                                self.outbox.send_traverser(w, t);
                            }
                            immediate.absorb(out.finished);
                        }
                        Err(e) => {
                            self.finish(query, Err(e));
                            return;
                        }
                    }
                }
            }
        }
        self.outbox.flush_all();
        if immediate != Weight::ZERO && self.tracker.report(query, immediate) {
            self.stage_complete(query);
        }
    }

    /// The running stage's scope just terminated: gather aggregates or wrap
    /// up the stage's rows.
    fn stage_complete(&mut self, query: QueryId) {
        let Some(state) = self.queries.get_mut(&query) else {
            return;
        };
        if state.cancelled {
            // The drain finished: every outstanding weight share (executed
            // or refunded) has reported back. Tear down instead of
            // advancing.
            self.finish(query, Err(GdError::QueryCancelled(query)));
            return;
        }
        let stage = &state.ctx.plan.stages[state.stage as usize];
        if stage.agg.is_some() {
            #[cfg(feature = "obs")]
            let stage_no = state.stage;
            state.gathering = true;
            for w in 0..self.fabric.partitioner().num_parts() {
                let _sz = self
                    .outbox
                    .send_ctrl_worker(WorkerId(w), WorkerMsg::GatherAgg { query });
                #[cfg(feature = "obs")]
                self.obs.ctrl_sent(query, stage_no, _sz as u64);
            }
        } else {
            let rows = std::mem::take(&mut state.rows);
            self.advance_stage(query, rows);
        }
    }

    fn agg_partial(&mut self, query: QueryId, part: PartId, state: Option<Box<AggState>>) {
        let num_parts = self.fabric.partitioner().num_parts() as usize;
        let Some(qs) = self.queries.get_mut(&query) else {
            return;
        };
        if !qs.gathering {
            return;
        }
        qs.partials.push((part, state));
        if qs.partials.len() < num_parts {
            return;
        }
        // All partials in: merge and finalize.
        let stage = &qs.ctx.plan.stages[qs.stage as usize];
        let Some(agg) = stage.agg.as_ref() else {
            // `gathering` set on a non-aggregating stage is an engine bug;
            // fail the query with a diagnostic rather than the coordinator
            // thread (which would wedge every in-flight query).
            let stage_no = qs.stage;
            self.finish(
                query,
                Err(GdError::Internal(format!(
                    "gather phase reached on non-aggregating stage {stage_no}"
                ))),
            );
            return;
        };
        let func = &agg.func;
        let mut merged: Option<AggState> = None;
        let partials = std::mem::take(&mut qs.partials);
        for (_, p) in partials {
            if let Some(p) = p {
                match &mut merged {
                    None => merged = Some(*p),
                    Some(m) => {
                        if let Err(e) = m.merge(func, *p) {
                            self.finish(query, Err(e));
                            return;
                        }
                    }
                }
            }
        }
        let rows = merged.unwrap_or_else(|| AggState::new(func)).finalize(func);
        self.advance_stage(query, rows);
    }

    /// The stage produced `rows`; either respond or start the next stage.
    fn advance_stage(&mut self, query: QueryId, rows: Vec<Row>) {
        let Some(state) = self.queries.get_mut(&query) else {
            return;
        };
        let last = state.stage as usize + 1 >= state.ctx.plan.stages.len();
        #[cfg(feature = "obs")]
        self.obs.stage_end(query, state.stage);
        if last {
            // Via `now()`, not `Instant::elapsed`, so simulated runs report
            // virtual latency.
            let latency = now().saturating_duration_since(state.submitted_at);
            let steps_executed = state.steps_executed;
            self.finish(
                query,
                Ok(QueryResult {
                    query,
                    rows,
                    latency,
                    steps_executed,
                }),
            );
        } else {
            state.stage += 1;
            state.prev_rows = rows;
            state.rows.clear();
            let next = state.stage;
            for w in 0..self.fabric.partitioner().num_parts() {
                let _sz = self
                    .outbox
                    .send_ctrl_worker(WorkerId(w), WorkerMsg::StageBegin { query, stage: next });
                #[cfg(feature = "obs")]
                self.obs.ctrl_sent(query, next, _sz as u64);
            }
            self.start_stage(query);
        }
    }

    /// Respond to the client and release all query state. Successful
    /// results first pass the message-conservation quiesce check (debug
    /// builds): at completion every sent traverser must have been
    /// delivered, else the result is replaced by the ledger's diagnostic.
    fn finish(&mut self, query: QueryId, result: GdResult<QueryResult>) {
        let result = match result {
            // A cancelled teardown must quiesce as cleanly as a successful
            // completion: the drain refunded every in-flight weight share,
            // so every sent traverser message must also have been
            // delivered. A leak here is an engine bug, not a cancellation.
            // Only meaningful when this process's ledger sees both sides
            // of every send (see the `ledger_global` field docs).
            Ok(_) | Err(GdError::QueryCancelled(_)) if self.ledger_global => {
                match self.fabric.invariants().check_quiesced(query) {
                    Ok(()) => result,
                    Err(diag) => Err(GdError::InvariantViolation(diag)),
                }
            }
            other => other,
        };
        // Capture ledger counts before `forget` wipes them; workers seal the
        // trace when their QueryEnd (broadcast below) arrives.
        #[cfg(feature = "obs")]
        {
            if let Some(state) = self.queries.get(&query) {
                let counts = self.fabric.invariants().counts(query);
                let total_ns = now()
                    .saturating_duration_since(state.submitted_at)
                    .as_nanos() as u64;
                self.obs
                    .query_done(query, total_ns, counts.sent, counts.delivered);
            } else {
                self.obs.forget(query);
            }
        }
        if let Some(state) = self.queries.remove(&query) {
            let _ = state.reply.send(result);
        }
        self.tracker.finish_query(query);
        self.fabric.invariants().forget(query);
        for w in 0..self.fabric.partitioner().num_parts() {
            self.outbox
                .send_ctrl_worker(WorkerId(w), WorkerMsg::QueryEnd { query });
        }
        // Query completion raises the minimum pinned routing version, which
        // can unblock retire-gated migrations.
        self.advance_migrations();
    }

    /// Start the requested vertex migrations. An empty `moves` list asks
    /// the coordinator to plan from the fabric's hot-vertex sketch (the
    /// query-driven refinement path); an explicit list is the sim/test
    /// path. Vertices already home or already mid-migration are skipped.
    fn rebalance(&mut self, moves: Vec<(VertexId, PartId)>) {
        let moves = if moves.is_empty() {
            let hot = self.fabric.hot_tracker().drain();
            plan_moves(
                hot,
                &self.graph,
                &RebalanceConfig::default(),
                &mut self.planner_rng,
            )
        } else {
            moves
        };
        let mut sent = false;
        for (v, to) in moves {
            let from = self.graph.part_of(v);
            if from == to || self.migrations.values().any(|m| m.v == v) {
                continue;
            }
            let seq = self.next_mig_seq;
            self.next_mig_seq += 1;
            self.migrations.insert(
                seq,
                Migration {
                    v,
                    from,
                    to,
                    state: MigState::Freezing,
                    commit_version: 0,
                },
            );
            let src = self.fabric.partitioner().worker_of_part(from);
            self.outbox
                .send_ctrl_worker(src, WorkerMsg::MigrateFreeze { seq, v, to });
            sent = true;
        }
        if sent {
            self.outbox.flush_all();
        }
    }

    /// Drive one migration's state machine from a worker ack. Duplicated
    /// acks (fault-injected control-lane dup) are absorbed by the phase
    /// guards; acks for unknown `seq` (already completed) are ignored.
    fn migrate_ack(&mut self, seq: u64, v: VertexId, phase: MigPhase) {
        let Some(m) = self.migrations.get_mut(&seq) else {
            return;
        };
        debug_assert_eq!(m.v, v, "migration {seq} acked with foreign vertex");
        match (phase, m.state) {
            (MigPhase::Installed, MigState::Freezing) => {
                // The copy is physically at the destination; flip routing.
                // New queries pin the bumped version and route to `to`;
                // already-pinned queries keep resolving the source, whose
                // frozen copy survives until retire.
                let version = self.graph.commit_move(m.v, m.to);
                m.commit_version = version;
                m.state = MigState::Committing;
                let src = self.fabric.partitioner().worker_of_part(m.from);
                let (v, to) = (m.v, m.to);
                self.outbox.send_ctrl_worker(
                    src,
                    WorkerMsg::MigrateCommit {
                        seq,
                        v,
                        to,
                        version,
                    },
                );
                self.outbox.flush_all();
            }
            (MigPhase::Committed, MigState::Committing) => {
                m.state = MigState::AwaitRetire;
                self.advance_migrations();
            }
            (MigPhase::Retired, MigState::Retiring) => {
                self.migrations.remove(&seq);
                self.migs_done += 1;
                self.fabric.invariants().forget(migration_qid(seq));
                #[cfg(feature = "obs")]
                {
                    self.obs.migration_done();
                    if self.migrations.is_empty() {
                        // Rebalance round drained: publish the new cut.
                        self.obs.set_cut_edges(self.graph.edge_cut().0);
                    }
                }
            }
            (MigPhase::Failed, MigState::Freezing) => {
                // Freeze or install failed before any routing change: the
                // migration simply never happened.
                self.migrations.remove(&seq);
                self.fabric.invariants().forget(migration_qid(seq));
            }
            // Everything else is a duplicate or stale ack.
            _ => {}
        }
    }

    /// Send `MigrateRetire` for every committed migration whose old
    /// routing can no longer be observed: every active query must be
    /// pinned at or above the move's commit version (queries submitted
    /// before the commit may still route traversers to the frozen source
    /// copy). Returns how many retires were sent.
    fn advance_migrations(&mut self) -> usize {
        if self.migrations.is_empty() {
            return 0;
        }
        let min_pinned = self.queries.values().map(|s| s.ctx.routing_version).min();
        let mut ready: Vec<u64> = self
            .migrations
            .iter()
            .filter(|(_, m)| {
                m.state == MigState::AwaitRetire && min_pinned.is_none_or(|p| p >= m.commit_version)
            })
            .map(|(seq, _)| *seq)
            .collect();
        ready.sort_unstable();
        let fired = ready.len();
        for seq in ready {
            let Some(m) = self.migrations.get_mut(&seq) else {
                continue;
            };
            m.state = MigState::Retiring;
            let src = self.fabric.partitioner().worker_of_part(m.from);
            let v = m.v;
            self.outbox
                .send_ctrl_worker(src, WorkerMsg::MigrateRetire { seq, v });
        }
        if fired > 0 {
            self.outbox.flush_all();
        }
        fired
    }

    /// Number of migrations still in flight (sim quiesce checks).
    pub fn pending_migrations(&self) -> usize {
        self.migrations.len()
    }

    /// Number of migrations fully retired since startup.
    pub fn migrations_done(&self) -> u64 {
        self.migs_done
    }

    /// Deadline enforcement plus the liveness watchdog: a query that made
    /// no progress for `watchdog_stall` *and* shows undelivered traverser
    /// messages in the conservation ledger will never complete — fail it
    /// immediately with the ledger dump instead of hanging until the
    /// deadline. Returns how many queries were failed.
    fn enforce_deadlines(&mut self) -> usize {
        let now = now();
        let mut timed_out = Vec::new();
        let mut stalled = Vec::new();
        for (q, s) in &self.queries {
            if now >= s.deadline {
                timed_out.push(*q);
            } else if MsgLedger::ENABLED
                && self.ledger_global
                && now.duration_since(s.last_activity) >= self.watchdog_stall
                && self.fabric.invariants().has_imbalance(*q)
            {
                stalled.push(*q);
            }
        }
        let fired = timed_out.len() + stalled.len();
        for q in timed_out {
            self.finish(q, Err(GdError::QueryTimeout(q)));
        }
        for q in stalled {
            let diag = self.fabric.invariants().dump(
                q,
                "liveness watchdog fired: query stalled with undelivered traverser message(s)",
            );
            self.finish(q, Err(GdError::InvariantViolation(diag)));
        }
        fired
    }

    fn fail_all(&mut self, err: GdError) {
        let qids: Vec<QueryId> = self.queries.keys().copied().collect();
        for q in qids {
            if let Some(state) = self.queries.remove(&q) {
                let _ = state.reply.send(Err(err.clone()));
            }
            self.tracker.finish_query(q);
            self.fabric.invariants().forget(q);
            #[cfg(feature = "obs")]
            self.obs.forget(q);
        }
    }
}
