//! The public GraphDance engine API.

use std::time::Duration;

use graphdance_common::time::now;

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};

use graphdance_common::{GdError, GdResult, QueryId, Value};
use graphdance_pstm::Row;
use graphdance_query::plan::Plan;
use graphdance_storage::{Graph, Timestamp};
use graphdance_txn::manager::LctCache;
use graphdance_txn::TxnSystem;

use crate::config::EngineConfig;
use crate::coordinator::Coordinator;
use crate::messages::{CoordMsg, WorkerMsg};
use crate::net::{Fabric, NetStatsSnapshot};
use crate::worker::spawn_workers;

use std::sync::Arc;

/// The result of one query.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// The engine-assigned query id.
    pub query: QueryId,
    /// Result rows (aggregation output, or raw emissions for plain stages).
    pub rows: Vec<Row>,
    /// End-to-end latency from submission to completion.
    pub latency: Duration,
    /// Total plan steps executed across all workers (the Table I
    /// accessed-data measure). Zero when the engine does not report it.
    pub steps_executed: u64,
}

/// A pending query; `wait()` blocks for the result.
pub struct QueryHandle {
    id: QueryId,
    rx: Receiver<GdResult<QueryResult>>,
}

impl QueryHandle {
    /// Build a handle around a reply channel (the multi-process
    /// [`crate::node::NodeRuntime`] mints its own handles).
    pub(crate) fn internal_new(id: QueryId, rx: Receiver<GdResult<QueryResult>>) -> QueryHandle {
        QueryHandle { id, rx }
    }

    /// The pre-assigned query id (pass to [`GraphDance::cancel`]).
    pub fn id(&self) -> QueryId {
        self.id
    }

    /// Block until the query completes.
    pub fn wait(self) -> GdResult<QueryResult> {
        self.rx.recv().unwrap_or(Err(GdError::EngineClosed))
    }

    /// Block up to `timeout`.
    pub fn wait_timeout(self, timeout: Duration) -> GdResult<QueryResult> {
        match self.rx.recv_timeout(timeout) {
            Ok(r) => r,
            Err(_) => Err(GdError::EngineClosed),
        }
    }

    /// Non-blocking poll: `Some(result)` once the query completed.
    pub fn try_result(&self) -> Option<GdResult<QueryResult>> {
        self.rx.try_recv().ok()
    }
}

/// A running GraphDance cluster (simulated in-process; see DESIGN.md).
///
/// ```
/// # use graphdance_engine::{EngineConfig, GraphDance};
/// # use graphdance_common::{Partitioner, Value, VertexId};
/// # use graphdance_storage::GraphBuilder;
/// # use graphdance_query::QueryBuilder;
/// let mut b = GraphBuilder::new(Partitioner::new(2, 2));
/// let person = b.schema_mut().register_vertex_label("Person");
/// let knows = b.schema_mut().register_edge_label("knows");
/// for i in 0..4 {
///     b.add_vertex(VertexId(i), person, vec![]).unwrap();
/// }
/// b.add_edge(VertexId(0), knows, VertexId(1), vec![]).unwrap();
/// let graph = b.finish();
///
/// let engine = GraphDance::start(graph.clone(), EngineConfig::new(2, 2));
/// let mut q = QueryBuilder::new(graph.schema());
/// q.v_param(0).out("knows");
/// let plan = q.compile().unwrap();
/// let rows = engine.query(&plan, vec![Value::Vertex(VertexId(0))]).unwrap();
/// assert_eq!(rows, vec![vec![Value::Vertex(VertexId(1))]]);
/// engine.shutdown();
/// ```
pub struct GraphDance {
    graph: Graph,
    txn: Arc<TxnSystem>,
    fabric: Arc<Fabric>,
    coord_tx: Sender<CoordMsg>,
    worker_tx: Vec<Sender<WorkerMsg>>,
    threads: Vec<std::thread::JoinHandle<()>>,
    config: EngineConfig,
    /// Per-node broadcast LCT caches (§IV-C): read-only queries may take
    /// their snapshot from any node without consulting the central
    /// transaction manager. Refreshed by the broadcaster thread.
    lct_caches: Arc<Vec<LctCache>>,
    lct_stop: Arc<std::sync::atomic::AtomicBool>,
    /// Client-side query-id allocator. Ids are assigned *before* the
    /// `Submit` message is sent so a caller can cancel a query it has not
    /// yet seen complete (the service front-end depends on this).
    // sync: monotonic id counter shared by submitting threads; fetch_add
    // uniqueness is the only property used, no other data rides on it
    // lint: allow(adhoc-counter) query-id allocator, not a metric
    next_qid: std::sync::atomic::AtomicU64,
}

impl GraphDance {
    /// Start the cluster: spawns `nodes × workers_per_node` worker threads,
    /// per-node network threads, and the coordinator.
    ///
    /// # Panics
    /// Panics if the graph was built for a different topology than
    /// `config` describes.
    pub fn start(graph: Graph, config: EngineConfig) -> GraphDance {
        assert_eq!(
            graph.partitioner().num_parts(),
            config.num_parts(),
            "graph partition count must match the engine topology"
        );
        let p = config.num_parts() as usize;
        let mut worker_tx = Vec::with_capacity(p);
        let mut worker_rx = Vec::with_capacity(p);
        for _ in 0..p {
            let (tx, rx) = unbounded();
            worker_tx.push(tx);
            worker_rx.push(rx);
        }
        let (coord_tx, coord_rx) = unbounded();
        let (fabric, mut threads) = Fabric::new(&config, worker_tx.clone(), coord_tx.clone());
        threads.extend(spawn_workers(&graph, &fabric, worker_rx, &config));
        let coordinator = Coordinator::new(graph.clone(), &fabric, coord_rx, &config);
        threads.push(
            std::thread::Builder::new()
                .name("gd-coordinator".into())
                .spawn(move || coordinator.run())
                // Engine startup, before any query: a failed spawn here is
                // an unusable process, not a wedged query.
                .expect("spawn coordinator"), // lint: allow(hot-path-panics)
        );
        let txn = Arc::new(TxnSystem::new(graph.clone()));
        // LCT broadcast (§IV-C): a background broadcaster periodically
        // publishes the manager's LCT to every node's cache.
        let lct_caches: Arc<Vec<LctCache>> =
            Arc::new((0..config.nodes).map(|_| LctCache::new()).collect());
        let lct_stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        {
            let caches = Arc::clone(&lct_caches);
            let stop = Arc::clone(&lct_stop);
            let mgr = Arc::clone(txn.manager());
            threads.push(
                std::thread::Builder::new()
                    .name("gd-lct-broadcast".into())
                    .spawn(move || {
                        // sync: stop flag — eventual visibility suffices,
                        // no data is published through it
                        while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                            for c in caches.iter() {
                                c.refresh(&mgr);
                            }
                            // lint: allow(sim-determinism) broadcaster thread exists in threaded mode only
                            std::thread::sleep(Duration::from_micros(500));
                        }
                    })
                    // Startup-time, same as the coordinator spawn above.
                    .expect("spawn lct broadcaster"), // lint: allow(hot-path-panics)
            );
        }
        GraphDance {
            graph,
            txn,
            fabric,
            coord_tx,
            worker_tx,
            threads,
            config,
            lct_caches,
            lct_stop,
            // lint: allow(adhoc-counter) query-id allocator, not a metric
            next_qid: std::sync::atomic::AtomicU64::new(1),
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Transactional update interface (MV2PL, §IV-C).
    pub fn txn(&self) -> &Arc<TxnSystem> {
        &self.txn
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Submit a query asynchronously at the current LCT snapshot (read
    /// authoritatively from the transaction manager; guarantees
    /// read-your-writes for a client that just committed).
    pub fn submit(&self, plan: &Plan, params: Vec<Value>) -> QueryHandle {
        self.submit_at(plan, params, self.txn.read_ts().max(1))
    }

    /// Submit using node `node`'s broadcast LCT cache instead of the
    /// central manager (§IV-C's load-shedding path). The snapshot may lag
    /// the manager by up to one broadcast interval but is always a
    /// consistent committed state.
    pub fn submit_cached(&self, node: u32, plan: &Plan, params: Vec<Value>) -> QueryHandle {
        let ts = self.lct_caches[node as usize % self.lct_caches.len()]
            .read_ts()
            .max(1);
        self.submit_at(plan, params, ts)
    }

    /// Submit at an explicit snapshot timestamp.
    pub fn submit_at(&self, plan: &Plan, params: Vec<Value>, read_ts: Timestamp) -> QueryHandle {
        self.submit_with_deadline(plan, params, read_ts, None)
    }

    /// Submit at an explicit snapshot timestamp with a per-query deadline
    /// override (`None` = the engine-wide `query_timeout` default).
    pub fn submit_with_deadline(
        &self,
        plan: &Plan,
        params: Vec<Value>,
        read_ts: Timestamp,
        deadline: Option<std::time::Instant>,
    ) -> QueryHandle {
        let id = QueryId(
            self.next_qid
                // sync: uniqueness only; see field docs
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        );
        let (reply, rx) = bounded(1);
        let msg = CoordMsg::Submit {
            query: id,
            plan: plan.clone(),
            params,
            read_ts: Some(read_ts),
            reply,
            submitted_at: now(),
            deadline,
        };
        if self.coord_tx.send(msg).is_err() {
            // Coordinator gone: synthesize the failure.
            let (tx, rx2) = bounded(1);
            let _ = tx.send(Err(GdError::EngineClosed));
            return QueryHandle { id, rx: rx2 };
        }
        QueryHandle { id, rx }
    }

    /// Request prompt cancellation of an in-flight query. Asynchronous and
    /// idempotent: the query's handle resolves to `QueryCancelled` once
    /// the drain protocol completes (or to its actual result if the query
    /// finished first).
    pub fn cancel(&self, query: QueryId) {
        let _ = self.coord_tx.send(CoordMsg::Cancel { query });
    }

    /// Ask the coordinator to migrate the given vertices to new home
    /// partitions while queries keep running (an empty list requests a
    /// plan from the fabric's hot-vertex sketch — enable it first with
    /// `fabric().hot_tracker().set_enabled(true)`). Asynchronous: each
    /// migration runs the freeze → install → commit → retire protocol of
    /// DESIGN.md §14; in-flight queries keep their pinned routing.
    pub fn rebalance(&self, moves: Vec<(graphdance_common::VertexId, graphdance_common::PartId)>) {
        let _ = self.coord_tx.send(CoordMsg::Rebalance { moves });
    }

    /// Submit and wait; returns just the rows.
    pub fn query(&self, plan: &Plan, params: Vec<Value>) -> GdResult<Vec<Row>> {
        Ok(self.submit(plan, params).wait()?.rows)
    }

    /// Submit and wait; returns the full result (rows + latency).
    pub fn query_timed(&self, plan: &Plan, params: Vec<Value>) -> GdResult<QueryResult> {
        self.submit(plan, params).wait()
    }

    /// Snapshot the network counters.
    pub fn net_stats(&self) -> NetStatsSnapshot {
        self.fabric.stats().snapshot()
    }

    /// The network fabric (counters, conservation ledger, hot-vertex
    /// sketch).
    pub fn fabric(&self) -> &Arc<Fabric> {
        &self.fabric
    }

    /// Merged point-in-time snapshot of every engine metric, including the
    /// storage layer's TEL scan-length distribution. Export with
    /// [`graphdance_obs::MetricsSnapshot::to_json`] or
    /// [`graphdance_obs::MetricsSnapshot::to_prometheus`].
    #[cfg(feature = "obs")]
    pub fn metrics(&self) -> graphdance_obs::MetricsSnapshot {
        use graphdance_obs::{Metric, MetricKind, MetricValue};
        let mut snap = self.fabric.obs().registry().snapshot();
        snap.metrics.push(Metric {
            name: "storage.tel_scan_len".into(),
            kind: MetricKind::Histogram,
            value: MetricValue::Hist(self.graph.tel_scan_hist()),
        });
        snap
    }

    /// Submit, wait, and return the result together with the reassembled
    /// per-stage [`graphdance_obs::QueryTrace`]. The trace is `None` only
    /// if reassembly does not complete within a short grace period (all
    /// participants seal right at query end, so in practice it is ready by
    /// the time the result reply arrives, or within microseconds after).
    #[cfg(feature = "obs")]
    pub fn query_traced(
        &self,
        plan: &Plan,
        params: Vec<Value>,
    ) -> GdResult<(QueryResult, Option<graphdance_obs::QueryTrace>)> {
        let result = self.submit(plan, params).wait()?;
        let sink = self.fabric.obs().sink();
        let deadline = now() + Duration::from_secs(2);
        loop {
            if let Some(trace) = sink.take(result.query.0) {
                return Ok((result, Some(trace)));
            }
            if now() >= deadline {
                return Ok((result, None));
            }
            // lint: allow(sim-determinism) trace-sink wait on the threaded engine; SimCluster has its own query path
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    /// Stop all threads. In-flight queries fail with `EngineClosed`.
    pub fn shutdown(mut self) {
        self.lct_stop
            // sync: stop flag, joined below — the join is the ordering edge
            .store(true, std::sync::atomic::Ordering::Relaxed);
        let _ = self.coord_tx.send(CoordMsg::Shutdown);
        for tx in &self.worker_tx {
            let _ = tx.send(WorkerMsg::Shutdown);
        }
        self.fabric.shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for GraphDance {
    fn drop(&mut self) {
        // Best-effort: detach threads if `shutdown` was not called.
        self.lct_stop
            // sync: stop flag — eventual visibility suffices on this path
            .store(true, std::sync::atomic::Ordering::Relaxed);
        let _ = self.coord_tx.send(CoordMsg::Shutdown);
        for tx in &self.worker_tx {
            let _ = tx.send(WorkerMsg::Shutdown);
        }
        self.fabric.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphdance_common::{Partitioner, VertexId};
    use graphdance_query::expr::Expr;
    use graphdance_query::plan::{AggFunc, Order};
    use graphdance_query::QueryBuilder;
    use graphdance_storage::GraphBuilder;

    /// A ring of `n` vertices: i -> (i + 1) % n, weights = i.
    fn ring(n: u64, parts: Partitioner) -> Graph {
        let mut b = GraphBuilder::new(parts);
        let person = b.schema_mut().register_vertex_label("Person");
        let knows = b.schema_mut().register_edge_label("knows");
        let weight = b.schema_mut().register_prop("weight");
        for i in 0..n {
            b.add_vertex(VertexId(i), person, vec![(weight, Value::Int(i as i64))])
                .unwrap();
        }
        for i in 0..n {
            b.add_edge(VertexId(i), knows, VertexId((i + 1) % n), vec![])
                .unwrap();
        }
        b.finish()
    }

    fn khop_plan(graph: &Graph, k: i64) -> Plan {
        let mut b = QueryBuilder::new(graph.schema());
        b.v_param(0);
        let c = b.alloc_slot();
        b.repeat(1, k, c, |r| {
            r.out("knows");
        });
        b.dedup();
        b.compile().unwrap()
    }

    #[test]
    fn one_hop_on_cluster() {
        let g = ring(16, Partitioner::new(2, 2));
        let engine = GraphDance::start(g.clone(), EngineConfig::new(2, 2));
        let plan = khop_plan(&g, 1);
        let rows = engine
            .query(&plan, vec![Value::Vertex(VertexId(3))])
            .unwrap();
        assert_eq!(rows, vec![vec![Value::Vertex(VertexId(4))]]);
        engine.shutdown();
    }

    #[test]
    fn multi_hop_reaches_ring_neighbourhood() {
        let g = ring(32, Partitioner::new(2, 4));
        let engine = GraphDance::start(g.clone(), EngineConfig::new(2, 4));
        let plan = khop_plan(&g, 4);
        let mut rows = engine
            .query(&plan, vec![Value::Vertex(VertexId(0))])
            .unwrap();
        rows.sort_by(|a, b| a[0].cmp_total(&b[0]));
        let got: Vec<u64> = rows.iter().map(|r| r[0].as_vertex().unwrap().0).collect();
        assert_eq!(got, vec![1, 2, 3, 4]);
        engine.shutdown();
    }

    #[test]
    fn topk_aggregation_distributed() {
        let g = ring(64, Partitioner::new(2, 2));
        let engine = GraphDance::start(g.clone(), EngineConfig::new(2, 2));
        let w = g.schema().prop("weight").unwrap();
        let mut b = QueryBuilder::new(g.schema());
        b.v_param(0);
        let c = b.alloc_slot();
        b.repeat(1, 5, c, |r| {
            r.out("knows");
        });
        b.dedup();
        b.top_k(
            3,
            vec![(Expr::Prop(w), Order::Desc)],
            vec![Expr::VertexId, Expr::Prop(w)],
        );
        let plan = b.compile().unwrap();
        let rows = engine
            .query(&plan, vec![Value::Vertex(VertexId(10))])
            .unwrap();
        // 5-hop from 10 reaches 11..=15; top-3 by weight: 15, 14, 13.
        assert_eq!(
            rows,
            vec![
                vec![Value::Vertex(VertexId(15)), Value::Int(15)],
                vec![Value::Vertex(VertexId(14)), Value::Int(14)],
                vec![Value::Vertex(VertexId(13)), Value::Int(13)],
            ]
        );
        engine.shutdown();
    }

    #[test]
    fn count_aggregation_and_concurrent_queries() {
        let g = ring(40, Partitioner::new(2, 2));
        let engine = GraphDance::start(g.clone(), EngineConfig::new(2, 2));
        let mut b = QueryBuilder::new(g.schema());
        b.v_param(0);
        let c = b.alloc_slot();
        b.repeat(1, 3, c, |r| {
            r.out("knows");
        });
        b.count();
        let plan = b.compile().unwrap();
        let handles: Vec<QueryHandle> = (0..8)
            .map(|i| engine.submit(&plan, vec![Value::Vertex(VertexId(i * 4))]))
            .collect();
        for h in handles {
            let r = h.wait().unwrap();
            assert_eq!(r.rows, vec![vec![Value::Int(3)]]);
            assert!(r.latency > Duration::ZERO);
        }
        engine.shutdown();
    }

    #[test]
    fn scan_label_source_runs_on_all_partitions() {
        let g = ring(24, Partitioner::new(2, 2));
        let engine = GraphDance::start(g.clone(), EngineConfig::new(2, 2));
        let mut b = QueryBuilder::new(g.schema());
        b.v().has_label("Person").count();
        let plan = b.compile().unwrap();
        let rows = engine.query(&plan, vec![]).unwrap();
        assert_eq!(rows, vec![vec![Value::Int(24)]]);
        engine.shutdown();
    }

    #[test]
    fn index_lookup_query() {
        let g = ring(24, Partitioner::new(2, 2));
        let person = g.schema().vertex_label("Person").unwrap();
        let w = g.schema().prop("weight").unwrap();
        g.build_prop_index(person, w);
        let engine = GraphDance::start(g.clone(), EngineConfig::new(2, 2));
        let mut b = QueryBuilder::new(g.schema());
        b.v()
            .has_label("Person")
            .has("weight", graphdance_query::CmpOp::Eq, Expr::Param(0))
            .out("knows");
        let plan = b.compile().unwrap();
        let rows = engine.query(&plan, vec![Value::Int(7)]).unwrap();
        assert_eq!(rows, vec![vec![Value::Vertex(VertexId(8))]]);
        engine.shutdown();
    }

    #[test]
    fn multi_stage_query() {
        use graphdance_query::plan::{AggSpec, Pipeline, PlanStep, SourceSpec, Stage};
        use graphdance_storage::Direction;
        let g = ring(16, Partitioner::new(2, 2));
        let knows = g.schema().edge_label("knows").unwrap();
        let w = g.schema().prop("weight").unwrap();
        // Stage 1: top-2 out-neighbours of $0 by weight (ring: just the
        // successor). Stage 2: expand again from those and count.
        let plan = Plan {
            stages: vec![
                Stage {
                    pipelines: vec![Pipeline {
                        source: SourceSpec::Param { param: 0 },
                        steps: vec![PlanStep::Expand {
                            dir: Direction::Out,
                            label: knows,
                            edge_loads: vec![],
                        }],
                    }],
                    joins: vec![],
                    output: vec![],
                    agg: Some(AggSpec {
                        func: AggFunc::TopK {
                            k: 2,
                            sort: vec![(Expr::Prop(w), Order::Desc)],
                            output: vec![Expr::VertexId],
                            distinct: vec![],
                        },
                    }),
                    num_slots: 1,
                },
                Stage {
                    pipelines: vec![Pipeline {
                        source: SourceSpec::PrevRows {
                            vertex_col: 0,
                            seed: vec![],
                        },
                        steps: vec![PlanStep::Expand {
                            dir: Direction::Out,
                            label: knows,
                            edge_loads: vec![],
                        }],
                    }],
                    joins: vec![],
                    output: vec![Expr::VertexId],
                    agg: None,
                    num_slots: 1,
                },
            ],
            num_params: 1,
        };
        let engine = GraphDance::start(g.clone(), EngineConfig::new(2, 2));
        let rows = engine
            .query(&plan, vec![Value::Vertex(VertexId(5))])
            .unwrap();
        // Stage 1 yields {6}; stage 2 expands 6 -> {7}.
        assert_eq!(rows, vec![vec![Value::Vertex(VertexId(7))]]);
        engine.shutdown();
    }

    #[test]
    fn invalid_params_fail_fast() {
        let g = ring(8, Partitioner::new(1, 2));
        let engine = GraphDance::start(g.clone(), EngineConfig::new(1, 2));
        let plan = khop_plan(&g, 1);
        let err = engine.query(&plan, vec![]).unwrap_err();
        assert!(matches!(err, GdError::InvalidProgram(_)));
        let err = engine.query(&plan, vec![Value::Int(3)]).unwrap_err();
        assert!(matches!(err, GdError::InvalidProgram(_)));
        engine.shutdown();
    }

    #[test]
    fn missing_vertex_yields_empty() {
        let g = ring(8, Partitioner::new(1, 2));
        let engine = GraphDance::start(g.clone(), EngineConfig::new(1, 2));
        let plan = khop_plan(&g, 2);
        let rows = engine
            .query(&plan, vec![Value::Vertex(VertexId(999))])
            .unwrap();
        assert!(rows.is_empty());
        engine.shutdown();
    }

    #[test]
    fn snapshot_reads_with_updates() {
        let g = ring(8, Partitioner::new(1, 2));
        let engine = GraphDance::start(g.clone(), EngineConfig::new(1, 2));
        let knows = g.schema().edge_label("knows").unwrap();
        let plan = khop_plan(&g, 1);
        // Commit a new edge 0 -> 5.
        let mut tx = engine.txn().begin();
        tx.insert_edge(VertexId(0), knows, VertexId(5), vec![])
            .unwrap();
        let ts = tx.commit().unwrap();
        // At the new LCT, both neighbours are visible.
        let mut rows = engine
            .query(&plan, vec![Value::Vertex(VertexId(0))])
            .unwrap();
        rows.sort_by(|a, b| a[0].cmp_total(&b[0]));
        assert_eq!(rows.len(), 2);
        // A historical snapshot still sees only the ring edge.
        let rows = engine
            .submit_at(&plan, vec![Value::Vertex(VertexId(0))], ts - 1)
            .wait()
            .unwrap()
            .rows;
        assert_eq!(rows, vec![vec![Value::Vertex(VertexId(1))]]);
        engine.shutdown();
    }

    /// Acceptance: `--trace`-style tracing on a k-hop query emits a
    /// `QueryTrace` whose traverser-lane totals reconcile with the
    /// `MsgLedger` conservation counters, and the metrics snapshot covers
    /// worker + storage instrumentation.
    #[cfg(feature = "obs")]
    #[test]
    fn trace_and_metrics_cover_khop() {
        use crate::invariants::MsgLedger;
        let g = ring(32, Partitioner::new(2, 2));
        let engine = GraphDance::start(g.clone(), EngineConfig::new(2, 2));
        let plan = khop_plan(&g, 3);
        let (r, trace) = engine
            .query_traced(&plan, vec![Value::Vertex(VertexId(0))])
            .unwrap();
        assert_eq!(r.rows.len(), 3, "3-hop from 0 reaches 1..=3");
        let t = trace.expect("trace reassembled");
        assert_eq!(t.query, r.query.0);
        assert!(!t.stages.is_empty(), "at least one stage traced");
        assert!(
            t.stages.iter().map(|s| s.executed()).sum::<u64>() > 0,
            "traverser executions recorded"
        );
        if MsgLedger::ENABLED {
            assert_eq!(
                t.traverser_msgs(),
                t.ledger_sent,
                "trace traverser-lane totals reconcile with the ledger:\n{}",
                t.pretty()
            );
            assert_eq!(t.ledger_sent, t.ledger_delivered, "conservation");
        }
        let m = engine.metrics();
        assert!(m.scalar("worker.executed") > 0, "worker metrics flowed");
        assert!(m.scalar("net.control_msgs") > 0, "net metrics flowed");
        let scan = m.hist("storage.tel_scan_len").expect("tel histogram");
        assert!(scan.count() > 0, "TEL scans recorded");
        let prom = m.to_prometheus();
        assert!(prom.contains("worker_executed"), "{prom}");
        assert!(prom.contains("storage_tel_scan_len"), "{prom}");
        engine.shutdown();
    }

    #[test]
    fn net_stats_accumulate() {
        let g = ring(64, Partitioner::new(2, 2));
        let engine = GraphDance::start(g.clone(), EngineConfig::new(2, 2));
        let before = engine.net_stats();
        let plan = khop_plan(&g, 4);
        engine
            .query(&plan, vec![Value::Vertex(VertexId(0))])
            .unwrap();
        let after = engine.net_stats().since(&before);
        assert!(after.control_msgs > 0, "query begin/end control traffic");
        assert!(after.progress_msgs > 0, "progress reports flowed");
        engine.shutdown();
    }
}

#[cfg(test)]
mod lct_cache_tests {
    use super::*;
    use graphdance_common::{Partitioner, VertexId};
    use graphdance_query::QueryBuilder;
    use graphdance_storage::GraphBuilder;

    #[test]
    fn cached_snapshots_converge_to_committed_state() {
        let mut b = GraphBuilder::new(Partitioner::new(2, 2));
        let n = b.schema_mut().register_vertex_label("N");
        let e = b.schema_mut().register_edge_label("e");
        for i in 0..4u64 {
            b.add_vertex(VertexId(i), n, vec![]).unwrap();
        }
        let g = b.finish();
        let engine = GraphDance::start(g.clone(), EngineConfig::new(2, 2));
        let mut qb = QueryBuilder::new(g.schema());
        qb.v_param(0).out("e").count();
        let plan = qb.compile().unwrap();

        let mut tx = engine.txn().begin();
        tx.insert_edge(VertexId(0), e, VertexId(1), vec![]).unwrap();
        tx.commit().unwrap();

        // The broadcast cache lags by at most the broadcast interval; poll
        // until the cached snapshot observes the commit (bounded wait).
        let deadline = now() + Duration::from_secs(5);
        loop {
            let rows = engine
                .submit_cached(1, &plan, vec![Value::Vertex(VertexId(0))])
                .wait()
                .unwrap()
                .rows;
            if rows == vec![vec![Value::Int(1)]] {
                break;
            }
            assert!(
                now() < deadline,
                "broadcast cache never caught up: {rows:?}"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        // The authoritative path sees it immediately (read-your-writes).
        let rows = engine
            .query(&plan, vec![Value::Vertex(VertexId(0))])
            .unwrap();
        assert_eq!(rows, vec![vec![Value::Int(1)]]);
        engine.shutdown();
    }
}
