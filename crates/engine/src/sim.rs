//! Deterministic simulation mode (DST): the whole cluster on one thread.
//!
//! [`SimCluster`] builds the same workers, coordinator, and network fabric
//! as [`crate::engine::GraphDance`], but spawns **no threads**. Every
//! component becomes a cooperatively-scheduled actor driven through its
//! non-blocking `pump` quantum, a seeded RNG picks which runnable actor
//! goes next, and the thread's clock is frozen
//! ([`graphdance_common::time::sim`]) so propagation delays, query
//! deadlines, and the liveness watchdog are pure functions of the
//! simulation schedule. Consequences:
//!
//! * **Reproducibility** — the same `(graph, config, query, seed)` tuple
//!   produces a bit-identical event trace and result, run after run. Any
//!   interleaving bug a seed finds replays forever.
//! * **Schedule exploration** — sweeping seeds sweeps actor interleavings,
//!   covering orderings a wall-clock run would need luck to hit.
//! * **Fault schedules** — [`SimFaults`](crate::config::SimFaults) rolls
//!   batch drops, duplicates, packet reorderings, delay spikes, and worker
//!   stalls from a second seed-derived stream, so a fault scenario is named
//!   by `(seed, SimFaults)` alone.
//!
//! The harness crate (`graphdance-sim`) layers oracle differential
//! checking and repro minimization on top.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use rand::rngs::SmallRng;
use rand::Rng;

use graphdance_common::time::{now, sim as vclock};
use graphdance_common::{fxhash, GdError, GdResult, PartId, Value, WorkerId};
use graphdance_pstm::Row;
use graphdance_query::plan::Plan;
use graphdance_storage::{Graph, Timestamp};

use crate::config::{EngineConfig, SimFaults};
use crate::coordinator::Coordinator;
use crate::engine::QueryResult;
use crate::messages::CoordMsg;
use crate::net::{EgressPump, Fabric, IngressEvent, NetChannels, WireMsg};
use crate::worker::{PumpStatus, Worker};

/// RNG stream ids for the simulator's own streams, far away from the
/// worker streams (`0..num_parts`) and the coordinator stream (`u64::MAX`).
/// `FAULT_STREAM` is `pub(crate)` because the network fabric derives its
/// `drop_batch_nth` sequencing RNG from the same stream id, so net-level
/// fault ordering is named by the seed alone (no ad-hoc atomics).
const SCHED_STREAM: u64 = u64::MAX - 1;
pub(crate) const FAULT_STREAM: u64 = u64::MAX - 2;

/// Hard cap on stored trace events; the fingerprint and total keep
/// covering every event past the cap, so trace comparison stays exact
/// while memory stays bounded.
const TRACE_CAP: usize = 1 << 17;

/// An actor the scheduler can run for one quantum.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimActor {
    /// Worker `i` (one graph partition).
    Worker(u32),
    /// The coordinator / progress tracker.
    Coordinator,
    /// Node `n`'s tier-2 egress pump.
    Egress(u32),
    /// Node `n`'s ingress (delivery) pump.
    Ingress(u32),
}

/// One entry in the deterministic event trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimEventKind {
    /// An actor ran one quantum.
    Run(SimActor),
    /// A worker's quantum was stolen by an injected stall.
    Stall(u32),
    /// Nothing was runnable; the virtual clock jumped to the next timer.
    AdvanceClock,
    /// An injected fault fired.
    DropBatch,
    DupBatch,
    Reorder,
    DelaySpike,
    /// A migration control message was dropped / duplicated (the lossy
    /// faults also cover the migration protocol's control plane).
    DropMigCtrl,
    DupMigCtrl,
}

impl SimEventKind {
    /// Stable integer encoding, mixed into the trace fingerprint.
    fn code(self) -> u64 {
        match self {
            SimEventKind::Run(SimActor::Worker(i)) => (1 << 32) | i as u64,
            SimEventKind::Run(SimActor::Coordinator) => 2 << 32,
            SimEventKind::Run(SimActor::Egress(i)) => (3 << 32) | i as u64,
            SimEventKind::Run(SimActor::Ingress(i)) => (4 << 32) | i as u64,
            SimEventKind::Stall(i) => (5 << 32) | i as u64,
            SimEventKind::AdvanceClock => 6 << 32,
            SimEventKind::DropBatch => 7 << 32,
            SimEventKind::DupBatch => 8 << 32,
            SimEventKind::Reorder => 9 << 32,
            SimEventKind::DelaySpike => 10 << 32,
            SimEventKind::DropMigCtrl => 11 << 32,
            SimEventKind::DupMigCtrl => 12 << 32,
        }
    }
}

/// A trace event: what happened, at which virtual nanosecond.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimEvent {
    /// Virtual time of the event (nanoseconds since the freeze).
    pub at_ns: u64,
    /// What happened.
    pub kind: SimEventKind,
}

/// The deterministic event trace of one simulation: the scheduling
/// decisions and injected faults in order, plus a running fingerprint.
/// Two runs are the same execution iff their traces are `==` (the
/// fingerprint covers events beyond the storage cap).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SimTrace {
    events: Vec<SimEvent>,
    total: u64,
    fingerprint: u64,
}

impl SimTrace {
    fn record(&mut self, kind: SimEventKind) {
        let at_ns = vclock::now_nanos();
        self.fingerprint = fxhash::hash_u64(self.fingerprint ^ kind.code() ^ at_ns.rotate_left(17));
        self.total += 1;
        if self.events.len() < TRACE_CAP {
            self.events.push(SimEvent { at_ns, kind });
        }
    }

    /// Stored events (capped at an internal limit; see [`SimTrace::total`]).
    pub fn events(&self) -> &[SimEvent] {
        &self.events
    }

    /// Total events recorded, including any beyond the storage cap.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Order-sensitive hash over every event (including capped ones).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }
}

/// How many of each injected fault actually fired during a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounts {
    pub drops: u64,
    pub dups: u64,
    pub reorders: u64,
    pub delay_spikes: u64,
    pub stalls: u64,
}

impl FaultCounts {
    /// Did any lossy fault (drop or duplicate) fire?
    pub fn lossy(&self) -> bool {
        self.drops > 0 || self.dups > 0
    }
}

/// What one [`SimCluster::step`] call did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimStep {
    /// An actor ran (or stalled).
    Ran,
    /// Nothing was runnable; the clock advanced to the next timer.
    AdvancedClock,
    /// Nothing is runnable and no timer is pending: the cluster is fully
    /// quiescent.
    Quiescent,
}

/// A pending query inside the simulation. The result is pulled by
/// [`SimCluster::run`]; there is no blocking `wait` because nothing makes
/// progress unless the simulation is stepped.
pub struct SimHandle {
    id: graphdance_common::QueryId,
    rx: Receiver<GdResult<QueryResult>>,
}

impl SimHandle {
    /// The pre-assigned query id (pass to [`SimCluster::cancel`]).
    pub fn id(&self) -> graphdance_common::QueryId {
        self.id
    }

    /// The result, if the simulation has produced it.
    pub fn try_result(&self) -> Option<GdResult<QueryResult>> {
        self.rx.try_recv().ok()
    }
}

/// A packet sitting in a simulated ingress queue until its virtual
/// delivery time.
struct PendingPacket {
    at: Instant,
    /// Arrival order, for stable FIFO among same-instant packets.
    seq: u64,
    msgs: Vec<WireMsg>,
}

impl PartialEq for PendingPacket {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for PendingPacket {}
impl PartialOrd for PendingPacket {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingPacket {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at
            .cmp(&other.at)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

/// One node's ingress, simulated: buffered packets ordered by virtual
/// delivery time.
struct IngressSim {
    rx: Receiver<IngressEvent>,
    pending: BinaryHeap<Reverse<PendingPacket>>,
    seq: u64,
}

impl IngressSim {
    /// Is there anything to pull in or deliver right now?
    fn runnable(&self, now: Instant) -> bool {
        !self.rx.is_empty() || self.pending.peek().is_some_and(|p| p.0.at <= now)
    }

    /// Earliest future delivery instant, if any.
    fn next_due(&self) -> Option<Instant> {
        self.pending.peek().map(|p| p.0.at)
    }
}

/// The deterministically-simulated cluster. See the module docs.
pub struct SimCluster {
    fabric: Arc<Fabric>,
    coord_tx: Sender<CoordMsg>,
    workers: Vec<Worker>,
    coordinator: Coordinator,
    egress: Vec<EgressPump>,
    ingress: Vec<IngressSim>,
    /// Scheduling decisions (which runnable actor goes next).
    sched_rng: SmallRng,
    /// Fault-schedule decisions (drop/dup/reorder/delay/stall rolls).
    fault_rng: SmallRng,
    faults: SimFaults,
    counts: FaultCounts,
    /// Per-worker injected-stall expiry (virtual time).
    stalled_until: Vec<Option<Instant>>,
    trace: SimTrace,
    steps: u64,
    max_steps: u64,
    /// Pre-assigned query ids (single-threaded, so a plain counter).
    next_qid: u64,
    /// Unfreezes the thread's clock when the cluster drops. Declared last:
    /// the actors above read `now()` during their own teardown.
    _clock: vclock::ClockGuard,
}

impl SimCluster {
    /// Build a simulated cluster. Freezes the calling thread's clock for
    /// the cluster's lifetime (panics if it is already frozen — one
    /// simulation per thread at a time).
    ///
    /// # Panics
    /// Panics if the graph was built for a different topology than
    /// `config` describes.
    pub fn new(graph: Graph, config: EngineConfig) -> SimCluster {
        assert_eq!(
            graph.partitioner().num_parts(),
            config.num_parts(),
            "graph partition count must match the engine topology"
        );
        let clock = vclock::freeze_clock();
        let p = config.num_parts() as usize;
        let mut worker_tx = Vec::with_capacity(p);
        let mut worker_rx = Vec::with_capacity(p);
        for _ in 0..p {
            let (tx, rx) = unbounded();
            worker_tx.push(tx);
            worker_rx.push(rx);
        }
        let (coord_tx, coord_rx) = unbounded();
        let (fabric, channels) = Fabric::new_sim(&config, worker_tx, coord_tx.clone());
        let NetChannels {
            egress_rx,
            ingress_tx,
            ingress_rx,
        } = channels;
        let workers: Vec<Worker> = worker_rx
            .into_iter()
            .enumerate()
            .map(|(i, rx)| Worker::new(WorkerId(i as u32), graph.clone(), &fabric, rx, &config))
            .collect();
        let coordinator = Coordinator::new(graph, &fabric, coord_rx, &config);
        let egress: Vec<EgressPump> = egress_rx
            .into_iter()
            .map(|rx| EgressPump::new(Arc::clone(&fabric), rx, ingress_tx.clone()))
            .collect();
        let ingress: Vec<IngressSim> = ingress_rx
            .into_iter()
            .map(|rx| IngressSim {
                rx,
                pending: BinaryHeap::new(),
                seq: 0,
            })
            .collect();
        SimCluster {
            fabric,
            coord_tx,
            stalled_until: vec![None; workers.len()],
            workers,
            coordinator,
            egress,
            ingress,
            sched_rng: graphdance_common::rng::derive(config.seed, SCHED_STREAM),
            fault_rng: graphdance_common::rng::derive(config.seed, FAULT_STREAM),
            faults: config.fault.sim,
            counts: FaultCounts::default(),
            trace: SimTrace::default(),
            steps: 0,
            max_steps: 20_000_000,
            next_qid: 1,
            _clock: clock,
        }
    }

    /// Override the step budget (default 20M quanta) for long sweeps.
    pub fn set_max_steps(&mut self, max: u64) {
        self.max_steps = max;
    }

    /// The network fabric (counters, conservation ledger).
    pub fn fabric(&self) -> &Arc<Fabric> {
        &self.fabric
    }

    /// The deterministic event trace so far.
    pub fn trace(&self) -> &SimTrace {
        &self.trace
    }

    /// How many injected faults actually fired so far.
    pub fn fault_counts(&self) -> FaultCounts {
        self.counts
    }

    /// Scheduling quanta executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Submit a query at snapshot `read_ts` (defaults to 1 — the
    /// simulated cluster takes a static graph, so the initial snapshot
    /// sees everything). Nothing runs until [`SimCluster::step`] or
    /// [`SimCluster::run`] is called.
    pub fn submit_at(&mut self, plan: &Plan, params: Vec<Value>, read_ts: Timestamp) -> SimHandle {
        self.submit_with_deadline(plan, params, read_ts, None)
    }

    /// Submit with a per-query deadline override on the virtual clock
    /// (`None` = the engine-wide `query_timeout` default).
    pub fn submit_with_deadline(
        &mut self,
        plan: &Plan,
        params: Vec<Value>,
        read_ts: Timestamp,
        deadline: Option<Instant>,
    ) -> SimHandle {
        let id = graphdance_common::QueryId(self.next_qid);
        self.next_qid += 1;
        let (reply, rx) = bounded(1);
        let msg = CoordMsg::Submit {
            query: id,
            plan: plan.clone(),
            params,
            read_ts: Some(read_ts),
            reply,
            submitted_at: now(),
            deadline,
        };
        // The coordinator owns the receiver for the cluster's lifetime.
        self.coord_tx.send(msg).expect("sim coordinator inbox open"); // lint: allow(hot-path-panics)
        SimHandle { id, rx }
    }

    /// Request cancellation of an in-flight query. Takes effect as the
    /// simulation steps; the handle resolves to `QueryCancelled` once the
    /// drain protocol completes (or to the actual result if the query
    /// beat the cancel to the finish line).
    pub fn cancel(&mut self, query: graphdance_common::QueryId) {
        self.coord_tx
            .send(CoordMsg::Cancel { query })
            .expect("sim coordinator inbox open"); // lint: allow(hot-path-panics)
    }

    /// Submit at the initial snapshot.
    pub fn submit(&mut self, plan: &Plan, params: Vec<Value>) -> SimHandle {
        self.submit_at(plan, params, 1)
    }

    /// Step the simulation until `handle` resolves. Errors out (with the
    /// step count) if the cluster quiesces without replying or the step
    /// budget runs dry — both mean a lost completion, which the
    /// conservation checkers should have flagged first.
    pub fn run(&mut self, handle: &SimHandle) -> GdResult<QueryResult> {
        loop {
            if let Some(r) = handle.try_result() {
                return r;
            }
            if self.steps >= self.max_steps {
                return Err(GdError::Internal(format!(
                    "simulation step budget exhausted after {} quanta",
                    self.steps
                )));
            }
            match self.step() {
                SimStep::Ran | SimStep::AdvancedClock => {}
                SimStep::Quiescent => {
                    return handle.try_result().unwrap_or_else(|| {
                        Err(GdError::Internal(format!(
                            "simulation quiesced without a query reply after {} quanta",
                            self.steps
                        )))
                    });
                }
            }
        }
    }

    /// Submit + run + settle: the synchronous convenience used by tests.
    pub fn query(&mut self, plan: &Plan, params: Vec<Value>) -> GdResult<Vec<Row>> {
        Ok(self.query_timed(plan, params)?.rows)
    }

    /// Like [`SimCluster::query`] but returns the full (virtual-latency)
    /// result.
    pub fn query_timed(&mut self, plan: &Plan, params: Vec<Value>) -> GdResult<QueryResult> {
        let handle = self.submit(plan, params);
        let result = self.run(&handle);
        self.settle();
        result
    }

    /// Step until the cluster is fully quiescent (drains post-completion
    /// traffic such as `QueryEnd` broadcasts, so back-to-back queries start
    /// from identical cluster state).
    pub fn settle(&mut self) {
        while self.steps < self.max_steps {
            if self.step() == SimStep::Quiescent {
                return;
            }
        }
    }

    /// One scheduling quantum: pick a runnable actor with the seeded RNG
    /// and run it, or advance the virtual clock to the next timer when
    /// nothing is runnable.
    pub fn step(&mut self) -> SimStep {
        self.steps += 1;
        let now = now();
        // Expired stalls come back onto the runnable set. Clearing them
        // here (rather than lazily) keeps the quiescence check exact: an
        // expired timer must never be re-advanced to.
        for s in &mut self.stalled_until {
            if s.is_some_and(|t| t <= now) {
                *s = None;
            }
        }
        let mut runnable: Vec<SimActor> = Vec::new();
        for (i, w) in self.workers.iter().enumerate() {
            if self.stalled_until[i].is_none() && w.has_work() {
                runnable.push(SimActor::Worker(i as u32));
            }
        }
        if self.coordinator.has_work() {
            runnable.push(SimActor::Coordinator);
        }
        for (i, e) in self.egress.iter().enumerate() {
            if e.has_pending() {
                runnable.push(SimActor::Egress(i as u32));
            }
        }
        for (i, ing) in self.ingress.iter().enumerate() {
            if ing.runnable(now) {
                runnable.push(SimActor::Ingress(i as u32));
            }
        }
        if runnable.is_empty() {
            return match self.next_timer() {
                Some(t) => {
                    vclock::advance_to(t);
                    self.trace.record(SimEventKind::AdvanceClock);
                    SimStep::AdvancedClock
                }
                None => SimStep::Quiescent,
            };
        }
        let actor = runnable[self.sched_rng.gen_range(0..runnable.len())];
        if let SimActor::Worker(i) = actor {
            if self.faults.stall_permille > 0
                && roll(&mut self.fault_rng, self.faults.stall_permille)
            {
                self.stalled_until[i as usize] = Some(now + self.faults.stall);
                self.counts.stalls += 1;
                self.trace.record(SimEventKind::Stall(i));
                return SimStep::Ran;
            }
        }
        match actor {
            SimActor::Worker(i) => {
                // `Stopped` cannot happen: the simulator never sends
                // `Shutdown`; teardown is by drop.
                let _ = self.workers[i as usize].pump();
            }
            SimActor::Coordinator => {
                let _: PumpStatus = self.coordinator.pump();
            }
            SimActor::Egress(i) => {
                let _ = self.egress[i as usize].pump();
            }
            SimActor::Ingress(i) => self.pump_ingress(i as usize),
        }
        self.trace.record(SimEventKind::Run(actor));
        SimStep::Ran
    }

    /// The earliest future instant at which anything becomes runnable:
    /// a buffered packet's delivery time, a stall expiry, an adaptive
    /// lane's idle-flush deadline, a query deadline, or the liveness
    /// watchdog.
    fn next_timer(&self) -> Option<Instant> {
        let mut next: Option<Instant> = None;
        let mut fold = |t: Instant| match next {
            Some(cur) if cur <= t => {}
            _ => next = Some(t),
        };
        for ing in &self.ingress {
            if let Some(t) = ing.next_due() {
                fold(t);
            }
        }
        for s in self.stalled_until.iter().flatten() {
            fold(*s);
        }
        // Held adaptive lanes wake their worker on the virtual clock.
        for w in &self.workers {
            if let Some(t) = w.next_flush_deadline() {
                fold(t);
            }
        }
        match (next, self.coordinator.next_timer()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// One ingress quantum: pull newly-transmitted packets into the
    /// time-ordered buffer (applying delay-spike faults), then deliver
    /// everything due, applying reorder/drop/duplicate faults.
    fn pump_ingress(&mut self, i: usize) {
        let now = now();
        // Intake: packets the egress pump transmitted.
        loop {
            let ev = match self.ingress[i].rx.try_recv() {
                Ok(ev) => ev,
                Err(_) => break,
            };
            match ev {
                IngressEvent::Packet {
                    mut deliver_at,
                    msgs,
                } => {
                    if self.faults.delay_permille > 0
                        && roll(&mut self.fault_rng, self.faults.delay_permille)
                    {
                        deliver_at += self.faults.delay_spike;
                        self.counts.delay_spikes += 1;
                        self.trace.record(SimEventKind::DelaySpike);
                    }
                    self.ingress[i].seq += 1;
                    let seq = self.ingress[i].seq;
                    self.ingress[i].pending.push(Reverse(PendingPacket {
                        at: deliver_at,
                        seq,
                        msgs,
                    }));
                }
                // The simulator tears down by drop, not by Shutdown.
                IngressEvent::Shutdown => {}
            }
        }
        // Delivery: everything due under the current virtual clock.
        let mut due: Vec<PendingPacket> = Vec::new();
        while self.ingress[i]
            .pending
            .peek()
            .is_some_and(|p| p.0.at <= now)
        {
            // The heap is non-empty by the check above.
            due.push(self.ingress[i].pending.pop().expect("peeked").0); // lint: allow(hot-path-panics)
        }
        if due.len() > 1
            && self.faults.reorder_permille > 0
            && roll(&mut self.fault_rng, self.faults.reorder_permille)
        {
            due.reverse();
            self.counts.reorders += 1;
            self.trace.record(SimEventKind::Reorder);
        }
        for packet in due {
            for msg in packet.msgs {
                self.deliver_with_faults(msg);
            }
        }
    }

    /// Deliver one wire message, rolling drop/duplicate faults for
    /// traverser batches (the payloads the conservation ledger tracks).
    fn deliver_with_faults(&mut self, msg: WireMsg) {
        if let WireMsg::Batch { dest, payload } = msg {
            if self.faults.drop_permille > 0 && roll(&mut self.fault_rng, self.faults.drop_permille)
            {
                // The batch sinks: `delivered` stays short of `sent`, which
                // quiesce checking / the watchdog must turn into a
                // diagnostic rather than a silent wrong answer. The leased
                // frame still goes back to the pool — a drop fault loses
                // the message, not buffer capacity.
                self.counts.drops += 1;
                self.trace.record(SimEventKind::DropBatch);
                self.fabric.pool_put(payload);
                return;
            }
            if self.faults.dup_permille > 0 && roll(&mut self.fault_rng, self.faults.dup_permille) {
                // Deliver a clone first, then the original below:
                // `delivered` overshoots `sent`.
                self.counts.dups += 1;
                self.trace.record(SimEventKind::DupBatch);
                self.fabric.deliver(WireMsg::Batch {
                    dest,
                    payload: payload.clone(),
                });
            }
            self.fabric.deliver(WireMsg::Batch { dest, payload });
            return;
        }
        // The migration protocol's control messages ride the same lossy
        // network: drop and duplicate faults apply to them too, so the DST
        // battery can prove the state machine never hangs the cluster or
        // corrupts routing under a lost freeze/install/commit/retire/ack.
        // Non-migration control traffic stays reliable (as before), and the
        // guard means runs without migrations consume no extra fault
        // randomness — existing repro schedules replay unchanged.
        match msg {
            WireMsg::CtrlWorker { dest, msg }
                if crate::messages::worker_migration_qid(&msg).is_some() =>
            {
                if self.faults.drop_permille > 0
                    && roll(&mut self.fault_rng, self.faults.drop_permille)
                {
                    self.counts.drops += 1;
                    self.trace.record(SimEventKind::DropMigCtrl);
                    return;
                }
                if self.faults.dup_permille > 0
                    && roll(&mut self.fault_rng, self.faults.dup_permille)
                {
                    if let Some(dup) = crate::messages::clone_migration_worker_msg(&msg) {
                        self.counts.dups += 1;
                        self.trace.record(SimEventKind::DupMigCtrl);
                        self.fabric.deliver(WireMsg::CtrlWorker { dest, msg: dup });
                    }
                }
                self.fabric.deliver(WireMsg::CtrlWorker { dest, msg });
            }
            WireMsg::CtrlCoord {
                msg: CoordMsg::MigrateAck { seq, v, phase },
            } => {
                if self.faults.drop_permille > 0
                    && roll(&mut self.fault_rng, self.faults.drop_permille)
                {
                    self.counts.drops += 1;
                    self.trace.record(SimEventKind::DropMigCtrl);
                    return;
                }
                if self.faults.dup_permille > 0
                    && roll(&mut self.fault_rng, self.faults.dup_permille)
                {
                    self.counts.dups += 1;
                    self.trace.record(SimEventKind::DupMigCtrl);
                    self.fabric.deliver(WireMsg::CtrlCoord {
                        msg: CoordMsg::MigrateAck { seq, v, phase },
                    });
                }
                self.fabric.deliver(WireMsg::CtrlCoord {
                    msg: CoordMsg::MigrateAck { seq, v, phase },
                });
            }
            other => self.fabric.deliver(other),
        }
    }

    /// Ask the coordinator to migrate the given vertices (an empty list
    /// requests a plan from the hot-vertex sketch). Takes effect as the
    /// simulation steps.
    pub fn rebalance(&mut self, moves: Vec<(graphdance_common::VertexId, PartId)>) {
        self.coord_tx
            .send(CoordMsg::Rebalance { moves })
            .expect("sim coordinator inbox open"); // lint: allow(hot-path-panics)
    }

    /// Migrations the coordinator has started but not fully retired. Under
    /// lossy faults a dropped control message leaves a migration parked
    /// here forever — visible, never a hang.
    pub fn pending_migrations(&self) -> usize {
        self.coordinator.pending_migrations()
    }

    /// Migrations fully retired since the cluster was built.
    pub fn migrations_done(&self) -> u64 {
        self.coordinator.migrations_done()
    }

    /// Total traversers redirected by source-side forwarding stubs.
    pub fn forwarded(&self) -> u64 {
        self.workers.iter().map(Worker::forwarded).sum()
    }
}

/// One per-mille Bernoulli roll. Callers gate on `permille > 0` first so
/// disabled faults consume no randomness (keeping fault streams identical
/// across configs that differ only in unrelated knobs).
fn roll(rng: &mut SmallRng, permille: u16) -> bool {
    rng.gen_range(0..1000u32) < permille as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphdance_common::{Partitioner, VertexId};
    use graphdance_query::QueryBuilder;
    use graphdance_storage::GraphBuilder;

    fn ring(n: u64, parts: Partitioner) -> Graph {
        let mut b = GraphBuilder::new(parts);
        let person = b.schema_mut().register_vertex_label("Person");
        let knows = b.schema_mut().register_edge_label("knows");
        for i in 0..n {
            b.add_vertex(VertexId(i), person, vec![]).unwrap();
        }
        for i in 0..n {
            b.add_edge(VertexId(i), knows, VertexId((i + 1) % n), vec![])
                .unwrap();
        }
        b.finish()
    }

    fn khop_plan(graph: &Graph, k: i64) -> Plan {
        let mut b = QueryBuilder::new(graph.schema());
        b.v_param(0);
        let c = b.alloc_slot();
        b.repeat(1, k, c, |r| {
            r.out("knows");
        });
        b.dedup();
        b.compile().unwrap()
    }

    #[test]
    fn sim_khop_matches_threaded_answer() {
        let g = ring(16, Partitioner::new(2, 2));
        let plan = khop_plan(&g, 3);
        let mut sim = SimCluster::new(g, EngineConfig::new(2, 2));
        let mut rows = sim.query(&plan, vec![Value::Vertex(VertexId(0))]).unwrap();
        rows.sort_by(|a, b| a[0].cmp_total(&b[0]));
        let got: Vec<u64> = rows.iter().map(|r| r[0].as_vertex().unwrap().0).collect();
        assert_eq!(got, vec![1, 2, 3]);
        assert!(sim.trace().total() > 0, "scheduling decisions were traced");
    }

    #[test]
    fn sim_virtual_latency_is_positive_and_deterministic() {
        let lat = |seed: u64| {
            let g = ring(24, Partitioner::new(2, 2));
            let plan = khop_plan(&g, 4);
            let mut sim = SimCluster::new(g, EngineConfig::new(2, 2).with_seed(seed));
            sim.query_timed(&plan, vec![Value::Vertex(VertexId(0))])
                .unwrap()
                .latency
        };
        let a = lat(1);
        let b = lat(1);
        assert!(a > std::time::Duration::ZERO, "virtual latency accrued");
        assert_eq!(a, b, "same seed, same virtual latency, bit for bit");
    }

    #[test]
    fn back_to_back_queries_reuse_a_settled_cluster() {
        let g = ring(12, Partitioner::new(1, 2));
        let plan = khop_plan(&g, 2);
        let mut sim = SimCluster::new(g, EngineConfig::new(1, 2));
        for start in 0..4u64 {
            let rows = sim
                .query(&plan, vec![Value::Vertex(VertexId(start))])
                .unwrap();
            assert_eq!(rows.len(), 2, "2-hop from {start} on a ring");
        }
    }

    #[test]
    fn sim_migration_retires_and_preserves_answers() {
        let g = ring(16, Partitioner::new(2, 2));
        let plan = khop_plan(&g, 3);
        let mut sim = SimCluster::new(g, EngineConfig::new(2, 2));
        let sorted = |mut rows: Vec<Row>| {
            rows.sort_by(|a, b| a[0].cmp_total(&b[0]));
            rows
        };
        let before = sorted(sim.query(&plan, vec![Value::Vertex(VertexId(0))]).unwrap());
        // Move two vertices off their hash homes while the cluster idles;
        // with no active queries the retire gate opens immediately.
        let p = sim.fabric().partitioner();
        let moves: Vec<_> = [VertexId(1), VertexId(2)]
            .into_iter()
            .map(|v| (v, PartId((p.part_of(v).0 + 1) % p.num_parts())))
            .collect();
        sim.rebalance(moves);
        sim.settle();
        assert_eq!(sim.migrations_done(), 2, "both migrations fully retired");
        assert_eq!(sim.pending_migrations(), 0);
        // New queries pin the bumped routing version and must see the
        // identical answer through the migrated placement.
        let after = sorted(sim.query(&plan, vec![Value::Vertex(VertexId(0))]).unwrap());
        assert_eq!(before, after, "rows survive live migration");
    }

    #[test]
    fn clock_unfreezes_when_cluster_drops() {
        {
            let g = ring(4, Partitioner::new(1, 1));
            let _sim = SimCluster::new(g, EngineConfig::new(1, 1));
            assert!(vclock::is_frozen());
        }
        assert!(!vclock::is_frozen());
    }
}
