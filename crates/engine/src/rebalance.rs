//! Query-driven rebalancing: the hot-vertex tracker and the migration
//! planner (DESIGN.md §14).
//!
//! The fabric records which vertices receive remote traverser traffic and
//! from which partitions ([`HotTracker`], off by default — zero cost until
//! a rebalance-aware deployment enables it). The planner turns that signal
//! into a bounded set of `(vertex, destination)` moves: each hot vertex is
//! pulled toward its heaviest remote sender, subject to a balance guard so
//! migration cannot concentrate the graph onto one partition. Candidate
//! ordering ties are broken through a *seeded* RNG salt, never map
//! iteration order, so a recorded sim schedule replays bit-identically.

use std::cmp::Reverse;
use std::sync::atomic::{AtomicBool, Ordering};

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::RngCore;

use graphdance_common::{FxHashMap, PartId, VertexId};
use graphdance_storage::Graph;

/// RNG stream id for the coordinator's migration planner (workers use
/// `0..num_parts`; the coordinator, scheduler, fault injector and oracle
/// hold `u64::MAX` down through `u64::MAX - 3`).
pub const REBALANCE_STREAM: u64 = u64::MAX - 4;

/// Bound on tracked vertices: the tracker is a sketch of the hot set, not
/// an exact census. Once full, unseen vertices are not admitted until
/// [`HotTracker::drain`] resets it.
const HOT_CAP: usize = 4096;

#[derive(Default)]
struct PerVertex {
    total: u64,
    by_sender: FxHashMap<PartId, u64>,
}

/// Remote-traffic sketch: destination vertex → per-sender-partition counts
/// of traversers that crossed partitions to reach it. Shared through the
/// fabric; workers record on their egress path, the planner drains.
#[derive(Default)]
pub struct HotTracker {
    /// Recording toggle (off = the hot path pays one relaxed load).
    enabled: AtomicBool,
    inner: Mutex<FxHashMap<VertexId, PerVertex>>,
}

/// One drained tracker entry, senders sorted heaviest-first (ties by
/// partition id, so the ordering is deterministic).
#[derive(Clone, Debug)]
pub struct HotVertex {
    /// The vertex remote traversers were routed to.
    pub v: VertexId,
    /// Total remote traversers received.
    pub total: u64,
    /// Per-sender-partition counts, heaviest first.
    pub senders: Vec<(PartId, u64)>,
}

impl HotTracker {
    /// A disabled, empty tracker.
    pub fn new() -> Self {
        HotTracker::default()
    }

    /// Toggle recording.
    pub fn set_enabled(&self, on: bool) {
        // sync: recording toggle — eventual visibility suffices
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Is recording on?
    #[inline]
    pub fn is_enabled(&self) -> bool {
        // sync: recording toggle, pairs with the Relaxed store above
        self.enabled.load(Ordering::Relaxed)
    }

    /// Record one remote traverser headed for `v`, sent by partition
    /// `from`. No-op while disabled.
    pub fn record(&self, v: VertexId, from: PartId) {
        if !self.is_enabled() {
            return;
        }
        // lint: allow(hot-path-blocking) bounded map update while held;
        // only taken when rebalance tracking is explicitly enabled
        let mut inner = self.inner.lock();
        if inner.len() >= HOT_CAP && !inner.contains_key(&v) {
            return;
        }
        let e = inner.entry(v).or_default();
        e.total += 1;
        *e.by_sender.entry(from).or_default() += 1;
    }

    /// Number of tracked vertices (diagnostics).
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Is the sketch empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drain the sketch: return every entry (unsorted totals, but each
    /// entry's sender list is sorted heaviest-first) and reset.
    pub fn drain(&self) -> Vec<HotVertex> {
        let drained = std::mem::take(&mut *self.inner.lock());
        let mut out: Vec<HotVertex> = drained
            .into_iter()
            .map(|(v, pv)| {
                let mut senders: Vec<(PartId, u64)> = pv.by_sender.into_iter().collect();
                senders.sort_unstable_by_key(|(p, c)| (Reverse(*c), p.0));
                HotVertex {
                    v,
                    total: pv.total,
                    senders,
                }
            })
            .collect();
        // Deterministic base order; the planner applies its own salted sort.
        out.sort_unstable_by_key(|h| h.v.0);
        out
    }
}

/// Planner knobs.
#[derive(Clone, Copy, Debug)]
pub struct RebalanceConfig {
    /// Most migrations one planning round may start.
    pub max_moves: usize,
    /// A vertex is a candidate only at or above this remote-traverser
    /// count (filters one-off traffic).
    pub min_traffic: u64,
    /// Balance guard: a move is allowed only while the destination holds
    /// fewer than `ceil((1 + slack) · n / k)` vertices.
    pub slack: f64,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        RebalanceConfig {
            max_moves: 8,
            min_traffic: 4,
            slack: 0.10,
        }
    }
}

/// Turn the drained hot-vertex sketch into concrete moves. Pure given its
/// inputs: candidate ties are broken by hashing the vertex id against one
/// salt drawn from `rng` (the coordinator's dedicated planner stream), so
/// two runs with the same seed plan the same moves regardless of map
/// iteration order.
pub fn plan_moves(
    hot: Vec<HotVertex>,
    graph: &Graph,
    cfg: &RebalanceConfig,
    rng: &mut SmallRng,
) -> Vec<(VertexId, PartId)> {
    if hot.is_empty() || cfg.max_moves == 0 {
        return Vec::new();
    }
    let partitioner = graph.partitioner();
    let k = partitioner.num_parts() as usize;
    let mut loads: FxHashMap<PartId, usize> = FxHashMap::default();
    let mut n = 0usize;
    for p in partitioner.parts() {
        let c = graph.read(p).num_vertices();
        loads.insert(p, c);
        n += c;
    }
    let cap = (((1.0 + cfg.slack) * n as f64) / k as f64).ceil() as usize;
    let salt = rng.next_u64();
    let mut cands = hot;
    cands.retain(|h| h.total >= cfg.min_traffic);
    cands.sort_unstable_by_key(|h| {
        (
            Reverse(h.total),
            graphdance_common::fxhash::hash_u64(h.v.0 ^ salt),
        )
    });
    let mut moves = Vec::new();
    for h in cands {
        if moves.len() >= cfg.max_moves {
            break;
        }
        let cur = graph.part_of(h.v);
        // Pull toward the heaviest sender that is not already home.
        let Some(&(to, _)) = h.senders.iter().find(|(p, _)| *p != cur) else {
            continue;
        };
        let dest_load = loads.get(&to).copied().unwrap_or(0);
        if dest_load + 1 > cap {
            continue;
        }
        *loads.entry(to).or_default() += 1;
        if let Some(l) = loads.get_mut(&cur) {
            *l = l.saturating_sub(1);
        }
        moves.push((h.v, to));
    }
    moves
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphdance_common::{Partitioner, VertexId};
    use graphdance_storage::GraphBuilder;

    fn test_graph(parts: u32) -> Graph {
        let mut b = GraphBuilder::new(Partitioner::new(parts, 1));
        let person = b.schema_mut().register_vertex_label("Person");
        for i in 0..40u64 {
            b.add_vertex(VertexId(i), person, vec![]).unwrap();
        }
        b.finish()
    }

    fn hot(v: u64, total: u64, senders: &[(u32, u64)]) -> HotVertex {
        HotVertex {
            v: VertexId(v),
            total,
            senders: senders.iter().map(|(p, c)| (PartId(*p), *c)).collect(),
        }
    }

    #[test]
    fn tracker_records_and_drains_deterministically() {
        let t = HotTracker::new();
        t.record(VertexId(1), PartId(0));
        assert!(t.is_empty(), "disabled tracker records nothing");
        t.set_enabled(true);
        for _ in 0..3 {
            t.record(VertexId(1), PartId(2));
        }
        t.record(VertexId(1), PartId(0));
        t.record(VertexId(9), PartId(1));
        let drained = t.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].v, VertexId(1));
        assert_eq!(drained[0].total, 4);
        assert_eq!(
            drained[0].senders[0],
            (PartId(2), 3),
            "heaviest sender first"
        );
        assert!(t.is_empty(), "drain resets the sketch");
    }

    #[test]
    fn planner_pulls_toward_heaviest_sender() {
        let g = test_graph(2);
        let mut rng = graphdance_common::rng::derive(7, 0);
        let v = VertexId(0);
        let home = g.part_of(v);
        let other = PartId((home.0 + 1) % 2);
        let moves = plan_moves(
            vec![hot(v.0, 10, &[(other.0, 9), (home.0, 1)])],
            &g,
            &RebalanceConfig::default(),
            &mut rng,
        );
        assert_eq!(moves, vec![(v, other)]);
    }

    #[test]
    fn planner_respects_balance_cap_and_move_budget() {
        let g = test_graph(2);
        let mut rng = graphdance_common::rng::derive(7, 0);
        let cfg = RebalanceConfig {
            max_moves: 3,
            min_traffic: 1,
            slack: 0.0,
        };
        // Everything wants to move to partition 1; the zero-slack cap
        // allows at most ceil(n/k) there.
        let cands: Vec<HotVertex> = (0..40)
            .filter(|i| g.part_of(VertexId(*i)) == PartId(0))
            .map(|i| hot(i, 10, &[(1, 10)]))
            .collect();
        let moves = plan_moves(cands, &g, &cfg, &mut rng);
        assert!(moves.len() <= 3, "move budget respected");
        let p1 = g.read(PartId(1)).num_vertices();
        let cap = (40.0f64 / 2.0).ceil() as usize;
        assert!(p1 + moves.len() <= cap, "balance cap respected");
    }

    #[test]
    fn planner_is_seed_stable() {
        let g = test_graph(2);
        let cands: Vec<HotVertex> = (0..8).map(|i| hot(i, 5, &[(1, 5), (0, 1)])).collect();
        let cfg = RebalanceConfig {
            max_moves: 4,
            min_traffic: 1,
            slack: 0.5,
        };
        let mut r1 = graphdance_common::rng::derive(42, 99);
        let mut r2 = graphdance_common::rng::derive(42, 99);
        let a = plan_moves(cands.clone(), &g, &cfg, &mut r1);
        let b = plan_moves(cands, &g, &cfg, &mut r2);
        assert_eq!(a, b, "same seed, same plan");
    }
}
