//! Compact binary wire codec for traverser batches.
//!
//! Messages crossing simulated node boundaries are *really* serialized and
//! deserialized (same-node messages take the shared-memory shortcut and
//! skip this entirely, §IV-B). Hand-rolled rather than a serde format so
//! the byte layout — and therefore the network cost model and the 8 KB
//! flush threshold — is deterministic and tight.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use parking_lot::Mutex;

use graphdance_common::{GdError, GdResult, QueryId, Value, VertexId};
use graphdance_pstm::{Row, Traverser, Weight};
use graphdance_query::plan::Plan;

use crate::messages::{BspSignal, CoordMsg, WorkerMsg};

const TAG_NULL: u8 = 0;
const TAG_BOOL_FALSE: u8 = 1;
const TAG_BOOL_TRUE: u8 = 2;
const TAG_INT: u8 = 3;
const TAG_FLOAT: u8 = 4;
const TAG_STR: u8 = 5;
const TAG_VERTEX: u8 = 6;
const TAG_LIST: u8 = 7;

/// Encode one value.
pub fn encode_value<B: BufMut>(buf: &mut B, v: &Value) {
    match v {
        Value::Null => buf.put_u8(TAG_NULL),
        Value::Bool(false) => buf.put_u8(TAG_BOOL_FALSE),
        Value::Bool(true) => buf.put_u8(TAG_BOOL_TRUE),
        Value::Int(i) => {
            buf.put_u8(TAG_INT);
            buf.put_i64_le(*i);
        }
        Value::Float(f) => {
            buf.put_u8(TAG_FLOAT);
            buf.put_f64_le(*f);
        }
        Value::Str(s) => {
            buf.put_u8(TAG_STR);
            buf.put_u32_le(s.len() as u32);
            buf.put_slice(s.as_bytes());
        }
        Value::Vertex(v) => {
            buf.put_u8(TAG_VERTEX);
            buf.put_u64_le(v.0);
        }
        Value::List(l) => {
            buf.put_u8(TAG_LIST);
            buf.put_u32_le(l.len() as u32);
            for x in l.iter() {
                encode_value(buf, x);
            }
        }
    }
}

fn need(buf: &Bytes, n: usize) -> GdResult<()> {
    if buf.remaining() < n {
        Err(GdError::Internal("wire message truncated".into()))
    } else {
        Ok(())
    }
}

/// Decode one value.
pub fn decode_value(buf: &mut Bytes) -> GdResult<Value> {
    need(buf, 1)?;
    match buf.get_u8() {
        TAG_NULL => Ok(Value::Null),
        TAG_BOOL_FALSE => Ok(Value::Bool(false)),
        TAG_BOOL_TRUE => Ok(Value::Bool(true)),
        TAG_INT => {
            need(buf, 8)?;
            Ok(Value::Int(buf.get_i64_le()))
        }
        TAG_FLOAT => {
            need(buf, 8)?;
            Ok(Value::Float(buf.get_f64_le()))
        }
        TAG_STR => {
            need(buf, 4)?;
            let n = buf.get_u32_le() as usize;
            need(buf, n)?;
            let raw = buf.split_to(n);
            let s = std::str::from_utf8(&raw)
                .map_err(|_| GdError::Internal("invalid utf8 on wire".into()))?;
            Ok(Value::str(s))
        }
        TAG_VERTEX => {
            need(buf, 8)?;
            Ok(Value::Vertex(VertexId(buf.get_u64_le())))
        }
        TAG_LIST => {
            need(buf, 4)?;
            let n = buf.get_u32_le() as usize;
            let mut items = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                items.push(decode_value(buf)?);
            }
            Ok(Value::list(items))
        }
        t => Err(GdError::Internal(format!("unknown value tag {t}"))),
    }
}

/// Encode one traverser.
pub fn encode_traverser<B: BufMut>(buf: &mut B, t: &Traverser) {
    buf.put_u64_le(t.query.0);
    buf.put_u16_le(t.pipeline);
    buf.put_u16_le(t.pc);
    buf.put_u64_le(t.vertex.0);
    buf.put_u64_le(t.weight.0);
    buf.put_u32_le(t.depth);
    buf.put_u8(u8::from(t.aux_key.is_some()));
    if let Some(k) = &t.aux_key {
        encode_value(buf, k);
    }
    buf.put_u16_le(t.locals.len() as u16);
    for v in &t.locals {
        encode_value(buf, v);
    }
}

/// Decode one traverser.
pub fn decode_traverser(buf: &mut Bytes) -> GdResult<Traverser> {
    need(buf, 8 + 2 + 2 + 8 + 8 + 4 + 1)?;
    let query = QueryId(buf.get_u64_le());
    let pipeline = buf.get_u16_le();
    let pc = buf.get_u16_le();
    let vertex = VertexId(buf.get_u64_le());
    let weight = Weight(buf.get_u64_le());
    let depth = buf.get_u32_le();
    let has_aux = buf.get_u8() != 0;
    let aux_key = if has_aux {
        Some(decode_value(buf)?)
    } else {
        None
    };
    need(buf, 2)?;
    let n = buf.get_u16_le() as usize;
    let mut locals = Vec::with_capacity(n);
    for _ in 0..n {
        locals.push(decode_value(buf)?);
    }
    Ok(Traverser {
        query,
        pipeline,
        pc,
        vertex,
        locals,
        weight,
        depth,
        aux_key,
    })
}

// ---------------------------------------------------------------------------
// Batch frames
// ---------------------------------------------------------------------------
//
// A batch frame is:
//
// ```text
// u32  n                      traverser count
// n ×  traverser              see encode_traverser
// u16  p                      piggybacked progress-report count
// p ×  (u64 query, u64 weight, u64 steps)
// ```
//
// The trailer lets the adaptive I/O scheduler fold coalesced progress
// reports into traverser batches already headed for the coordinator's
// node, cutting standalone `Progress` wire messages (Fig. 10/11).

/// One piggybacked progress report: the same `(query, weight, steps)`
/// triple a standalone `CoordMsg::Progress` would carry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProgressEntry {
    /// Query the finished weight belongs to.
    pub query: QueryId,
    /// Coalesced finished weight being returned to the tracker.
    pub weight: Weight,
    /// Traverser executions folded into this report (obs accounting).
    pub steps: u64,
}

/// Size in bytes of one encoded [`ProgressEntry`].
pub const PROGRESS_ENTRY_BYTES: usize = 24;

/// Encode a batch of traversers plus piggybacked progress reports into a
/// caller-provided frame (normally one leased from a [`BytesPool`]). The
/// zero-copy egress path: no intermediate `BytesMut`, no `freeze` copy.
pub fn encode_batch_into(
    frame: &mut Vec<u8>,
    traversers: &[Traverser],
    progress: &[ProgressEntry],
) {
    frame.reserve(4 + 2 + 64 * traversers.len() + PROGRESS_ENTRY_BYTES * progress.len());
    frame.put_u32_le(traversers.len() as u32);
    for t in traversers {
        encode_traverser(frame, t);
    }
    frame.put_u16_le(progress.len() as u16);
    for p in progress {
        frame.put_u64_le(p.query.0);
        frame.put_u64_le(p.weight.0);
        frame.put_u64_le(p.steps);
    }
}

/// Encode a batch of traversers (one wire payload, no piggybacked
/// progress). The allocating legacy path, kept as an independent encoder
/// for the differential codec tests.
pub fn encode_batch(traversers: &[Traverser]) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 * traversers.len() + 6);
    buf.put_u32_le(traversers.len() as u32);
    for t in traversers {
        encode_traverser(&mut buf, t);
    }
    buf.put_u16_le(0);
    buf.freeze()
}

/// Decode a full batch frame — traversers plus progress trailer — through
/// the shared-`Bytes` cursor (the legacy path; the hot ingress path is
/// [`decode_batch_borrowed`], an independent implementation the
/// differential tests compare against this one).
pub fn decode_batch_full(mut buf: Bytes) -> GdResult<(Vec<Traverser>, Vec<ProgressEntry>)> {
    need(&buf, 4)?;
    let n = buf.get_u32_le() as usize;
    let mut out = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        out.push(decode_traverser(&mut buf)?);
    }
    need(&buf, 2)?;
    let p = buf.get_u16_le() as usize;
    let mut progress = Vec::with_capacity(p);
    for _ in 0..p {
        need(&buf, PROGRESS_ENTRY_BYTES)?;
        progress.push(ProgressEntry {
            query: QueryId(buf.get_u64_le()),
            weight: Weight(buf.get_u64_le()),
            steps: buf.get_u64_le(),
        });
    }
    Ok((out, progress))
}

/// Decode a batch of traversers, rejecting frames that carry piggybacked
/// progress (a dropped trailer would silently break weight conservation;
/// callers that can route progress use [`decode_batch_borrowed`]).
pub fn decode_batch(buf: Bytes) -> GdResult<Vec<Traverser>> {
    let (out, progress) = decode_batch_full(buf)?;
    if !progress.is_empty() {
        return Err(GdError::Internal(
            "legacy decode path cannot route piggybacked progress".into(),
        ));
    }
    Ok(out)
}

/// A bounds-checked cursor over a borrowed frame — the zero-copy ingress
/// read path (no `Arc` wrapping, no upfront copy into `Bytes`). Shared
/// with the control-plane codec in [`crate::wire`].
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub(crate) fn take(&mut self, n: usize) -> GdResult<&'a [u8]> {
        if self.buf.len() - self.pos < n {
            return Err(GdError::Internal("wire message truncated".into()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.pos == self.buf.len()
    }

    pub(crate) fn u8(&mut self) -> GdResult<u8> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> GdResult<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap())) // lint: allow(hot-path-panics) take(2) returned exactly 2 bytes
    }

    pub(crate) fn u32(&mut self) -> GdResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap())) // lint: allow(hot-path-panics) take(4) returned exactly 4 bytes
    }

    pub(crate) fn u64(&mut self) -> GdResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap())) // lint: allow(hot-path-panics) take(8) returned exactly 8 bytes
    }

    pub(crate) fn i64(&mut self) -> GdResult<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap())) // lint: allow(hot-path-panics) take(8) returned exactly 8 bytes
    }

    pub(crate) fn f64(&mut self) -> GdResult<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap())) // lint: allow(hot-path-panics) take(8) returned exactly 8 bytes
    }
}

pub(crate) fn decode_value_borrowed(r: &mut Reader<'_>) -> GdResult<Value> {
    match r.u8()? {
        TAG_NULL => Ok(Value::Null),
        TAG_BOOL_FALSE => Ok(Value::Bool(false)),
        TAG_BOOL_TRUE => Ok(Value::Bool(true)),
        TAG_INT => Ok(Value::Int(r.i64()?)),
        TAG_FLOAT => Ok(Value::Float(r.f64()?)),
        TAG_STR => {
            let n = r.u32()? as usize;
            let s = std::str::from_utf8(r.take(n)?)
                .map_err(|_| GdError::Internal("invalid utf8 on wire".into()))?;
            Ok(Value::str(s))
        }
        TAG_VERTEX => Ok(Value::Vertex(VertexId(r.u64()?))),
        TAG_LIST => {
            let n = r.u32()? as usize;
            let mut items = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                items.push(decode_value_borrowed(r)?);
            }
            Ok(Value::list(items))
        }
        t => Err(GdError::Internal(format!("unknown value tag {t}"))),
    }
}

pub(crate) fn decode_traverser_borrowed(r: &mut Reader<'_>) -> GdResult<Traverser> {
    let query = QueryId(r.u64()?);
    let pipeline = r.u16()?;
    let pc = r.u16()?;
    let vertex = VertexId(r.u64()?);
    let weight = Weight(r.u64()?);
    let depth = r.u32()?;
    let aux_key = if r.u8()? != 0 {
        Some(decode_value_borrowed(r)?)
    } else {
        None
    };
    let n = r.u16()? as usize;
    let mut locals = Vec::with_capacity(n);
    for _ in 0..n {
        locals.push(decode_value_borrowed(r)?);
    }
    Ok(Traverser {
        query,
        pipeline,
        pc,
        vertex,
        locals,
        weight,
        depth,
        aux_key,
    })
}

/// Decode a batch frame straight out of a borrowed byte slice — the
/// zero-copy ingress path. Rejects trailing garbage (a frame must be
/// consumed exactly), unlike the legacy `Bytes` cursor.
pub fn decode_batch_borrowed(frame: &[u8]) -> GdResult<(Vec<Traverser>, Vec<ProgressEntry>)> {
    let mut r = Reader::new(frame);
    let n = r.u32()? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        out.push(decode_traverser_borrowed(&mut r)?);
    }
    let p = r.u16()? as usize;
    let mut progress = Vec::with_capacity(p);
    for _ in 0..p {
        progress.push(ProgressEntry {
            query: QueryId(r.u64()?),
            weight: Weight(r.u64()?),
            steps: r.u64()?,
        });
    }
    if !r.is_empty() {
        return Err(GdError::Internal("trailing bytes after batch frame".into()));
    }
    Ok((out, progress))
}

// ---------------------------------------------------------------------------
// Frame pool
// ---------------------------------------------------------------------------

/// How many spare frames a [`BytesPool`] keeps for reuse.
const POOL_FREE_CAP: usize = 64;
/// Initial capacity of a freshly allocated frame.
const POOL_FRAME_RESERVE: usize = 4096;
/// Frames that grew beyond this are dropped on return instead of retained,
/// so one jumbo batch cannot pin its capacity forever.
const POOL_RETAIN_MAX: usize = 256 * 1024;

#[derive(Default)]
struct PoolInner {
    free: Vec<Vec<u8>>,
    allocated: u64,
    recycled: u64,
    outstanding: usize,
    high_water: usize,
}

/// Cumulative [`BytesPool`] accounting, for tests and obs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Frames allocated fresh (pool misses).
    pub allocated: u64,
    /// Frames served from the free list (pool hits).
    pub recycled: u64,
    /// Frames currently leased out.
    pub outstanding: usize,
    /// Maximum simultaneous leases ever observed.
    pub high_water: usize,
}

/// A reusable pool of egress frame buffers.
///
/// `get` leases a cleared `Vec<u8>`; `put` returns it once the receiver
/// has decoded it. Frames keep their grown capacity across leases (up to
/// [`POOL_RETAIN_MAX`]), so steady-state egress encodes into warm buffers
/// with zero per-batch allocation.
#[derive(Default)]
pub struct BytesPool {
    inner: Mutex<PoolInner>,
}

impl BytesPool {
    /// An empty pool.
    pub fn new() -> Self {
        BytesPool::default()
    }

    /// Lease a cleared frame.
    pub fn get(&self) -> Vec<u8> {
        let mut inner = self.inner.lock();
        inner.outstanding += 1;
        inner.high_water = inner.high_water.max(inner.outstanding);
        match inner.free.pop() {
            Some(frame) => {
                inner.recycled += 1;
                frame
            }
            None => {
                inner.allocated += 1;
                Vec::with_capacity(POOL_FRAME_RESERVE)
            }
        }
    }

    /// Return a leased frame. Tolerates foreign frames (e.g. a fault
    /// injector's duplicated payload): `outstanding` saturates at zero.
    pub fn put(&self, mut frame: Vec<u8>) {
        frame.clear();
        // lint: allow(hot-path-blocking) bounded: pool mutex guards two
        // integer updates and a capped Vec push, no blocking inside
        let mut inner = self.inner.lock();
        inner.outstanding = inner.outstanding.saturating_sub(1);
        if inner.free.len() < POOL_FREE_CAP && frame.capacity() <= POOL_RETAIN_MAX {
            inner.free.push(frame);
        }
    }

    /// Current accounting snapshot.
    pub fn stats(&self) -> PoolStats {
        let inner = self.inner.lock();
        PoolStats {
            allocated: inner.allocated,
            recycled: inner.recycled,
            outstanding: inner.outstanding,
            high_water: inner.high_water,
        }
    }
}

// ---------------------------------------------------------------------------
// Control-plane wire sizing
// ---------------------------------------------------------------------------

/// Approximate encoded size of one value (mirrors [`encode_value`]'s layout
/// without allocating).
pub fn value_wire_size(v: &Value) -> usize {
    1 + match v {
        Value::Null | Value::Bool(_) => 0,
        Value::Int(_) | Value::Float(_) | Value::Vertex(_) => 8,
        Value::Str(s) => 4 + s.len(),
        Value::List(l) => 4 + l.iter().map(value_wire_size).sum::<usize>(),
    }
}

/// Approximate encoded size of one result row.
pub fn row_wire_size(row: &Row) -> usize {
    2 + row.iter().map(value_wire_size).sum::<usize>()
}

/// Approximate plan-shipping cost: a fixed header plus per-stage, per-step,
/// and per-expression contributions. Coarse by design — it only needs to
/// scale with plan complexity so `QueryBegin` is charged more than a bare
/// control signal.
pub fn plan_wire_size(plan: &Plan) -> usize {
    16 + plan
        .stages
        .iter()
        .map(|s| {
            32 + 16 * s.output.len()
                + 24 * s.joins.len()
                + s.pipelines
                    .iter()
                    .map(|p| 16 + 24 * p.steps.len())
                    .sum::<usize>()
        })
        .sum::<usize>()
}

/// Modeled wire size of a control-plane message to a worker.
///
/// The match is deliberately exhaustive — **no wildcard arm** — so adding a
/// [`WorkerMsg`] variant is a compile error until its cost is modeled here.
/// `cargo xtask check` (the `codec-exhaustive` lint) additionally verifies
/// every variant name appears in this file.
pub fn worker_msg_wire_size(msg: &WorkerMsg) -> usize {
    match msg {
        WorkerMsg::Batch(ts) => 4 + ts.iter().map(Traverser::approx_bytes).sum::<usize>(),
        WorkerMsg::QueryBegin { ctx, stage: _ } => {
            16 + plan_wire_size(&ctx.plan) + ctx.params.iter().map(value_wire_size).sum::<usize>()
        }
        WorkerMsg::StageBegin { .. } => 16,
        WorkerMsg::StartSource { .. } => 24,
        WorkerMsg::GatherAgg { .. } => 12,
        WorkerMsg::QueryEnd { .. } => 12,
        WorkerMsg::CancelQuery { .. } => 12,
        // Migration control plane (DESIGN.md §14): fixed headers, except
        // the install which ships the whole vertex segment.
        WorkerMsg::MigrateFreeze { .. } => 28,
        WorkerMsg::MigrateInstall { segment, .. } => 24 + segment.approx_bytes(),
        WorkerMsg::MigrateCommit { .. } => 36,
        WorkerMsg::MigrateRetire { .. } => 20,
        WorkerMsg::Bsp(BspSignal::RunStep { .. }) => 16,
        WorkerMsg::Bsp(BspSignal::Probe { .. }) => 20,
        WorkerMsg::Shutdown => 4,
    }
}

/// Modeled wire size of a control-plane message to the coordinator.
///
/// Exhaustive on purpose, like [`worker_msg_wire_size`]; see there.
pub fn coord_msg_wire_size(msg: &CoordMsg) -> usize {
    match msg {
        CoordMsg::Submit { plan, params, .. } => {
            // Client submissions never cross the simulated wire (the client
            // talks to the coordinator's node directly), but the arm exists
            // so the match stays exhaustive.
            16 + plan_wire_size(plan) + params.iter().map(value_wire_size).sum::<usize>()
        }
        CoordMsg::Cancel { .. } => 12,
        CoordMsg::Progress { .. } => 32,
        CoordMsg::Rows { rows, .. } => 12 + rows.iter().map(row_wire_size).sum::<usize>(),
        CoordMsg::AggPartial { state, .. } => 16 + state.as_ref().map_or(0, |s| s.approx_bytes()),
        CoordMsg::WorkerError { .. } => 64,
        CoordMsg::BspStepDone { .. } => 56,
        CoordMsg::BspParked { .. } => 32,
        CoordMsg::Rebalance { moves } => 8 + 16 * moves.len(),
        CoordMsg::MigrateAck { .. } => 24,
        CoordMsg::Tick => 4,
        CoordMsg::Shutdown => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_value(v: Value) {
        let mut buf = BytesMut::new();
        encode_value(&mut buf, &v);
        let mut b = buf.freeze();
        assert_eq!(decode_value(&mut b).unwrap(), v);
        assert!(b.is_empty(), "no trailing bytes");
    }

    #[test]
    fn value_roundtrips() {
        roundtrip_value(Value::Null);
        roundtrip_value(Value::Bool(true));
        roundtrip_value(Value::Bool(false));
        roundtrip_value(Value::Int(-42));
        roundtrip_value(Value::Int(i64::MAX));
        roundtrip_value(Value::Float(3.5));
        roundtrip_value(Value::str(""));
        roundtrip_value(Value::str("hello – unicode ✓"));
        roundtrip_value(Value::Vertex(VertexId(u64::MAX)));
        roundtrip_value(Value::list(vec![
            Value::Int(1),
            Value::list(vec![Value::str("nested")]),
            Value::Null,
        ]));
    }

    #[test]
    fn traverser_roundtrip() {
        let mut t = Traverser::root(QueryId(9), 2, VertexId(77), 3, Weight(0xDEAD));
        t.pc = 5;
        t.depth = 4;
        t.set_slot(1, Value::str("x"));
        t.aux_key = Some(Value::Vertex(VertexId(3)));
        let mut buf = BytesMut::new();
        encode_traverser(&mut buf, &t);
        let mut b = buf.freeze();
        assert_eq!(decode_traverser(&mut b).unwrap(), t);
    }

    #[test]
    fn batch_roundtrip() {
        let ts: Vec<Traverser> = (0..10)
            .map(|i| {
                let mut t = Traverser::root(QueryId(1), 0, VertexId(i), 2, Weight(i));
                t.set_slot(0, Value::Int(i as i64));
                t
            })
            .collect();
        let wire = encode_batch(&ts);
        assert_eq!(decode_batch(wire).unwrap(), ts);
    }

    #[test]
    fn truncated_input_is_an_error() {
        let mut t = Traverser::root(QueryId(1), 0, VertexId(1), 1, Weight(1));
        t.set_slot(0, Value::str("hello"));
        let mut buf = BytesMut::new();
        encode_traverser(&mut buf, &t);
        let full = buf.freeze();
        for cut in [0, 1, 8, full.len() - 1] {
            let mut partial = full.slice(..cut);
            assert!(decode_traverser(&mut partial).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn garbage_tag_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(99);
        assert!(decode_value(&mut buf.freeze()).is_err());
    }

    #[test]
    fn empty_batch() {
        let wire = encode_batch(&[]);
        assert_eq!(wire.len(), 4 + 2, "u32 count + empty u16 trailer");
        assert!(decode_batch(wire).unwrap().is_empty());
    }

    fn sample_batch() -> Vec<Traverser> {
        (0..10)
            .map(|i| {
                let mut t = Traverser::root(QueryId(1), 0, VertexId(i), 2, Weight(i + 1));
                t.set_slot(0, Value::Int(i as i64));
                if i % 3 == 0 {
                    t.aux_key = Some(Value::str("k"));
                }
                t
            })
            .collect()
    }

    #[test]
    fn zero_copy_encode_matches_legacy_bytes_exactly() {
        let ts = sample_batch();
        let legacy = encode_batch(&ts);
        let mut frame = Vec::new();
        encode_batch_into(&mut frame, &ts, &[]);
        assert_eq!(&*legacy, &frame[..], "two encoders, one byte layout");
    }

    #[test]
    fn borrowed_decoder_agrees_with_bytes_cursor() {
        let ts = sample_batch();
        let progress = vec![
            ProgressEntry {
                query: QueryId(1),
                weight: Weight(0xAB),
                steps: 17,
            },
            ProgressEntry {
                query: QueryId(2),
                weight: Weight(1),
                steps: 0,
            },
        ];
        let mut frame = Vec::new();
        encode_batch_into(&mut frame, &ts, &progress);
        let (bt, bp) = decode_batch_borrowed(&frame).unwrap();
        let (lt, lp) = decode_batch_full(Bytes::from(frame)).unwrap();
        assert_eq!(bt, ts);
        assert_eq!(bp, progress);
        assert_eq!(lt, bt);
        assert_eq!(lp, bp);
    }

    #[test]
    fn legacy_decode_rejects_piggybacked_progress() {
        let mut frame = Vec::new();
        let progress = [ProgressEntry {
            query: QueryId(1),
            weight: Weight(1),
            steps: 1,
        }];
        encode_batch_into(&mut frame, &[], &progress);
        assert!(decode_batch(Bytes::from(frame)).is_err());
    }

    #[test]
    fn borrowed_decoder_rejects_trailing_garbage() {
        let mut frame = Vec::new();
        encode_batch_into(&mut frame, &sample_batch(), &[]);
        frame.push(0xFF);
        assert!(decode_batch_borrowed(&frame).is_err());
        let truncated = &frame[..frame.len() - 4];
        assert!(decode_batch_borrowed(truncated).is_err());
    }

    #[test]
    fn traverser_wire_bytes_is_exact() {
        for t in sample_batch() {
            let mut buf = BytesMut::new();
            encode_traverser(&mut buf, &t);
            assert_eq!(t.wire_bytes(), buf.len(), "wire_bytes drifted for {t:?}");
        }
    }

    #[test]
    fn pool_recycles_and_tracks_high_water() {
        let pool = BytesPool::new();
        let a = pool.get();
        let b = pool.get();
        assert_eq!(pool.stats().high_water, 2);
        assert_eq!(pool.stats().allocated, 2);
        pool.put(a);
        pool.put(b);
        assert_eq!(pool.stats().outstanding, 0);
        let c = pool.get();
        assert_eq!(pool.stats().recycled, 1);
        assert!(c.is_empty(), "recycled frames come back cleared");
        pool.put(c);
        // Oversized frames are dropped on return, not retained.
        let mut jumbo = pool.get();
        jumbo.resize(POOL_RETAIN_MAX + 1, 0);
        let cap = jumbo.capacity();
        pool.put(jumbo);
        let next = pool.get();
        assert!(next.capacity() < cap);
    }

    #[test]
    fn value_wire_size_matches_encoding() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Int(7),
            Value::Float(1.5),
            Value::str("twelve bytes"),
            Value::Vertex(VertexId(3)),
            Value::list(vec![Value::Int(1), Value::str("x")]),
        ] {
            let mut buf = BytesMut::new();
            encode_value(&mut buf, &v);
            assert_eq!(
                value_wire_size(&v),
                buf.len(),
                "size model drifted for {v:?}"
            );
        }
    }

    #[test]
    fn ctrl_wire_sizes_scale_with_payload() {
        let small = CoordMsg::Rows {
            query: QueryId(1),
            rows: vec![vec![Value::Int(1)]],
        };
        let big = CoordMsg::Rows {
            query: QueryId(1),
            rows: (0..50)
                .map(|i| vec![Value::Int(i), Value::str("padding")])
                .collect(),
        };
        assert!(coord_msg_wire_size(&big) > coord_msg_wire_size(&small));

        let w = WorkerMsg::Batch(vec![Traverser::root(
            QueryId(1),
            0,
            VertexId(1),
            1,
            Weight(1),
        )]);
        assert!(worker_msg_wire_size(&w) > worker_msg_wire_size(&WorkerMsg::Shutdown));
        // Every fixed-size control variant is charged a nonzero cost.
        assert!(worker_msg_wire_size(&WorkerMsg::QueryEnd { query: QueryId(1) }) > 0);
        assert!(coord_msg_wire_size(&CoordMsg::Tick) > 0);
    }
}
