//! Compact binary wire codec for traverser batches.
//!
//! Messages crossing simulated node boundaries are *really* serialized and
//! deserialized (same-node messages take the shared-memory shortcut and
//! skip this entirely, §IV-B). Hand-rolled rather than a serde format so
//! the byte layout — and therefore the network cost model and the 8 KB
//! flush threshold — is deterministic and tight.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use graphdance_common::{GdError, GdResult, QueryId, Value, VertexId};
use graphdance_pstm::{Row, Traverser, Weight};
use graphdance_query::plan::Plan;

use crate::messages::{BspSignal, CoordMsg, WorkerMsg};

const TAG_NULL: u8 = 0;
const TAG_BOOL_FALSE: u8 = 1;
const TAG_BOOL_TRUE: u8 = 2;
const TAG_INT: u8 = 3;
const TAG_FLOAT: u8 = 4;
const TAG_STR: u8 = 5;
const TAG_VERTEX: u8 = 6;
const TAG_LIST: u8 = 7;

/// Encode one value.
pub fn encode_value(buf: &mut BytesMut, v: &Value) {
    match v {
        Value::Null => buf.put_u8(TAG_NULL),
        Value::Bool(false) => buf.put_u8(TAG_BOOL_FALSE),
        Value::Bool(true) => buf.put_u8(TAG_BOOL_TRUE),
        Value::Int(i) => {
            buf.put_u8(TAG_INT);
            buf.put_i64_le(*i);
        }
        Value::Float(f) => {
            buf.put_u8(TAG_FLOAT);
            buf.put_f64_le(*f);
        }
        Value::Str(s) => {
            buf.put_u8(TAG_STR);
            buf.put_u32_le(s.len() as u32);
            buf.put_slice(s.as_bytes());
        }
        Value::Vertex(v) => {
            buf.put_u8(TAG_VERTEX);
            buf.put_u64_le(v.0);
        }
        Value::List(l) => {
            buf.put_u8(TAG_LIST);
            buf.put_u32_le(l.len() as u32);
            for x in l.iter() {
                encode_value(buf, x);
            }
        }
    }
}

fn need(buf: &Bytes, n: usize) -> GdResult<()> {
    if buf.remaining() < n {
        Err(GdError::Internal("wire message truncated".into()))
    } else {
        Ok(())
    }
}

/// Decode one value.
pub fn decode_value(buf: &mut Bytes) -> GdResult<Value> {
    need(buf, 1)?;
    match buf.get_u8() {
        TAG_NULL => Ok(Value::Null),
        TAG_BOOL_FALSE => Ok(Value::Bool(false)),
        TAG_BOOL_TRUE => Ok(Value::Bool(true)),
        TAG_INT => {
            need(buf, 8)?;
            Ok(Value::Int(buf.get_i64_le()))
        }
        TAG_FLOAT => {
            need(buf, 8)?;
            Ok(Value::Float(buf.get_f64_le()))
        }
        TAG_STR => {
            need(buf, 4)?;
            let n = buf.get_u32_le() as usize;
            need(buf, n)?;
            let raw = buf.split_to(n);
            let s = std::str::from_utf8(&raw)
                .map_err(|_| GdError::Internal("invalid utf8 on wire".into()))?;
            Ok(Value::str(s))
        }
        TAG_VERTEX => {
            need(buf, 8)?;
            Ok(Value::Vertex(VertexId(buf.get_u64_le())))
        }
        TAG_LIST => {
            need(buf, 4)?;
            let n = buf.get_u32_le() as usize;
            let mut items = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                items.push(decode_value(buf)?);
            }
            Ok(Value::list(items))
        }
        t => Err(GdError::Internal(format!("unknown value tag {t}"))),
    }
}

/// Encode one traverser.
pub fn encode_traverser(buf: &mut BytesMut, t: &Traverser) {
    buf.put_u64_le(t.query.0);
    buf.put_u16_le(t.pipeline);
    buf.put_u16_le(t.pc);
    buf.put_u64_le(t.vertex.0);
    buf.put_u64_le(t.weight.0);
    buf.put_u32_le(t.depth);
    buf.put_u8(u8::from(t.aux_key.is_some()));
    if let Some(k) = &t.aux_key {
        encode_value(buf, k);
    }
    buf.put_u16_le(t.locals.len() as u16);
    for v in &t.locals {
        encode_value(buf, v);
    }
}

/// Decode one traverser.
pub fn decode_traverser(buf: &mut Bytes) -> GdResult<Traverser> {
    need(buf, 8 + 2 + 2 + 8 + 8 + 4 + 1)?;
    let query = QueryId(buf.get_u64_le());
    let pipeline = buf.get_u16_le();
    let pc = buf.get_u16_le();
    let vertex = VertexId(buf.get_u64_le());
    let weight = Weight(buf.get_u64_le());
    let depth = buf.get_u32_le();
    let has_aux = buf.get_u8() != 0;
    let aux_key = if has_aux {
        Some(decode_value(buf)?)
    } else {
        None
    };
    need(buf, 2)?;
    let n = buf.get_u16_le() as usize;
    let mut locals = Vec::with_capacity(n);
    for _ in 0..n {
        locals.push(decode_value(buf)?);
    }
    Ok(Traverser {
        query,
        pipeline,
        pc,
        vertex,
        locals,
        weight,
        depth,
        aux_key,
    })
}

/// Encode a batch of traversers (one wire payload).
pub fn encode_batch(traversers: &[Traverser]) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 * traversers.len());
    buf.put_u32_le(traversers.len() as u32);
    for t in traversers {
        encode_traverser(&mut buf, t);
    }
    buf.freeze()
}

/// Decode a batch of traversers.
pub fn decode_batch(mut buf: Bytes) -> GdResult<Vec<Traverser>> {
    need(&buf, 4)?;
    let n = buf.get_u32_le() as usize;
    let mut out = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        out.push(decode_traverser(&mut buf)?);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Control-plane wire sizing
// ---------------------------------------------------------------------------

/// Approximate encoded size of one value (mirrors [`encode_value`]'s layout
/// without allocating).
pub fn value_wire_size(v: &Value) -> usize {
    1 + match v {
        Value::Null | Value::Bool(_) => 0,
        Value::Int(_) | Value::Float(_) | Value::Vertex(_) => 8,
        Value::Str(s) => 4 + s.len(),
        Value::List(l) => 4 + l.iter().map(value_wire_size).sum::<usize>(),
    }
}

/// Approximate encoded size of one result row.
pub fn row_wire_size(row: &Row) -> usize {
    2 + row.iter().map(value_wire_size).sum::<usize>()
}

/// Approximate plan-shipping cost: a fixed header plus per-stage, per-step,
/// and per-expression contributions. Coarse by design — it only needs to
/// scale with plan complexity so `QueryBegin` is charged more than a bare
/// control signal.
pub fn plan_wire_size(plan: &Plan) -> usize {
    16 + plan
        .stages
        .iter()
        .map(|s| {
            32 + 16 * s.output.len()
                + 24 * s.joins.len()
                + s.pipelines
                    .iter()
                    .map(|p| 16 + 24 * p.steps.len())
                    .sum::<usize>()
        })
        .sum::<usize>()
}

/// Modeled wire size of a control-plane message to a worker.
///
/// The match is deliberately exhaustive — **no wildcard arm** — so adding a
/// [`WorkerMsg`] variant is a compile error until its cost is modeled here.
/// `cargo xtask check` (the `codec-exhaustive` lint) additionally verifies
/// every variant name appears in this file.
pub fn worker_msg_wire_size(msg: &WorkerMsg) -> usize {
    match msg {
        WorkerMsg::Batch(ts) => 4 + ts.iter().map(Traverser::approx_bytes).sum::<usize>(),
        WorkerMsg::QueryBegin { ctx, stage: _ } => {
            16 + plan_wire_size(&ctx.plan) + ctx.params.iter().map(value_wire_size).sum::<usize>()
        }
        WorkerMsg::StageBegin { .. } => 16,
        WorkerMsg::StartSource { .. } => 24,
        WorkerMsg::GatherAgg { .. } => 12,
        WorkerMsg::QueryEnd { .. } => 12,
        WorkerMsg::Bsp(BspSignal::RunStep { .. }) => 16,
        WorkerMsg::Bsp(BspSignal::Probe { .. }) => 20,
        WorkerMsg::Shutdown => 4,
    }
}

/// Modeled wire size of a control-plane message to the coordinator.
///
/// Exhaustive on purpose, like [`worker_msg_wire_size`]; see there.
pub fn coord_msg_wire_size(msg: &CoordMsg) -> usize {
    match msg {
        CoordMsg::Submit { plan, params, .. } => {
            // Client submissions never cross the simulated wire (the client
            // talks to the coordinator's node directly), but the arm exists
            // so the match stays exhaustive.
            16 + plan_wire_size(plan) + params.iter().map(value_wire_size).sum::<usize>()
        }
        CoordMsg::Progress { .. } => 32,
        CoordMsg::Rows { rows, .. } => 12 + rows.iter().map(row_wire_size).sum::<usize>(),
        CoordMsg::AggPartial { state, .. } => 16 + state.as_ref().map_or(0, |s| s.approx_bytes()),
        CoordMsg::WorkerError { .. } => 64,
        CoordMsg::BspStepDone { .. } => 56,
        CoordMsg::BspParked { .. } => 32,
        CoordMsg::Tick => 4,
        CoordMsg::Shutdown => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_value(v: Value) {
        let mut buf = BytesMut::new();
        encode_value(&mut buf, &v);
        let mut b = buf.freeze();
        assert_eq!(decode_value(&mut b).unwrap(), v);
        assert!(b.is_empty(), "no trailing bytes");
    }

    #[test]
    fn value_roundtrips() {
        roundtrip_value(Value::Null);
        roundtrip_value(Value::Bool(true));
        roundtrip_value(Value::Bool(false));
        roundtrip_value(Value::Int(-42));
        roundtrip_value(Value::Int(i64::MAX));
        roundtrip_value(Value::Float(3.5));
        roundtrip_value(Value::str(""));
        roundtrip_value(Value::str("hello – unicode ✓"));
        roundtrip_value(Value::Vertex(VertexId(u64::MAX)));
        roundtrip_value(Value::list(vec![
            Value::Int(1),
            Value::list(vec![Value::str("nested")]),
            Value::Null,
        ]));
    }

    #[test]
    fn traverser_roundtrip() {
        let mut t = Traverser::root(QueryId(9), 2, VertexId(77), 3, Weight(0xDEAD));
        t.pc = 5;
        t.depth = 4;
        t.set_slot(1, Value::str("x"));
        t.aux_key = Some(Value::Vertex(VertexId(3)));
        let mut buf = BytesMut::new();
        encode_traverser(&mut buf, &t);
        let mut b = buf.freeze();
        assert_eq!(decode_traverser(&mut b).unwrap(), t);
    }

    #[test]
    fn batch_roundtrip() {
        let ts: Vec<Traverser> = (0..10)
            .map(|i| {
                let mut t = Traverser::root(QueryId(1), 0, VertexId(i), 2, Weight(i));
                t.set_slot(0, Value::Int(i as i64));
                t
            })
            .collect();
        let wire = encode_batch(&ts);
        assert_eq!(decode_batch(wire).unwrap(), ts);
    }

    #[test]
    fn truncated_input_is_an_error() {
        let mut t = Traverser::root(QueryId(1), 0, VertexId(1), 1, Weight(1));
        t.set_slot(0, Value::str("hello"));
        let mut buf = BytesMut::new();
        encode_traverser(&mut buf, &t);
        let full = buf.freeze();
        for cut in [0, 1, 8, full.len() - 1] {
            let mut partial = full.slice(..cut);
            assert!(decode_traverser(&mut partial).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn garbage_tag_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(99);
        assert!(decode_value(&mut buf.freeze()).is_err());
    }

    #[test]
    fn empty_batch() {
        let wire = encode_batch(&[]);
        assert_eq!(wire.len(), 4);
        assert!(decode_batch(wire).unwrap().is_empty());
    }

    #[test]
    fn value_wire_size_matches_encoding() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Int(7),
            Value::Float(1.5),
            Value::str("twelve bytes"),
            Value::Vertex(VertexId(3)),
            Value::list(vec![Value::Int(1), Value::str("x")]),
        ] {
            let mut buf = BytesMut::new();
            encode_value(&mut buf, &v);
            assert_eq!(
                value_wire_size(&v),
                buf.len(),
                "size model drifted for {v:?}"
            );
        }
    }

    #[test]
    fn ctrl_wire_sizes_scale_with_payload() {
        let small = CoordMsg::Rows {
            query: QueryId(1),
            rows: vec![vec![Value::Int(1)]],
        };
        let big = CoordMsg::Rows {
            query: QueryId(1),
            rows: (0..50)
                .map(|i| vec![Value::Int(i), Value::str("padding")])
                .collect(),
        };
        assert!(coord_msg_wire_size(&big) > coord_msg_wire_size(&small));

        let w = WorkerMsg::Batch(vec![Traverser::root(
            QueryId(1),
            0,
            VertexId(1),
            1,
            Weight(1),
        )]);
        assert!(worker_msg_wire_size(&w) > worker_msg_wire_size(&WorkerMsg::Shutdown));
        // Every fixed-size control variant is charged a nonzero cost.
        assert!(worker_msg_wire_size(&WorkerMsg::QueryEnd { query: QueryId(1) }) > 0);
        assert!(coord_msg_wire_size(&CoordMsg::Tick) > 0);
    }
}
