//! One OS process of a **multi-process** GraphDance cluster.
//!
//! [`crate::engine::GraphDance`] runs the whole cluster in one process. A
//! [`NodeRuntime`] runs exactly one node of it: the local node's workers,
//! the local egress pump, and — on the **head** node (node 0) — the
//! coordinator. Remote traffic leaves through a real [`crate::transport`]
//! backend instead of in-process channels; the transport's reader threads
//! deliver inbound packets straight into the local [`Fabric`].
//!
//! Every process builds the full graph deterministically from the same
//! spec (same seed ⇒ bit-identical data on every node), then hosts only
//! the partitions owned by its node. Worker and coordinator channels are
//! created for *all* slots so the fabric's delivery tables stay
//! fully indexed, but the receivers of remote slots are dropped at
//! startup — a misrouted frame is therefore silently ignored rather than
//! executed on the wrong node's copy.
//!
//! Queries are submitted on the head process only; follower processes just
//! serve traversals. The runtime is read-only (no transaction system):
//! snapshot timestamps are passed explicitly or default to the live bulk
//! snapshot.
//!
//! ## Shutdown
//!
//! [`NodeRuntime::shutdown`] follows the drain-before-close contract of
//! the transport seam: worker/coordinator stop messages first, then
//! [`Fabric::shutdown`] enqueues the egress `Shutdown` *behind* every
//! already-flushed packet (the egress channel is FIFO), and the pump's
//! `end_of_stream` appends GOODBYE and joins the transport's reader
//! threads. Peers therefore see every flushed frame before EOF. For the
//! mesh to unwind, every process must be shut down — each writes its
//! GOODBYEs before waiting on its peers', so concurrent shutdowns cannot
//! deadlock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::channel::{bounded, unbounded, Sender};

use graphdance_common::time::now;
use graphdance_common::{GdError, GdResult, NodeId, QueryId, Value, WorkerId};
use graphdance_pstm::Row;
use graphdance_query::plan::Plan;
use graphdance_storage::{Graph, Timestamp};

use crate::config::EngineConfig;
use crate::coordinator::Coordinator;
use crate::engine::{QueryHandle, QueryResult};
use crate::messages::{CoordMsg, WorkerMsg};
use crate::net::Fabric;
use crate::transport::Transport;
use crate::worker::Worker;

/// One node's worth of a multi-process cluster (see the module docs).
pub struct NodeRuntime {
    graph: Graph,
    fabric: Arc<Fabric>,
    config: EngineConfig,
    local_node: NodeId,
    coord_tx: Sender<CoordMsg>,
    worker_tx: Vec<Sender<WorkerMsg>>,
    threads: Vec<std::thread::JoinHandle<()>>,
    /// Client-side query-id allocator (head process only; mirrors
    /// [`crate::engine::GraphDance`]'s).
    // lint: allow(adhoc-counter) query-id allocator, not a metric
    next_qid: AtomicU64,
}

impl NodeRuntime {
    /// Start this process's slice of the cluster: the local node's worker
    /// threads, the local egress pump over `transport`, and (if
    /// `local_node` is node 0) the coordinator.
    ///
    /// `graph` must be the **full** graph — identical in every process —
    /// built for the topology `config` describes. The transport must have
    /// been bound already; its mesh is established inside this call (it
    /// blocks until every outbound peer stream is up or times out).
    ///
    /// # Panics
    /// Panics if the graph topology does not match `config`, or if
    /// `local_node` is outside the topology.
    pub fn start(
        graph: Graph,
        config: EngineConfig,
        local_node: NodeId,
        transport: Arc<dyn Transport>,
    ) -> NodeRuntime {
        assert_eq!(
            graph.partitioner().num_parts(),
            config.num_parts(),
            "graph partition count must match the engine topology"
        );
        assert!(
            local_node.0 < config.nodes,
            "node {} outside a {}-node topology",
            local_node.0,
            config.nodes
        );
        let p = config.num_parts() as usize;
        let mut worker_tx = Vec::with_capacity(p);
        let mut worker_rx = Vec::with_capacity(p);
        for _ in 0..p {
            let (tx, rx) = unbounded();
            worker_tx.push(tx);
            worker_rx.push(rx);
        }
        let (coord_tx, coord_rx) = unbounded();
        let (fabric, mut threads) = Fabric::new_with_transport(
            &config,
            local_node,
            worker_tx.clone(),
            coord_tx.clone(),
            transport,
        );
        // Only the local node's workers run here; the other slots' inbox
        // receivers die on this floor, so a frame misdelivered to a remote
        // slot is dropped instead of executed against the wrong replica.
        for (i, inbox) in worker_rx.into_iter().enumerate() {
            let id = WorkerId(i as u32);
            if fabric.partitioner().node_of_worker(id) != local_node {
                continue;
            }
            let worker = Worker::new(id, graph.clone(), &fabric, inbox, &config);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("gd-worker-{i}"))
                    .spawn(move || worker.run())
                    // Process startup, before any query is accepted.
                    .expect("spawn worker"), // lint: allow(hot-path-panics)
            );
        }
        if local_node == NodeId(0) {
            let coordinator = Coordinator::new(graph.clone(), &fabric, coord_rx, &config);
            threads.push(
                std::thread::Builder::new()
                    .name("gd-coordinator".into())
                    .spawn(move || coordinator.run())
                    // Process startup, before any query is accepted.
                    .expect("spawn coordinator"), // lint: allow(hot-path-panics)
            );
        }
        // (coord_rx of a follower process drops here: worker→coordinator
        // traffic always targets node 0, so nothing sends into it.)
        NodeRuntime {
            graph,
            fabric,
            config,
            local_node,
            coord_tx,
            worker_tx,
            threads,
            // lint: allow(adhoc-counter) query-id allocator, not a metric
            next_qid: AtomicU64::new(1),
        }
    }

    /// The underlying (full, process-local) graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// This process's node id.
    pub fn node(&self) -> NodeId {
        self.local_node
    }

    /// Does this process host the coordinator (node 0)?
    pub fn is_head(&self) -> bool {
        self.local_node == NodeId(0)
    }

    /// The local network fabric (counters, per-process ledger).
    pub fn fabric(&self) -> &Arc<Fabric> {
        &self.fabric
    }

    /// Submit a query at the live bulk snapshot. Head process only.
    pub fn submit(&self, plan: &Plan, params: Vec<Value>) -> QueryHandle {
        self.submit_at(plan, params, graphdance_storage::TS_LIVE - 1)
    }

    /// Submit at an explicit snapshot timestamp. Head process only: on a
    /// follower the handle resolves immediately to an error (followers
    /// have no coordinator to drive the query).
    pub fn submit_at(&self, plan: &Plan, params: Vec<Value>, read_ts: Timestamp) -> QueryHandle {
        let id = QueryId(
            self.next_qid
                // sync: uniqueness only; see field docs
                .fetch_add(1, Ordering::Relaxed),
        );
        let (reply, rx) = bounded(1);
        if !self.is_head() {
            let _ = reply.send(Err(GdError::InvalidProgram(
                "queries must be submitted on the head node (node 0)".into(),
            )));
            return QueryHandle::internal_new(id, rx);
        }
        let msg = CoordMsg::Submit {
            query: id,
            plan: plan.clone(),
            params,
            read_ts: Some(read_ts),
            reply,
            submitted_at: now(),
            deadline: None,
        };
        if self.coord_tx.send(msg).is_err() {
            // Coordinator gone: synthesize the failure.
            let (tx, rx2) = bounded(1);
            let _ = tx.send(Err(GdError::EngineClosed));
            return QueryHandle::internal_new(id, rx2);
        }
        QueryHandle::internal_new(id, rx)
    }

    /// Submit and wait; returns just the rows. Head process only.
    pub fn query(&self, plan: &Plan, params: Vec<Value>) -> GdResult<Vec<Row>> {
        Ok(self.submit(plan, params).wait()?.rows)
    }

    /// Submit and wait; returns the full result. Head process only.
    pub fn query_timed(&self, plan: &Plan, params: Vec<Value>) -> GdResult<QueryResult> {
        self.submit(plan, params).wait()
    }

    /// Stop this process's slice of the cluster (see the module docs for
    /// the drain-before-close ordering). In-flight queries fail with
    /// `EngineClosed`. Blocks until the transport mesh has unwound, so
    /// every process of the cluster must be shut down for any to return.
    pub fn shutdown(mut self) {
        let _ = self.coord_tx.send(CoordMsg::Shutdown);
        for (i, tx) in self.worker_tx.iter().enumerate() {
            if self.fabric.partitioner().node_of_worker(WorkerId(i as u32)) == self.local_node {
                let _ = tx.send(WorkerMsg::Shutdown);
            }
        }
        self.fabric.shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{PeerAddr, TcpTransport, TcpTransportConfig};
    use graphdance_common::{Partitioner, VertexId};
    use graphdance_query::QueryBuilder;
    use graphdance_storage::GraphBuilder;

    fn ring(n: u64, parts: Partitioner) -> Graph {
        let mut b = GraphBuilder::new(parts);
        let person = b.schema_mut().register_vertex_label("Person");
        let knows = b.schema_mut().register_edge_label("knows");
        for i in 0..n {
            b.add_vertex(VertexId(i), person, vec![]).unwrap();
        }
        for i in 0..n {
            b.add_edge(VertexId(i), knows, VertexId((i + 1) % n), vec![])
                .unwrap();
        }
        b.finish()
    }

    fn khop_plan(graph: &Graph, k: i64) -> Plan {
        let mut b = QueryBuilder::new(graph.schema());
        b.v_param(0);
        let c = b.alloc_slot();
        b.repeat(1, k, c, |r| {
            r.out("knows");
        });
        b.dedup();
        b.compile().unwrap()
    }

    /// Two `NodeRuntime`s in one test process, meshed over loopback TCP:
    /// the cheapest end-to-end check that the multi-process wiring routes
    /// remote traversals through real sockets and still answers correctly.
    #[test]
    fn two_nodes_over_loopback_tcp_answer_khop() {
        let g = ring(16, Partitioner::new(2, 2));
        let cfg = EngineConfig::new(2, 2);
        // Bind both listeners on ephemeral ports first, then exchange the
        // resolved addresses — same handshake the process launcher uses.
        let t0 = TcpTransport::bind(TcpTransportConfig::new(
            NodeId(0),
            vec![
                PeerAddr::parse("127.0.0.1:0").unwrap(),
                PeerAddr::parse("127.0.0.1:0").unwrap(),
            ],
        ))
        .unwrap();
        let t1 = TcpTransport::bind(TcpTransportConfig::new(
            NodeId(1),
            vec![
                PeerAddr::parse("127.0.0.1:0").unwrap(),
                PeerAddr::parse("127.0.0.1:0").unwrap(),
            ],
        ))
        .unwrap();
        let peers = vec![t0.local_addr().clone(), t1.local_addr().clone()];
        t0.set_peers(peers.clone());
        t1.set_peers(peers);

        // The head's transport dials node 1 inside start(); bring node 1 up
        // on its own thread so both sides of the mesh can come up at once.
        let head_transport = Arc::clone(&t0);
        let g1 = g.clone();
        let cfg1 = cfg.clone();
        let follower = std::thread::spawn(move || NodeRuntime::start(g1, cfg1, NodeId(1), t1));
        let head = NodeRuntime::start(g.clone(), cfg, NodeId(0), t0);
        let follower = follower.join().unwrap();
        assert!(head.is_head());
        assert!(!follower.is_head());

        let plan = khop_plan(&g, 4);
        let mut rows = head.query(&plan, vec![Value::Vertex(VertexId(0))]).unwrap();
        rows.sort_by(|a, b| a[0].cmp_total(&b[0]));
        let got: Vec<u64> = rows.iter().map(|r| r[0].as_vertex().unwrap().0).collect();
        assert_eq!(got, vec![1, 2, 3, 4]);

        // Remote traffic really crossed the sockets (a ring hashed over 4
        // partitions cannot stay node-local for 4 hops).
        let sock = head_transport.stats();
        assert!(sock.frames_sent > 0, "head wrote real PACKET frames");
        assert!(sock.frames_recv > 0, "head read real PACKET frames");
        assert!(
            sock.write_syscalls >= sock.frames_sent,
            "one write_all per combined packet"
        );

        // Both sides must shut down for the mesh to unwind.
        let f = std::thread::spawn(move || follower.shutdown());
        head.shutdown();
        f.join().unwrap();
    }

    /// Follower processes refuse submissions instead of wedging.
    #[test]
    fn follower_submission_fails_fast() {
        let g = ring(8, Partitioner::new(2, 1));
        let cfg = EngineConfig::new(2, 1);
        let t0 = TcpTransport::bind(TcpTransportConfig::new(
            NodeId(0),
            vec![
                PeerAddr::parse("127.0.0.1:0").unwrap(),
                PeerAddr::parse("127.0.0.1:0").unwrap(),
            ],
        ))
        .unwrap();
        let t1 = TcpTransport::bind(TcpTransportConfig::new(
            NodeId(1),
            vec![
                PeerAddr::parse("127.0.0.1:0").unwrap(),
                PeerAddr::parse("127.0.0.1:0").unwrap(),
            ],
        ))
        .unwrap();
        let peers = vec![t0.local_addr().clone(), t1.local_addr().clone()];
        t0.set_peers(peers.clone());
        t1.set_peers(peers);
        let g1 = g.clone();
        let follower = std::thread::spawn(move || {
            NodeRuntime::start(g1, EngineConfig::new(2, 1), NodeId(1), t1)
        });
        let head = NodeRuntime::start(g.clone(), cfg, NodeId(0), t0);
        let follower = follower.join().unwrap();

        let plan = khop_plan(&g, 1);
        let err = follower
            .submit(&plan, vec![Value::Vertex(VertexId(0))])
            .wait()
            .unwrap_err();
        assert!(matches!(err, GdError::InvalidProgram(_)), "{err:?}");

        let f = std::thread::spawn(move || follower.shutdown());
        head.shutdown();
        f.join().unwrap();
    }
}
