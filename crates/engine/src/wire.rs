//! Full control-plane wire codec for real (socket) transports.
//!
//! The in-process fabrics move [`WorkerMsg`] / [`CoordMsg`] values through
//! channels and only *model* their wire size ([`crate::codec`]). A real
//! transport has to put the bytes on a socket, so this module gives every
//! cross-node message an exact, deterministic binary encoding. Hand-rolled
//! like the batch codec — no serde format — so the layout is stable and the
//! decoder surfaces `GdError` on any truncation or corruption instead of
//! panicking.
//!
//! Matches are deliberately exhaustive (no wildcard arms): adding a message
//! or plan variant is a compile error until its encoding is defined here.
//!
//! Two messages intentionally do not cross the wire:
//! - [`CoordMsg::Submit`] carries the client's crossbeam reply channel;
//!   clients always talk to the coordinator's own node. Encoding it is an
//!   error, not a panic.
//! - Map-shaped aggregation partials ([`AggState::GroupCount`]/`GroupSum`)
//!   are encoded with entries sorted by key so the same state always
//!   produces the same bytes (hash-map iteration order is not stable).

use std::sync::Arc;

use bytes::BufMut;

use graphdance_common::value::ValueKey;
use graphdance_common::{
    EdgeId, FxHashMap, GdError, GdResult, Label, PartId, PropKey, QueryId, Value, VertexId,
    WorkerId,
};
use graphdance_pstm::{AggState, Row, Weight};
use graphdance_query::expr::{CmpOp, Expr};
use graphdance_query::plan::{
    AggFunc, AggSpec, GroupOrder, JoinSide, JoinSpec, Order, Pipeline, Plan, PlanStep, SourceSpec,
    Stage,
};
use graphdance_storage::{Direction, TelEntry, TelList, VertexRecord, VertexSegment};

use crate::codec::{self, Reader};
use crate::messages::{BspSignal, CoordMsg, MigPhase, QueryCtx, WorkerMsg};
use crate::net::WireMsg;

fn bad(what: &str, tag: u8) -> GdError {
    GdError::Internal(format!("wire: unknown {what} tag {tag}"))
}

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(r: &mut Reader<'_>) -> GdResult<String> {
    let n = r.u32()? as usize;
    let raw = r.take(n)?;
    std::str::from_utf8(raw)
        .map(str::to_owned)
        .map_err(|_| GdError::Internal("wire: invalid utf8".into()))
}

fn put_usize(buf: &mut Vec<u8>, n: usize) {
    buf.put_u32_le(n as u32);
}

fn get_usize(r: &mut Reader<'_>) -> GdResult<usize> {
    Ok(r.u32()? as usize)
}

fn put_values(buf: &mut Vec<u8>, vs: &[Value]) {
    put_usize(buf, vs.len());
    for v in vs {
        codec::encode_value(buf, v);
    }
}

fn get_values(r: &mut Reader<'_>) -> GdResult<Vec<Value>> {
    let n = get_usize(r)?;
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        out.push(codec::decode_value_borrowed(r)?);
    }
    Ok(out)
}

fn put_rows(buf: &mut Vec<u8>, rows: &[Row]) {
    put_usize(buf, rows.len());
    for row in rows {
        put_values(buf, row);
    }
}

fn get_rows(r: &mut Reader<'_>) -> GdResult<Vec<Row>> {
    let n = get_usize(r)?;
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        out.push(get_values(r)?);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// ValueKey
// ---------------------------------------------------------------------------
//
// Same tag space as the Value codec, with `Float` keyed by IEEE-754 bits.

fn encode_value_key(buf: &mut Vec<u8>, k: &ValueKey) {
    match k {
        ValueKey::Null => buf.put_u8(0),
        ValueKey::Bool(false) => buf.put_u8(1),
        ValueKey::Bool(true) => buf.put_u8(2),
        ValueKey::Int(i) => {
            buf.put_u8(3);
            buf.put_i64_le(*i);
        }
        ValueKey::Float(bits) => {
            buf.put_u8(4);
            buf.put_u64_le(*bits);
        }
        ValueKey::Str(s) => {
            buf.put_u8(5);
            put_str(buf, s);
        }
        ValueKey::Vertex(v) => {
            buf.put_u8(6);
            buf.put_u64_le(v.0);
        }
        ValueKey::List(l) => {
            buf.put_u8(7);
            put_usize(buf, l.len());
            for x in l {
                encode_value_key(buf, x);
            }
        }
    }
}

fn decode_value_key(r: &mut Reader<'_>) -> GdResult<ValueKey> {
    match r.u8()? {
        0 => Ok(ValueKey::Null),
        1 => Ok(ValueKey::Bool(false)),
        2 => Ok(ValueKey::Bool(true)),
        3 => Ok(ValueKey::Int(r.i64()?)),
        4 => Ok(ValueKey::Float(r.u64()?)),
        5 => Ok(ValueKey::Str(Arc::from(get_str(r)?.as_str()))),
        6 => Ok(ValueKey::Vertex(VertexId(r.u64()?))),
        7 => {
            let n = get_usize(r)?;
            let mut out = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                out.push(decode_value_key(r)?);
            }
            Ok(ValueKey::List(out))
        }
        t => Err(bad("value-key", t)),
    }
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

fn encode_cmp_op(buf: &mut Vec<u8>, op: CmpOp) {
    buf.put_u8(match op {
        CmpOp::Eq => 0,
        CmpOp::Ne => 1,
        CmpOp::Lt => 2,
        CmpOp::Le => 3,
        CmpOp::Gt => 4,
        CmpOp::Ge => 5,
    });
}

fn decode_cmp_op(r: &mut Reader<'_>) -> GdResult<CmpOp> {
    match r.u8()? {
        0 => Ok(CmpOp::Eq),
        1 => Ok(CmpOp::Ne),
        2 => Ok(CmpOp::Lt),
        3 => Ok(CmpOp::Le),
        4 => Ok(CmpOp::Gt),
        5 => Ok(CmpOp::Ge),
        t => Err(bad("cmp-op", t)),
    }
}

fn put_exprs(buf: &mut Vec<u8>, xs: &[Expr]) {
    put_usize(buf, xs.len());
    for x in xs {
        encode_expr(buf, x);
    }
}

fn get_exprs(r: &mut Reader<'_>) -> GdResult<Vec<Expr>> {
    let n = get_usize(r)?;
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        out.push(decode_expr(r)?);
    }
    Ok(out)
}

fn encode_expr(buf: &mut Vec<u8>, e: &Expr) {
    match e {
        Expr::Const(v) => {
            buf.put_u8(0);
            codec::encode_value(buf, v);
        }
        Expr::Param(i) => {
            buf.put_u8(1);
            put_usize(buf, *i);
        }
        Expr::Slot(s) => {
            buf.put_u8(2);
            buf.put_u8(*s);
        }
        Expr::VertexId => buf.put_u8(3),
        Expr::Prop(k) => {
            buf.put_u8(4);
            buf.put_u16_le(k.0);
        }
        Expr::LabelIs(l) => {
            buf.put_u8(5);
            buf.put_u16_le(l.0);
        }
        Expr::Cmp(a, op, b) => {
            buf.put_u8(6);
            encode_expr(buf, a);
            encode_cmp_op(buf, *op);
            encode_expr(buf, b);
        }
        Expr::And(xs) => {
            buf.put_u8(7);
            put_exprs(buf, xs);
        }
        Expr::Or(xs) => {
            buf.put_u8(8);
            put_exprs(buf, xs);
        }
        Expr::Not(x) => {
            buf.put_u8(9);
            encode_expr(buf, x);
        }
        Expr::In(x, set) => {
            buf.put_u8(10);
            encode_expr(buf, x);
            put_values(buf, set);
        }
        Expr::IsNull(x) => {
            buf.put_u8(11);
            encode_expr(buf, x);
        }
        Expr::Add(a, b) => {
            buf.put_u8(12);
            encode_expr(buf, a);
            encode_expr(buf, b);
        }
        Expr::Sub(a, b) => {
            buf.put_u8(13);
            encode_expr(buf, a);
            encode_expr(buf, b);
        }
        Expr::Mul(a, b) => {
            buf.put_u8(14);
            encode_expr(buf, a);
            encode_expr(buf, b);
        }
        Expr::Tuple(xs) => {
            buf.put_u8(15);
            put_exprs(buf, xs);
        }
        Expr::Month(x) => {
            buf.put_u8(16);
            encode_expr(buf, x);
        }
        Expr::Day(x) => {
            buf.put_u8(17);
            encode_expr(buf, x);
        }
    }
}

fn decode_expr(r: &mut Reader<'_>) -> GdResult<Expr> {
    match r.u8()? {
        0 => Ok(Expr::Const(codec::decode_value_borrowed(r)?)),
        1 => Ok(Expr::Param(get_usize(r)?)),
        2 => Ok(Expr::Slot(r.u8()?)),
        3 => Ok(Expr::VertexId),
        4 => Ok(Expr::Prop(PropKey(r.u16()?))),
        5 => Ok(Expr::LabelIs(Label(r.u16()?))),
        6 => {
            let a = decode_expr(r)?;
            let op = decode_cmp_op(r)?;
            let b = decode_expr(r)?;
            Ok(Expr::Cmp(Box::new(a), op, Box::new(b)))
        }
        7 => Ok(Expr::And(get_exprs(r)?)),
        8 => Ok(Expr::Or(get_exprs(r)?)),
        9 => Ok(Expr::Not(Box::new(decode_expr(r)?))),
        10 => {
            let x = decode_expr(r)?;
            let set = get_values(r)?;
            Ok(Expr::In(Box::new(x), set))
        }
        11 => Ok(Expr::IsNull(Box::new(decode_expr(r)?))),
        12 => {
            let a = decode_expr(r)?;
            let b = decode_expr(r)?;
            Ok(Expr::Add(Box::new(a), Box::new(b)))
        }
        13 => {
            let a = decode_expr(r)?;
            let b = decode_expr(r)?;
            Ok(Expr::Sub(Box::new(a), Box::new(b)))
        }
        14 => {
            let a = decode_expr(r)?;
            let b = decode_expr(r)?;
            Ok(Expr::Mul(Box::new(a), Box::new(b)))
        }
        15 => Ok(Expr::Tuple(get_exprs(r)?)),
        16 => Ok(Expr::Month(Box::new(decode_expr(r)?))),
        17 => Ok(Expr::Day(Box::new(decode_expr(r)?))),
        t => Err(bad("expr", t)),
    }
}

// ---------------------------------------------------------------------------
// Plans
// ---------------------------------------------------------------------------

fn encode_order(buf: &mut Vec<u8>, o: Order) {
    buf.put_u8(match o {
        Order::Asc => 0,
        Order::Desc => 1,
    });
}

fn decode_order(r: &mut Reader<'_>) -> GdResult<Order> {
    match r.u8()? {
        0 => Ok(Order::Asc),
        1 => Ok(Order::Desc),
        t => Err(bad("order", t)),
    }
}

fn encode_group_order(buf: &mut Vec<u8>, o: GroupOrder) {
    buf.put_u8(match o {
        GroupOrder::CountDesc => 0,
        GroupOrder::CountAsc => 1,
        GroupOrder::KeyAsc => 2,
    });
}

fn decode_group_order(r: &mut Reader<'_>) -> GdResult<GroupOrder> {
    match r.u8()? {
        0 => Ok(GroupOrder::CountDesc),
        1 => Ok(GroupOrder::CountAsc),
        2 => Ok(GroupOrder::KeyAsc),
        t => Err(bad("group-order", t)),
    }
}

fn encode_direction(buf: &mut Vec<u8>, d: Direction) {
    buf.put_u8(match d {
        Direction::Out => 0,
        Direction::In => 1,
        Direction::Both => 2,
    });
}

fn decode_direction(r: &mut Reader<'_>) -> GdResult<Direction> {
    match r.u8()? {
        0 => Ok(Direction::Out),
        1 => Ok(Direction::In),
        2 => Ok(Direction::Both),
        t => Err(bad("direction", t)),
    }
}

fn encode_source(buf: &mut Vec<u8>, s: &SourceSpec) {
    match s {
        SourceSpec::Param { param } => {
            buf.put_u8(0);
            put_usize(buf, *param);
        }
        SourceSpec::IndexLookup { label, key, value } => {
            buf.put_u8(1);
            buf.put_u16_le(label.0);
            buf.put_u16_le(key.0);
            encode_expr(buf, value);
        }
        SourceSpec::ScanLabel { label } => {
            buf.put_u8(2);
            buf.put_u16_le(label.0);
        }
        SourceSpec::PrevRows { vertex_col, seed } => {
            buf.put_u8(3);
            put_usize(buf, *vertex_col);
            put_usize(buf, seed.len());
            for (slot, col) in seed {
                buf.put_u8(*slot);
                put_usize(buf, *col);
            }
        }
    }
}

fn decode_source(r: &mut Reader<'_>) -> GdResult<SourceSpec> {
    match r.u8()? {
        0 => Ok(SourceSpec::Param {
            param: get_usize(r)?,
        }),
        1 => Ok(SourceSpec::IndexLookup {
            label: Label(r.u16()?),
            key: PropKey(r.u16()?),
            value: decode_expr(r)?,
        }),
        2 => Ok(SourceSpec::ScanLabel {
            label: Label(r.u16()?),
        }),
        3 => {
            let vertex_col = get_usize(r)?;
            let n = get_usize(r)?;
            let mut seed = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let slot = r.u8()?;
                let col = get_usize(r)?;
                seed.push((slot, col));
            }
            Ok(SourceSpec::PrevRows { vertex_col, seed })
        }
        t => Err(bad("source", t)),
    }
}

fn put_prop_slots(buf: &mut Vec<u8>, loads: &[(PropKey, u8)]) {
    put_usize(buf, loads.len());
    for (k, s) in loads {
        buf.put_u16_le(k.0);
        buf.put_u8(*s);
    }
}

fn get_prop_slots(r: &mut Reader<'_>) -> GdResult<Vec<(PropKey, u8)>> {
    let n = get_usize(r)?;
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let k = PropKey(r.u16()?);
        let s = r.u8()?;
        out.push((k, s));
    }
    Ok(out)
}

fn encode_step(buf: &mut Vec<u8>, step: &PlanStep) {
    match step {
        PlanStep::Expand {
            dir,
            label,
            edge_loads,
        } => {
            buf.put_u8(0);
            encode_direction(buf, *dir);
            buf.put_u16_le(label.0);
            put_prop_slots(buf, edge_loads);
        }
        PlanStep::Filter(e) => {
            buf.put_u8(1);
            encode_expr(buf, e);
        }
        PlanStep::Load(loads) => {
            buf.put_u8(2);
            put_prop_slots(buf, loads);
        }
        PlanStep::Compute(assigns) => {
            buf.put_u8(3);
            put_usize(buf, assigns.len());
            for (slot, e) in assigns {
                buf.put_u8(*slot);
                encode_expr(buf, e);
            }
        }
        PlanStep::Dedup { slots } => {
            buf.put_u8(4);
            put_usize(buf, slots.len());
            for s in slots {
                buf.put_u8(*s);
            }
        }
        PlanStep::MinDist { dist_slot } => {
            buf.put_u8(5);
            buf.put_u8(*dist_slot);
        }
        PlanStep::LoopEnd {
            counter,
            min,
            max,
            back_to,
        } => {
            buf.put_u8(6);
            buf.put_u8(*counter);
            buf.put_i64_le(*min);
            buf.put_i64_le(*max);
            buf.put_u16_le(*back_to);
        }
        PlanStep::Join { join_id, side, key } => {
            buf.put_u8(7);
            buf.put_u16_le(*join_id);
            buf.put_u8(match side {
                JoinSide::Probe => 0,
                JoinSide::Build => 1,
            });
            encode_expr(buf, key);
        }
        PlanStep::MoveTo { vertex_slot } => {
            buf.put_u8(8);
            buf.put_u8(*vertex_slot);
        }
    }
}

fn decode_step(r: &mut Reader<'_>) -> GdResult<PlanStep> {
    match r.u8()? {
        0 => Ok(PlanStep::Expand {
            dir: decode_direction(r)?,
            label: Label(r.u16()?),
            edge_loads: get_prop_slots(r)?,
        }),
        1 => Ok(PlanStep::Filter(decode_expr(r)?)),
        2 => Ok(PlanStep::Load(get_prop_slots(r)?)),
        3 => {
            let n = get_usize(r)?;
            let mut assigns = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let slot = r.u8()?;
                let e = decode_expr(r)?;
                assigns.push((slot, e));
            }
            Ok(PlanStep::Compute(assigns))
        }
        4 => {
            let n = get_usize(r)?;
            let mut slots = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                slots.push(r.u8()?);
            }
            Ok(PlanStep::Dedup { slots })
        }
        5 => Ok(PlanStep::MinDist { dist_slot: r.u8()? }),
        6 => Ok(PlanStep::LoopEnd {
            counter: r.u8()?,
            min: r.i64()?,
            max: r.i64()?,
            back_to: r.u16()?,
        }),
        7 => {
            let join_id = r.u16()?;
            let side = match r.u8()? {
                0 => JoinSide::Probe,
                1 => JoinSide::Build,
                t => return Err(bad("join-side", t)),
            };
            let key = decode_expr(r)?;
            Ok(PlanStep::Join { join_id, side, key })
        }
        8 => Ok(PlanStep::MoveTo {
            vertex_slot: r.u8()?,
        }),
        t => Err(bad("plan-step", t)),
    }
}

fn encode_agg_func(buf: &mut Vec<u8>, f: &AggFunc) {
    match f {
        AggFunc::Count => buf.put_u8(0),
        AggFunc::Sum(e) => {
            buf.put_u8(1);
            encode_expr(buf, e);
        }
        AggFunc::Min(e) => {
            buf.put_u8(2);
            encode_expr(buf, e);
        }
        AggFunc::Max(e) => {
            buf.put_u8(3);
            encode_expr(buf, e);
        }
        AggFunc::Avg(e) => {
            buf.put_u8(4);
            encode_expr(buf, e);
        }
        AggFunc::TopK {
            k,
            sort,
            output,
            distinct,
        } => {
            buf.put_u8(5);
            put_usize(buf, *k);
            put_usize(buf, sort.len());
            for (e, o) in sort {
                encode_expr(buf, e);
                encode_order(buf, *o);
            }
            put_exprs(buf, output);
            put_exprs(buf, distinct);
        }
        AggFunc::GroupCount { key, order, limit } => {
            buf.put_u8(6);
            encode_expr(buf, key);
            encode_group_order(buf, *order);
            put_usize(buf, *limit);
        }
        AggFunc::GroupSum {
            key,
            value,
            order,
            limit,
        } => {
            buf.put_u8(7);
            encode_expr(buf, key);
            encode_expr(buf, value);
            encode_group_order(buf, *order);
            put_usize(buf, *limit);
        }
        AggFunc::Collect { output, limit } => {
            buf.put_u8(8);
            put_exprs(buf, output);
            put_usize(buf, *limit);
        }
    }
}

fn decode_agg_func(r: &mut Reader<'_>) -> GdResult<AggFunc> {
    match r.u8()? {
        0 => Ok(AggFunc::Count),
        1 => Ok(AggFunc::Sum(decode_expr(r)?)),
        2 => Ok(AggFunc::Min(decode_expr(r)?)),
        3 => Ok(AggFunc::Max(decode_expr(r)?)),
        4 => Ok(AggFunc::Avg(decode_expr(r)?)),
        5 => {
            let k = get_usize(r)?;
            let n = get_usize(r)?;
            let mut sort = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let e = decode_expr(r)?;
                let o = decode_order(r)?;
                sort.push((e, o));
            }
            let output = get_exprs(r)?;
            let distinct = get_exprs(r)?;
            Ok(AggFunc::TopK {
                k,
                sort,
                output,
                distinct,
            })
        }
        6 => Ok(AggFunc::GroupCount {
            key: decode_expr(r)?,
            order: decode_group_order(r)?,
            limit: get_usize(r)?,
        }),
        7 => Ok(AggFunc::GroupSum {
            key: decode_expr(r)?,
            value: decode_expr(r)?,
            order: decode_group_order(r)?,
            limit: get_usize(r)?,
        }),
        8 => Ok(AggFunc::Collect {
            output: get_exprs(r)?,
            limit: get_usize(r)?,
        }),
        t => Err(bad("agg-func", t)),
    }
}

/// Encode a full plan.
pub fn encode_plan(buf: &mut Vec<u8>, plan: &Plan) {
    put_usize(buf, plan.num_params);
    put_usize(buf, plan.stages.len());
    for stage in &plan.stages {
        put_usize(buf, stage.num_slots);
        put_usize(buf, stage.pipelines.len());
        for p in &stage.pipelines {
            encode_source(buf, &p.source);
            put_usize(buf, p.steps.len());
            for s in &p.steps {
                encode_step(buf, s);
            }
        }
        put_usize(buf, stage.joins.len());
        for j in &stage.joins {
            buf.put_u16_le(j.join_id);
            buf.put_u16_le(j.probe_pipeline);
        }
        put_exprs(buf, &stage.output);
        match &stage.agg {
            None => buf.put_u8(0),
            Some(spec) => {
                buf.put_u8(1);
                encode_agg_func(buf, &spec.func);
            }
        }
    }
}

/// Decode a full plan.
pub(crate) fn decode_plan(r: &mut Reader<'_>) -> GdResult<Plan> {
    let num_params = get_usize(r)?;
    let n_stages = get_usize(r)?;
    let mut stages = Vec::with_capacity(n_stages.min(64));
    for _ in 0..n_stages {
        let num_slots = get_usize(r)?;
        let n_pipes = get_usize(r)?;
        let mut pipelines = Vec::with_capacity(n_pipes.min(64));
        for _ in 0..n_pipes {
            let source = decode_source(r)?;
            let n_steps = get_usize(r)?;
            let mut steps = Vec::with_capacity(n_steps.min(1024));
            for _ in 0..n_steps {
                steps.push(decode_step(r)?);
            }
            pipelines.push(Pipeline { source, steps });
        }
        let n_joins = get_usize(r)?;
        let mut joins = Vec::with_capacity(n_joins.min(64));
        for _ in 0..n_joins {
            joins.push(JoinSpec {
                join_id: r.u16()?,
                probe_pipeline: r.u16()?,
            });
        }
        let output = get_exprs(r)?;
        let agg = match r.u8()? {
            0 => None,
            1 => Some(AggSpec {
                func: decode_agg_func(r)?,
            }),
            t => return Err(bad("agg-option", t)),
        };
        stages.push(Stage {
            pipelines,
            joins,
            output,
            agg,
            num_slots,
        });
    }
    Ok(Plan { stages, num_params })
}

// ---------------------------------------------------------------------------
// Aggregation partials
// ---------------------------------------------------------------------------

fn put_sorted_map(buf: &mut Vec<u8>, map: &FxHashMap<ValueKey, i64>) {
    let mut entries: Vec<(&ValueKey, &i64)> = map.iter().collect();
    // Sorted by the key's total order so identical states are identical
    // bytes regardless of hash-map iteration order.
    entries.sort_by(|a, b| a.0.cmp(b.0));
    put_usize(buf, entries.len());
    for (k, v) in entries {
        encode_value_key(buf, k);
        buf.put_i64_le(*v);
    }
}

fn get_map(r: &mut Reader<'_>) -> GdResult<FxHashMap<ValueKey, i64>> {
    let n = get_usize(r)?;
    let mut map = FxHashMap::default();
    map.reserve(n.min(4096));
    for _ in 0..n {
        let k = decode_value_key(r)?;
        let v = r.i64()?;
        map.insert(k, v);
    }
    Ok(map)
}

/// Encode an aggregation partial.
pub fn encode_agg_state(buf: &mut Vec<u8>, s: &AggState) {
    match s {
        AggState::Count(n) => {
            buf.put_u8(0);
            buf.put_u64_le(*n);
        }
        AggState::Sum(v) => {
            buf.put_u8(1);
            codec::encode_value(buf, v);
        }
        AggState::Min(v) => {
            buf.put_u8(2);
            match v {
                None => buf.put_u8(0),
                Some(v) => {
                    buf.put_u8(1);
                    codec::encode_value(buf, v);
                }
            }
        }
        AggState::Max(v) => {
            buf.put_u8(3);
            match v {
                None => buf.put_u8(0),
                Some(v) => {
                    buf.put_u8(1);
                    codec::encode_value(buf, v);
                }
            }
        }
        AggState::Avg { sum, count } => {
            buf.put_u8(4);
            buf.put_f64_le(*sum);
            buf.put_u64_le(*count);
        }
        AggState::TopK { rows } => {
            buf.put_u8(5);
            put_usize(buf, rows.len());
            for (sort, row, distinct) in rows {
                put_values(buf, sort);
                put_values(buf, row);
                put_usize(buf, distinct.len());
                for k in distinct {
                    encode_value_key(buf, k);
                }
            }
        }
        AggState::GroupCount { map } => {
            buf.put_u8(6);
            put_sorted_map(buf, map);
        }
        AggState::GroupSum { map } => {
            buf.put_u8(7);
            put_sorted_map(buf, map);
        }
        AggState::Collect { rows } => {
            buf.put_u8(8);
            put_rows(buf, rows);
        }
    }
}

/// Decode an aggregation partial.
pub(crate) fn decode_agg_state(r: &mut Reader<'_>) -> GdResult<AggState> {
    match r.u8()? {
        0 => Ok(AggState::Count(r.u64()?)),
        1 => Ok(AggState::Sum(codec::decode_value_borrowed(r)?)),
        2 => {
            let present = r.u8()? != 0;
            Ok(AggState::Min(if present {
                Some(codec::decode_value_borrowed(r)?)
            } else {
                None
            }))
        }
        3 => {
            let present = r.u8()? != 0;
            Ok(AggState::Max(if present {
                Some(codec::decode_value_borrowed(r)?)
            } else {
                None
            }))
        }
        4 => Ok(AggState::Avg {
            sum: r.f64()?,
            count: r.u64()?,
        }),
        5 => {
            let n = get_usize(r)?;
            let mut rows = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let sort = get_values(r)?;
                let row = get_values(r)?;
                let nd = get_usize(r)?;
                let mut distinct = Vec::with_capacity(nd.min(1024));
                for _ in 0..nd {
                    distinct.push(decode_value_key(r)?);
                }
                rows.push((sort, row, distinct));
            }
            Ok(AggState::TopK { rows })
        }
        6 => Ok(AggState::GroupCount { map: get_map(r)? }),
        7 => Ok(AggState::GroupSum { map: get_map(r)? }),
        8 => Ok(AggState::Collect { rows: get_rows(r)? }),
        t => Err(bad("agg-state", t)),
    }
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

fn encode_error(buf: &mut Vec<u8>, e: &GdError) {
    match e {
        GdError::VertexNotFound(v) => {
            buf.put_u8(0);
            buf.put_u64_le(v.0);
        }
        GdError::UnknownSymbol(s) => {
            buf.put_u8(1);
            put_str(buf, s);
        }
        GdError::InvalidProgram(s) => {
            buf.put_u8(2);
            put_str(buf, s);
        }
        GdError::Parse { offset, message } => {
            buf.put_u8(3);
            put_usize(buf, *offset);
            put_str(buf, message);
        }
        GdError::TypeError(s) => {
            buf.put_u8(4);
            put_str(buf, s);
        }
        GdError::EngineClosed => buf.put_u8(5),
        GdError::QueryTimeout(q) => {
            buf.put_u8(6);
            buf.put_u64_le(q.0);
        }
        GdError::QueryCancelled(q) => {
            buf.put_u8(7);
            buf.put_u64_le(q.0);
        }
        GdError::Overloaded => buf.put_u8(8),
        GdError::TxnAborted(s) => {
            buf.put_u8(9);
            put_str(buf, s);
        }
        GdError::InvariantViolation(s) => {
            buf.put_u8(10);
            put_str(buf, s);
        }
        GdError::Internal(s) => {
            buf.put_u8(11);
            put_str(buf, s);
        }
    }
}

fn decode_error(r: &mut Reader<'_>) -> GdResult<GdError> {
    match r.u8()? {
        0 => Ok(GdError::VertexNotFound(VertexId(r.u64()?))),
        1 => Ok(GdError::UnknownSymbol(get_str(r)?)),
        2 => Ok(GdError::InvalidProgram(get_str(r)?)),
        3 => Ok(GdError::Parse {
            offset: get_usize(r)?,
            message: get_str(r)?,
        }),
        4 => Ok(GdError::TypeError(get_str(r)?)),
        5 => Ok(GdError::EngineClosed),
        6 => Ok(GdError::QueryTimeout(QueryId(r.u64()?))),
        7 => Ok(GdError::QueryCancelled(QueryId(r.u64()?))),
        8 => Ok(GdError::Overloaded),
        9 => Ok(GdError::TxnAborted(get_str(r)?)),
        10 => Ok(GdError::InvariantViolation(get_str(r)?)),
        11 => Ok(GdError::Internal(get_str(r)?)),
        t => Err(bad("error", t)),
    }
}

// ---------------------------------------------------------------------------
// Migration segments
// ---------------------------------------------------------------------------

fn put_props(buf: &mut Vec<u8>, props: &[(PropKey, Value)]) {
    put_usize(buf, props.len());
    for (k, v) in props {
        buf.put_u16_le(k.0);
        codec::encode_value(buf, v);
    }
}

fn get_props(r: &mut Reader<'_>) -> GdResult<Vec<(PropKey, Value)>> {
    let n = get_usize(r)?;
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let k = PropKey(r.u16()?);
        let v = codec::decode_value_borrowed(r)?;
        out.push((k, v));
    }
    Ok(out)
}

fn encode_tel(buf: &mut Vec<u8>, tel: &TelList) {
    let entries = tel.entries();
    put_usize(buf, entries.len());
    for e in entries {
        buf.put_u16_le(e.label.0);
        buf.put_u64_le(e.other.0);
        buf.put_u64_le(e.eid.0);
        buf.put_u64_le(e.create_ts);
        buf.put_u64_le(e.delete_ts);
        put_props(buf, &e.props);
    }
}

fn decode_tel(r: &mut Reader<'_>) -> GdResult<TelList> {
    let n = get_usize(r)?;
    let mut entries = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        entries.push(TelEntry {
            label: Label(r.u16()?),
            other: VertexId(r.u64()?),
            eid: EdgeId(r.u64()?),
            create_ts: r.u64()?,
            delete_ts: r.u64()?,
            props: get_props(r)?,
        });
    }
    Ok(TelList::from_entries(entries))
}

fn encode_segment(buf: &mut Vec<u8>, seg: &VertexSegment) {
    buf.put_u64_le(seg.v.0);
    buf.put_u16_le(seg.record.label.0);
    buf.put_u64_le(seg.record.create_ts);
    put_props(buf, &seg.record.props);
    encode_tel(buf, &seg.out);
    encode_tel(buf, &seg.inn);
}

fn decode_segment(r: &mut Reader<'_>) -> GdResult<VertexSegment> {
    let v = VertexId(r.u64()?);
    let label = Label(r.u16()?);
    let create_ts = r.u64()?;
    let props = get_props(r)?;
    let out = decode_tel(r)?;
    let inn = decode_tel(r)?;
    Ok(VertexSegment {
        v,
        record: VertexRecord {
            label,
            create_ts,
            props,
        },
        out,
        inn,
    })
}

// ---------------------------------------------------------------------------
// WorkerMsg / CoordMsg
// ---------------------------------------------------------------------------

/// Encode a worker control message. Every variant crosses the wire.
pub fn encode_worker_msg(buf: &mut Vec<u8>, msg: &WorkerMsg) -> GdResult<()> {
    match msg {
        WorkerMsg::Batch(ts) => {
            buf.put_u8(0);
            put_usize(buf, ts.len());
            for t in ts {
                codec::encode_traverser(buf, t);
            }
        }
        WorkerMsg::QueryBegin { ctx, stage } => {
            buf.put_u8(1);
            buf.put_u16_le(*stage);
            buf.put_u64_le(ctx.query.0);
            encode_plan(buf, &ctx.plan);
            put_values(buf, &ctx.params);
            buf.put_u64_le(ctx.read_ts);
            buf.put_u64_le(ctx.routing_version);
        }
        WorkerMsg::StageBegin { query, stage } => {
            buf.put_u8(2);
            buf.put_u64_le(query.0);
            buf.put_u16_le(*stage);
        }
        WorkerMsg::StartSource {
            query,
            pipeline,
            weight,
        } => {
            buf.put_u8(3);
            buf.put_u64_le(query.0);
            buf.put_u16_le(*pipeline);
            buf.put_u64_le(weight.0);
        }
        WorkerMsg::GatherAgg { query } => {
            buf.put_u8(4);
            buf.put_u64_le(query.0);
        }
        WorkerMsg::QueryEnd { query } => {
            buf.put_u8(5);
            buf.put_u64_le(query.0);
        }
        WorkerMsg::CancelQuery { query } => {
            buf.put_u8(6);
            buf.put_u64_le(query.0);
        }
        WorkerMsg::MigrateFreeze { seq, v, to } => {
            buf.put_u8(7);
            buf.put_u64_le(*seq);
            buf.put_u64_le(v.0);
            buf.put_u32_le(to.0);
        }
        WorkerMsg::MigrateInstall {
            seq,
            v,
            from,
            segment,
        } => {
            buf.put_u8(8);
            buf.put_u64_le(*seq);
            buf.put_u64_le(v.0);
            buf.put_u32_le(from.0);
            encode_segment(buf, segment);
        }
        WorkerMsg::MigrateCommit {
            seq,
            v,
            to,
            version,
        } => {
            buf.put_u8(9);
            buf.put_u64_le(*seq);
            buf.put_u64_le(v.0);
            buf.put_u32_le(to.0);
            buf.put_u64_le(*version);
        }
        WorkerMsg::MigrateRetire { seq, v } => {
            buf.put_u8(10);
            buf.put_u64_le(*seq);
            buf.put_u64_le(v.0);
        }
        WorkerMsg::Bsp(BspSignal::RunStep { query, depth }) => {
            buf.put_u8(11);
            buf.put_u64_le(query.0);
            buf.put_u32_le(*depth);
        }
        WorkerMsg::Bsp(BspSignal::Probe { query, round }) => {
            buf.put_u8(12);
            buf.put_u64_le(query.0);
            buf.put_u64_le(*round);
        }
        WorkerMsg::Shutdown => buf.put_u8(13),
    }
    Ok(())
}

/// Decode a worker control message.
pub(crate) fn decode_worker_msg(r: &mut Reader<'_>) -> GdResult<WorkerMsg> {
    match r.u8()? {
        0 => {
            let n = get_usize(r)?;
            let mut ts = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                ts.push(codec::decode_traverser_borrowed(r)?);
            }
            Ok(WorkerMsg::Batch(ts))
        }
        1 => {
            let stage = r.u16()?;
            let query = QueryId(r.u64()?);
            let plan = decode_plan(r)?;
            let params = get_values(r)?;
            let read_ts = r.u64()?;
            let routing_version = r.u64()?;
            Ok(WorkerMsg::QueryBegin {
                ctx: Arc::new(QueryCtx {
                    query,
                    plan,
                    params,
                    read_ts,
                    routing_version,
                }),
                stage,
            })
        }
        2 => Ok(WorkerMsg::StageBegin {
            query: QueryId(r.u64()?),
            stage: r.u16()?,
        }),
        3 => Ok(WorkerMsg::StartSource {
            query: QueryId(r.u64()?),
            pipeline: r.u16()?,
            weight: Weight(r.u64()?),
        }),
        4 => Ok(WorkerMsg::GatherAgg {
            query: QueryId(r.u64()?),
        }),
        5 => Ok(WorkerMsg::QueryEnd {
            query: QueryId(r.u64()?),
        }),
        6 => Ok(WorkerMsg::CancelQuery {
            query: QueryId(r.u64()?),
        }),
        7 => Ok(WorkerMsg::MigrateFreeze {
            seq: r.u64()?,
            v: VertexId(r.u64()?),
            to: PartId(r.u32()?),
        }),
        8 => Ok(WorkerMsg::MigrateInstall {
            seq: r.u64()?,
            v: VertexId(r.u64()?),
            from: PartId(r.u32()?),
            segment: Box::new(decode_segment(r)?),
        }),
        9 => Ok(WorkerMsg::MigrateCommit {
            seq: r.u64()?,
            v: VertexId(r.u64()?),
            to: PartId(r.u32()?),
            version: r.u64()?,
        }),
        10 => Ok(WorkerMsg::MigrateRetire {
            seq: r.u64()?,
            v: VertexId(r.u64()?),
        }),
        11 => Ok(WorkerMsg::Bsp(BspSignal::RunStep {
            query: QueryId(r.u64()?),
            depth: r.u32()?,
        })),
        12 => Ok(WorkerMsg::Bsp(BspSignal::Probe {
            query: QueryId(r.u64()?),
            round: r.u64()?,
        })),
        13 => Ok(WorkerMsg::Shutdown),
        t => Err(bad("worker-msg", t)),
    }
}

fn encode_mig_phase(buf: &mut Vec<u8>, p: MigPhase) {
    buf.put_u8(match p {
        MigPhase::Installed => 0,
        MigPhase::Committed => 1,
        MigPhase::Retired => 2,
        MigPhase::Failed => 3,
    });
}

fn decode_mig_phase(r: &mut Reader<'_>) -> GdResult<MigPhase> {
    match r.u8()? {
        0 => Ok(MigPhase::Installed),
        1 => Ok(MigPhase::Committed),
        2 => Ok(MigPhase::Retired),
        3 => Ok(MigPhase::Failed),
        t => Err(bad("mig-phase", t)),
    }
}

/// Encode a coordinator message. [`CoordMsg::Submit`] is the one variant
/// that legitimately never crosses node boundaries (it carries the client's
/// in-process reply channel), so encoding it is an error.
pub fn encode_coord_msg(buf: &mut Vec<u8>, msg: &CoordMsg) -> GdResult<()> {
    match msg {
        CoordMsg::Submit { .. } => {
            return Err(GdError::Internal(
                "wire: CoordMsg::Submit cannot cross node boundaries".into(),
            ));
        }
        CoordMsg::Cancel { query } => {
            buf.put_u8(1);
            buf.put_u64_le(query.0);
        }
        CoordMsg::Progress {
            query,
            weight,
            steps,
        } => {
            buf.put_u8(2);
            buf.put_u64_le(query.0);
            buf.put_u64_le(weight.0);
            buf.put_u64_le(*steps);
        }
        CoordMsg::Rows { query, rows } => {
            buf.put_u8(3);
            buf.put_u64_le(query.0);
            put_rows(buf, rows);
        }
        CoordMsg::AggPartial { query, part, state } => {
            buf.put_u8(4);
            buf.put_u64_le(query.0);
            buf.put_u32_le(part.0);
            match state {
                None => buf.put_u8(0),
                Some(s) => {
                    buf.put_u8(1);
                    encode_agg_state(buf, s);
                }
            }
        }
        CoordMsg::WorkerError { query, error } => {
            buf.put_u8(5);
            buf.put_u64_le(query.0);
            encode_error(buf, error);
        }
        CoordMsg::BspStepDone {
            query,
            part,
            finished,
            issued,
            count,
            consumed,
            consumed_count,
        } => {
            buf.put_u8(6);
            buf.put_u64_le(query.0);
            buf.put_u32_le(part.0);
            buf.put_u64_le(finished.0);
            buf.put_u64_le(issued.0);
            buf.put_u64_le(*count);
            buf.put_u64_le(consumed.0);
            buf.put_u64_le(*consumed_count);
        }
        CoordMsg::BspParked {
            query,
            part,
            parked,
            round,
        } => {
            buf.put_u8(7);
            buf.put_u64_le(query.0);
            buf.put_u32_le(part.0);
            buf.put_u64_le(parked.0);
            buf.put_u64_le(*round);
        }
        CoordMsg::Rebalance { moves } => {
            buf.put_u8(8);
            put_usize(buf, moves.len());
            for (v, p) in moves {
                buf.put_u64_le(v.0);
                buf.put_u32_le(p.0);
            }
        }
        CoordMsg::MigrateAck { seq, v, phase } => {
            buf.put_u8(9);
            buf.put_u64_le(*seq);
            buf.put_u64_le(v.0);
            encode_mig_phase(buf, *phase);
        }
        CoordMsg::Tick => buf.put_u8(10),
        CoordMsg::Shutdown => buf.put_u8(11),
    }
    Ok(())
}

/// Decode a coordinator message.
pub(crate) fn decode_coord_msg(r: &mut Reader<'_>) -> GdResult<CoordMsg> {
    match r.u8()? {
        1 => Ok(CoordMsg::Cancel {
            query: QueryId(r.u64()?),
        }),
        2 => Ok(CoordMsg::Progress {
            query: QueryId(r.u64()?),
            weight: Weight(r.u64()?),
            steps: r.u64()?,
        }),
        3 => Ok(CoordMsg::Rows {
            query: QueryId(r.u64()?),
            rows: get_rows(r)?,
        }),
        4 => {
            let query = QueryId(r.u64()?);
            let part = PartId(r.u32()?);
            let state = match r.u8()? {
                0 => None,
                1 => Some(Box::new(decode_agg_state(r)?)),
                t => return Err(bad("agg-partial-option", t)),
            };
            Ok(CoordMsg::AggPartial { query, part, state })
        }
        5 => Ok(CoordMsg::WorkerError {
            query: QueryId(r.u64()?),
            error: decode_error(r)?,
        }),
        6 => Ok(CoordMsg::BspStepDone {
            query: QueryId(r.u64()?),
            part: PartId(r.u32()?),
            finished: Weight(r.u64()?),
            issued: Weight(r.u64()?),
            count: r.u64()?,
            consumed: Weight(r.u64()?),
            consumed_count: r.u64()?,
        }),
        7 => Ok(CoordMsg::BspParked {
            query: QueryId(r.u64()?),
            part: PartId(r.u32()?),
            parked: Weight(r.u64()?),
            round: r.u64()?,
        }),
        8 => {
            let n = get_usize(r)?;
            let mut moves = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                let v = VertexId(r.u64()?);
                let p = PartId(r.u32()?);
                moves.push((v, p));
            }
            Ok(CoordMsg::Rebalance { moves })
        }
        9 => Ok(CoordMsg::MigrateAck {
            seq: r.u64()?,
            v: VertexId(r.u64()?),
            phase: decode_mig_phase(r)?,
        }),
        10 => Ok(CoordMsg::Tick),
        11 => Ok(CoordMsg::Shutdown),
        t => Err(bad("coord-msg", t)),
    }
}

// ---------------------------------------------------------------------------
// WireMsg — the unit a transport packet carries
// ---------------------------------------------------------------------------

/// Encode one wire message into a packet body.
pub(crate) fn encode_wire_msg(buf: &mut Vec<u8>, msg: &WireMsg) -> GdResult<()> {
    match msg {
        WireMsg::Batch { dest, payload } => {
            buf.put_u8(0);
            buf.put_u32_le(dest.0);
            put_usize(buf, payload.len());
            buf.put_slice(payload);
        }
        WireMsg::Progress {
            query,
            weight,
            steps,
        } => {
            buf.put_u8(1);
            buf.put_u64_le(query.0);
            buf.put_u64_le(weight.0);
            buf.put_u64_le(*steps);
        }
        WireMsg::Rows {
            query,
            rows,
            approx,
        } => {
            buf.put_u8(2);
            buf.put_u64_le(query.0);
            put_usize(buf, *approx);
            put_rows(buf, rows);
        }
        WireMsg::CtrlWorker { dest, msg } => {
            buf.put_u8(3);
            buf.put_u32_le(dest.0);
            encode_worker_msg(buf, msg)?;
        }
        WireMsg::CtrlCoord { msg } => {
            buf.put_u8(4);
            encode_coord_msg(buf, msg)?;
        }
    }
    Ok(())
}

/// Decode one wire message from a packet body.
pub(crate) fn decode_wire_msg(r: &mut Reader<'_>) -> GdResult<WireMsg> {
    match r.u8()? {
        0 => {
            let dest = WorkerId(r.u32()?);
            let n = get_usize(r)?;
            let payload = r.take(n)?.to_vec();
            Ok(WireMsg::Batch { dest, payload })
        }
        1 => Ok(WireMsg::Progress {
            query: QueryId(r.u64()?),
            weight: Weight(r.u64()?),
            steps: r.u64()?,
        }),
        2 => Ok(WireMsg::Rows {
            query: QueryId(r.u64()?),
            approx: get_usize(r)?,
            rows: get_rows(r)?,
        }),
        3 => {
            let dest = WorkerId(r.u32()?);
            let msg = decode_worker_msg(r)?;
            Ok(WireMsg::CtrlWorker { dest, msg })
        }
        4 => Ok(WireMsg::CtrlCoord {
            msg: decode_coord_msg(r)?,
        }),
        t => Err(bad("wire-msg", t)),
    }
}

/// Encode a full packet body: `u16 count | count × wire msg`. The socket
/// transport wraps this in a length-prefixed PACKET frame.
pub(crate) fn encode_packet(buf: &mut Vec<u8>, msgs: &[WireMsg]) -> GdResult<()> {
    buf.put_u16_le(msgs.len() as u16);
    for m in msgs {
        encode_wire_msg(buf, m)?;
    }
    Ok(())
}

/// Decode a full packet body. Rejects trailing garbage: a packet must be
/// consumed exactly.
pub(crate) fn decode_packet(body: &[u8]) -> GdResult<Vec<WireMsg>> {
    let mut r = Reader::new(body);
    let n = r.u16()? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 12));
    for _ in 0..n {
        out.push(decode_wire_msg(&mut r)?);
    }
    if !r.is_empty() {
        return Err(GdError::Internal(
            "wire: trailing bytes after packet body".into(),
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphdance_pstm::Traverser;

    fn sample_plan() -> Plan {
        Plan {
            stages: vec![Stage {
                pipelines: vec![Pipeline {
                    source: SourceSpec::IndexLookup {
                        label: Label(1),
                        key: PropKey(2),
                        value: Expr::Param(0),
                    },
                    steps: vec![
                        PlanStep::Expand {
                            dir: Direction::Both,
                            label: Label(3),
                            edge_loads: vec![(PropKey(4), 1)],
                        },
                        PlanStep::Filter(Expr::And(vec![
                            Expr::lt(Expr::Slot(0), Expr::int(9)),
                            Expr::Not(Box::new(Expr::IsNull(Box::new(Expr::Prop(PropKey(1)))))),
                        ])),
                        PlanStep::Compute(vec![(
                            0,
                            Expr::Add(Box::new(Expr::Slot(0)), Box::new(Expr::int(1))),
                        )]),
                        PlanStep::LoopEnd {
                            counter: 2,
                            min: 1,
                            max: 3,
                            back_to: 0,
                        },
                        PlanStep::Dedup { slots: vec![0, 2] },
                        PlanStep::MinDist { dist_slot: 2 },
                        PlanStep::Join {
                            join_id: 0,
                            side: JoinSide::Probe,
                            key: Expr::Tuple(vec![
                                Expr::VertexId,
                                Expr::Month(Box::new(Expr::Slot(1))),
                            ]),
                        },
                        PlanStep::MoveTo { vertex_slot: 1 },
                    ],
                }],
                joins: vec![JoinSpec {
                    join_id: 0,
                    probe_pipeline: 0,
                }],
                output: vec![Expr::VertexId, Expr::Day(Box::new(Expr::Slot(1)))],
                agg: Some(AggSpec {
                    func: AggFunc::TopK {
                        k: 5,
                        sort: vec![(Expr::Slot(0), Order::Desc)],
                        output: vec![Expr::VertexId],
                        distinct: vec![Expr::VertexId],
                    },
                }),
                num_slots: 3,
            }],
            num_params: 1,
        }
    }

    fn roundtrip_worker(msg: &WorkerMsg) -> WorkerMsg {
        let mut buf = Vec::new();
        encode_worker_msg(&mut buf, msg).unwrap();
        let mut r = Reader::new(&buf);
        let back = decode_worker_msg(&mut r).unwrap();
        assert!(r.is_empty(), "worker msg fully consumed");
        back
    }

    fn roundtrip_coord(msg: &CoordMsg) -> CoordMsg {
        let mut buf = Vec::new();
        encode_coord_msg(&mut buf, msg).unwrap();
        let mut r = Reader::new(&buf);
        let back = decode_coord_msg(&mut r).unwrap();
        assert!(r.is_empty(), "coord msg fully consumed");
        back
    }

    #[test]
    fn plan_roundtrips() {
        let plan = sample_plan();
        let mut buf = Vec::new();
        encode_plan(&mut buf, &plan);
        let mut r = Reader::new(&buf);
        assert_eq!(decode_plan(&mut r).unwrap(), plan);
        assert!(r.is_empty());
    }

    #[test]
    fn every_source_and_agg_variant_roundtrips() {
        for src in [
            SourceSpec::Param { param: 2 },
            SourceSpec::ScanLabel { label: Label(7) },
            SourceSpec::PrevRows {
                vertex_col: 1,
                seed: vec![(0, 2), (1, 0)],
            },
        ] {
            let mut buf = Vec::new();
            encode_source(&mut buf, &src);
            assert_eq!(decode_source(&mut Reader::new(&buf)).unwrap(), src);
        }
        for f in [
            AggFunc::Count,
            AggFunc::Sum(Expr::Slot(0)),
            AggFunc::Min(Expr::Slot(0)),
            AggFunc::Max(Expr::Slot(0)),
            AggFunc::Avg(Expr::Slot(0)),
            AggFunc::GroupCount {
                key: Expr::VertexId,
                order: GroupOrder::CountDesc,
                limit: 10,
            },
            AggFunc::GroupSum {
                key: Expr::VertexId,
                value: Expr::Slot(1),
                order: GroupOrder::KeyAsc,
                limit: 3,
            },
            AggFunc::Collect {
                output: vec![Expr::VertexId],
                limit: 100,
            },
        ] {
            let mut buf = Vec::new();
            encode_agg_func(&mut buf, &f);
            assert_eq!(decode_agg_func(&mut Reader::new(&buf)).unwrap(), f);
        }
    }

    #[test]
    fn query_begin_roundtrips_with_full_plan() {
        let msg = WorkerMsg::QueryBegin {
            ctx: Arc::new(QueryCtx {
                query: QueryId(42),
                plan: sample_plan(),
                params: vec![Value::str("alice"), Value::Int(7)],
                read_ts: 9,
                routing_version: 3,
            }),
            stage: 1,
        };
        match roundtrip_worker(&msg) {
            WorkerMsg::QueryBegin { ctx, stage } => {
                assert_eq!(stage, 1);
                assert_eq!(ctx.query, QueryId(42));
                assert_eq!(ctx.plan, sample_plan());
                assert_eq!(ctx.params, vec![Value::str("alice"), Value::Int(7)]);
                assert_eq!(ctx.read_ts, 9);
                assert_eq!(ctx.routing_version, 3);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn every_worker_msg_variant_roundtrips() {
        let seg = VertexSegment {
            v: VertexId(5),
            record: VertexRecord {
                label: Label(1),
                create_ts: 0,
                props: vec![(PropKey(0), Value::str("x"))],
            },
            out: {
                let mut t = TelList::new();
                t.insert(Label(2), VertexId(6), EdgeId(1), 3, vec![]);
                t.delete(Label(2), VertexId(6), 9);
                t
            },
            inn: TelList::new(),
        };
        let msgs = vec![
            WorkerMsg::Batch(vec![Traverser::root(
                QueryId(1),
                0,
                VertexId(2),
                2,
                Weight(5),
            )]),
            WorkerMsg::StageBegin {
                query: QueryId(1),
                stage: 2,
            },
            WorkerMsg::StartSource {
                query: QueryId(1),
                pipeline: 0,
                weight: Weight(u64::MAX),
            },
            WorkerMsg::GatherAgg { query: QueryId(1) },
            WorkerMsg::QueryEnd { query: QueryId(1) },
            WorkerMsg::CancelQuery { query: QueryId(1) },
            WorkerMsg::MigrateFreeze {
                seq: 9,
                v: VertexId(5),
                to: PartId(3),
            },
            WorkerMsg::MigrateInstall {
                seq: 9,
                v: VertexId(5),
                from: PartId(1),
                segment: Box::new(seg),
            },
            WorkerMsg::MigrateCommit {
                seq: 9,
                v: VertexId(5),
                to: PartId(3),
                version: 11,
            },
            WorkerMsg::MigrateRetire {
                seq: 9,
                v: VertexId(5),
            },
            WorkerMsg::Bsp(BspSignal::RunStep {
                query: QueryId(1),
                depth: 4,
            }),
            WorkerMsg::Bsp(BspSignal::Probe {
                query: QueryId(1),
                round: 7,
            }),
            WorkerMsg::Shutdown,
        ];
        for msg in &msgs {
            let back = roundtrip_worker(msg);
            // WorkerMsg is not PartialEq (Arc ctx); compare debug renders,
            // which include every payload field.
            assert_eq!(format!("{msg:?}"), format!("{back:?}"));
        }
    }

    #[test]
    fn migrate_install_preserves_mvcc_history() {
        let mut out = TelList::new();
        out.insert(Label(1), VertexId(2), EdgeId(1), 1, vec![]);
        out.delete(Label(1), VertexId(2), 5);
        out.insert(Label(1), VertexId(2), EdgeId(2), 8, vec![]);
        let msg = WorkerMsg::MigrateInstall {
            seq: 1,
            v: VertexId(1),
            from: PartId(0),
            segment: Box::new(VertexSegment {
                v: VertexId(1),
                record: VertexRecord {
                    label: Label(0),
                    create_ts: 0,
                    props: vec![],
                },
                out,
                inn: TelList::new(),
            }),
        };
        match roundtrip_worker(&msg) {
            WorkerMsg::MigrateInstall { segment, .. } => {
                assert_eq!(segment.out.len_versions(), 2);
                assert_eq!(segment.out.scan_visible(Label(1), 3).count(), 1);
                assert_eq!(segment.out.scan_visible(Label(1), 6).count(), 0);
                assert_eq!(segment.out.scan_visible(Label(1), 9).count(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn every_coord_msg_variant_roundtrips() {
        let mut map = FxHashMap::default();
        map.insert(ValueKey::Int(1), 5i64);
        map.insert(ValueKey::Str(Arc::from("k")), -2);
        let msgs = vec![
            CoordMsg::Cancel { query: QueryId(3) },
            CoordMsg::Progress {
                query: QueryId(3),
                weight: Weight(77),
                steps: 5,
            },
            CoordMsg::Rows {
                query: QueryId(3),
                rows: vec![vec![Value::Int(1), Value::str("x")], vec![Value::Null]],
            },
            CoordMsg::AggPartial {
                query: QueryId(3),
                part: PartId(2),
                state: Some(Box::new(AggState::GroupCount { map })),
            },
            CoordMsg::AggPartial {
                query: QueryId(3),
                part: PartId(2),
                state: None,
            },
            CoordMsg::WorkerError {
                query: QueryId(3),
                error: GdError::VertexNotFound(VertexId(9)),
            },
            CoordMsg::BspStepDone {
                query: QueryId(3),
                part: PartId(0),
                finished: Weight(1),
                issued: Weight(2),
                count: 3,
                consumed: Weight(4),
                consumed_count: 5,
            },
            CoordMsg::BspParked {
                query: QueryId(3),
                part: PartId(1),
                parked: Weight(6),
                round: 2,
            },
            CoordMsg::Rebalance {
                moves: vec![(VertexId(1), PartId(2)), (VertexId(3), PartId(0))],
            },
            CoordMsg::MigrateAck {
                seq: 4,
                v: VertexId(1),
                phase: MigPhase::Installed,
            },
            CoordMsg::Tick,
            CoordMsg::Shutdown,
        ];
        for msg in &msgs {
            let back = roundtrip_coord(msg);
            assert_eq!(format!("{msg:?}"), format!("{back:?}"));
        }
    }

    #[test]
    fn submit_refuses_to_cross_the_wire() {
        let (reply, _rx) = crossbeam::channel::unbounded();
        let msg = CoordMsg::Submit {
            query: QueryId(1),
            plan: sample_plan(),
            params: vec![],
            read_ts: None,
            reply,
            submitted_at: std::time::Instant::now(), // lint: allow(sim-determinism) test constructs a never-sent message
            deadline: None,
        };
        let mut buf = Vec::new();
        assert!(encode_coord_msg(&mut buf, &msg).is_err());
        assert!(buf.is_empty(), "nothing written before the refusal");
    }

    #[test]
    fn agg_state_map_encoding_is_deterministic() {
        // Build two maps with different insertion orders; bytes must match.
        let mut a = FxHashMap::default();
        let mut b = FxHashMap::default();
        for i in 0..20i64 {
            a.insert(ValueKey::Int(i), i * 2);
        }
        for i in (0..20i64).rev() {
            b.insert(ValueKey::Int(i), i * 2);
        }
        let mut ba = Vec::new();
        let mut bb = Vec::new();
        encode_agg_state(&mut ba, &AggState::GroupSum { map: a });
        encode_agg_state(&mut bb, &AggState::GroupSum { map: b });
        assert_eq!(ba, bb, "sorted-entry encoding is order independent");
    }

    #[test]
    fn all_agg_states_roundtrip() {
        let states = vec![
            AggState::Count(9),
            AggState::Sum(Value::Float(1.5)),
            AggState::Min(None),
            AggState::Min(Some(Value::Int(-3))),
            AggState::Max(Some(Value::str("z"))),
            AggState::Avg { sum: 2.5, count: 4 },
            AggState::TopK {
                rows: vec![(
                    vec![Value::Int(1)],
                    vec![Value::str("row")],
                    vec![ValueKey::Vertex(VertexId(4))],
                )],
            },
            AggState::Collect {
                rows: vec![vec![Value::Int(1)], vec![]],
            },
        ];
        for s in &states {
            let mut buf = Vec::new();
            encode_agg_state(&mut buf, s);
            let mut r = Reader::new(&buf);
            assert_eq!(&decode_agg_state(&mut r).unwrap(), s);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn all_errors_roundtrip() {
        let errs = vec![
            GdError::VertexNotFound(VertexId(1)),
            GdError::UnknownSymbol("name".into()),
            GdError::InvalidProgram("bad".into()),
            GdError::Parse {
                offset: 3,
                message: "oops".into(),
            },
            GdError::TypeError("t".into()),
            GdError::EngineClosed,
            GdError::QueryTimeout(QueryId(2)),
            GdError::QueryCancelled(QueryId(3)),
            GdError::Overloaded,
            GdError::TxnAborted("w".into()),
            GdError::InvariantViolation("inv".into()),
            GdError::Internal("i".into()),
        ];
        for e in &errs {
            let mut buf = Vec::new();
            encode_error(&mut buf, e);
            let mut r = Reader::new(&buf);
            assert_eq!(
                format!("{:?}", decode_error(&mut r).unwrap()),
                format!("{e:?}")
            );
            assert!(r.is_empty());
        }
    }

    #[test]
    fn packet_roundtrips_and_rejects_garbage() {
        let msgs = vec![
            WireMsg::Batch {
                dest: WorkerId(3),
                payload: {
                    let mut p = Vec::new();
                    codec::encode_batch_into(
                        &mut p,
                        &[Traverser::root(QueryId(1), 0, VertexId(1), 1, Weight(1))],
                        &[],
                    );
                    p
                },
            },
            WireMsg::Progress {
                query: QueryId(1),
                weight: Weight(2),
                steps: 3,
            },
            WireMsg::Rows {
                query: QueryId(1),
                rows: vec![vec![Value::Int(5)]],
                approx: 17,
            },
            WireMsg::CtrlWorker {
                dest: WorkerId(0),
                msg: WorkerMsg::QueryEnd { query: QueryId(1) },
            },
            WireMsg::CtrlCoord {
                msg: CoordMsg::Tick,
            },
        ];
        let mut body = Vec::new();
        encode_packet(&mut body, &msgs).unwrap();
        let back = decode_packet(&body).unwrap();
        assert_eq!(back.len(), msgs.len());
        assert_eq!(format!("{back:?}"), format!("{msgs:?}"));
        // Truncations at every boundary fail loudly, never panic.
        for cut in 0..body.len() {
            assert!(decode_packet(&body[..cut]).is_err(), "cut at {cut}");
        }
        // Trailing garbage is rejected.
        let mut noisy = body.clone();
        noisy.push(0xAB);
        assert!(decode_packet(&noisy).is_err());
    }
}
