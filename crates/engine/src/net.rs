//! The simulated cluster network and the two-tier I/O scheduler (§IV-B).
//!
//! Topology: every *worker* has an inbox; the *coordinator* (on node 0) has
//! an inbox; every *node* has an egress thread (tier 2 sender) and an
//! ingress thread (delivery). A message from worker A on node X to worker B
//! on node Y travels:
//!
//! ```text
//! A --(tier-1 buffer, flush at 8 KB or idle)--> X.egress
//!   --(combine with other local packets to Y, charge cost model)--> Y.ingress
//!   --(propagation delay, deserialize)--> B.inbox
//! ```
//!
//! Same-node messages take the **shared-memory shortcut**: the tier-1 flush
//! delivers them straight into the destination inbox without serialization
//! or cost. Remote traverser batches are really serialized with
//! [`crate::codec`]; the cost model charges
//! `per_message_overhead + bytes/bandwidth` of (spun) sender time per wire
//! packet plus a propagation delay — reproducing the NIC message-rate
//! bottleneck that makes tier-1 combining matter (Fig. 12).

#[cfg(not(feature = "obs"))]
use std::sync::atomic::AtomicU64;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use graphdance_common::time::now;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::RngCore;

use graphdance_common::{GdError, NodeId, Partitioner, QueryId, Value, WorkerId};
use graphdance_pstm::{Row, Traverser, Weight};

use crate::codec::{self, BytesPool, PoolStats, ProgressEntry};
use crate::config::{AdaptivePolicy, EngineConfig, FaultInjection, IoMode, NetConfig};
use crate::invariants::MsgLedger;
use crate::messages::{CoordMsg, WorkerMsg};

/// Classes of messages, for the Fig. 11 accounting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MsgClass {
    /// Traverser batches.
    Traverser = 0,
    /// Progress-tracking reports.
    Progress = 1,
    /// Result rows.
    Rows = 2,
    /// Control plane (query begin/end, source starts, gathers).
    Control = 3,
}

/// Shared network counters.
///
/// Without the `obs` feature these are plain atomics. With it, the same
/// figures live as named metrics in the obs registry (written through
/// single-writer shards) and this type is a thin adapter, so the
/// [`NetStats::snapshot`] / [`NetStatsSnapshot::since`] API the bench bins
/// rely on keeps working unchanged.
#[cfg(not(feature = "obs"))]
#[derive(Debug, Default)]
pub struct NetStats {
    // Fallback counters when the obs registry is compiled out.
    msgs: [AtomicU64; 4], // lint: allow(adhoc-counter) obs-off fallback for NetStats
    bytes: [AtomicU64; 4], // lint: allow(adhoc-counter) obs-off fallback for NetStats
    wire_packets: AtomicU64, // lint: allow(adhoc-counter) obs-off fallback for NetStats
    wire_bytes: AtomicU64, // lint: allow(adhoc-counter) obs-off fallback for NetStats
    same_node_msgs: AtomicU64, // lint: allow(adhoc-counter) obs-off fallback for NetStats
    decode_errors: AtomicU64, // lint: allow(adhoc-counter) obs-off fallback for NetStats
    progress_piggybacked: AtomicU64, // lint: allow(adhoc-counter) obs-off fallback for NetStats
    deadline_flushes: AtomicU64, // lint: allow(adhoc-counter) obs-off fallback for NetStats
}

#[cfg(not(feature = "obs"))]
impl NetStats {
    fn count(&self, class: MsgClass, bytes: usize) {
        // sync: monotonic diagnostic counters, no data published through them
        self.msgs[class as usize].fetch_add(1, Ordering::Relaxed);
        // sync: monotonic diagnostic counters, no data published through them
        self.bytes[class as usize].fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Take a snapshot of the counters.
    pub fn snapshot(&self) -> NetStatsSnapshot {
        // sync: monotonic diagnostic counters — a torn cross-counter view
        // is acceptable in a stats snapshot
        let ld = |c: &AtomicU64| c.load(Ordering::Relaxed); // lint: allow(adhoc-counter) snapshot helper, no new counter
        NetStatsSnapshot {
            traverser_msgs: ld(&self.msgs[0]),
            progress_msgs: ld(&self.msgs[1]),
            rows_msgs: ld(&self.msgs[2]),
            control_msgs: ld(&self.msgs[3]),
            traverser_bytes: ld(&self.bytes[0]),
            progress_bytes: ld(&self.bytes[1]),
            rows_bytes: ld(&self.bytes[2]),
            control_bytes: ld(&self.bytes[3]),
            wire_packets: ld(&self.wire_packets),
            wire_bytes: ld(&self.wire_bytes),
            same_node_msgs: ld(&self.same_node_msgs),
            decode_errors: ld(&self.decode_errors),
            progress_piggybacked: ld(&self.progress_piggybacked),
            deadline_flushes: ld(&self.deadline_flushes),
        }
    }
}

/// Shared network counters — obs-backed adapter (see the obs-off docs).
#[cfg(feature = "obs")]
#[derive(Debug)]
pub struct NetStats {
    obs: Arc<crate::obs::EngineObs>,
}

#[cfg(feature = "obs")]
impl NetStats {
    pub(crate) fn new(obs: Arc<crate::obs::EngineObs>) -> Self {
        NetStats { obs }
    }

    /// Take a snapshot of the counters (merged across all shards).
    pub fn snapshot(&self) -> NetStatsSnapshot {
        let s = self.obs.registry().snapshot();
        NetStatsSnapshot {
            traverser_msgs: s.scalar("net.traverser_msgs"),
            progress_msgs: s.scalar("net.progress_msgs"),
            rows_msgs: s.scalar("net.rows_msgs"),
            control_msgs: s.scalar("net.control_msgs"),
            traverser_bytes: s.scalar("net.traverser_bytes"),
            progress_bytes: s.scalar("net.progress_bytes"),
            rows_bytes: s.scalar("net.rows_bytes"),
            control_bytes: s.scalar("net.control_bytes"),
            wire_packets: s.scalar("net.wire_packets"),
            wire_bytes: s.scalar("net.wire_bytes"),
            same_node_msgs: s.scalar("net.same_node_msgs"),
            decode_errors: s.scalar("net.decode_errors"),
            progress_piggybacked: s.scalar("net.progress_piggybacked"),
            deadline_flushes: s.scalar("net.deadline_flushes"),
        }
    }
}

/// A point-in-time copy of [`NetStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStatsSnapshot {
    pub traverser_msgs: u64,
    pub progress_msgs: u64,
    pub rows_msgs: u64,
    pub control_msgs: u64,
    pub traverser_bytes: u64,
    pub progress_bytes: u64,
    pub rows_bytes: u64,
    pub control_bytes: u64,
    pub wire_packets: u64,
    pub wire_bytes: u64,
    pub same_node_msgs: u64,
    /// Undecodable batch frames seen at ingress.
    pub decode_errors: u64,
    /// Progress reports that rode a traverser batch's trailer instead of
    /// going out as standalone wire messages (`IoMode::Adaptive`).
    pub progress_piggybacked: u64,
    /// Tier-1 flushes triggered by an idle-flush deadline
    /// (`IoMode::Adaptive`).
    pub deadline_flushes: u64,
}

impl NetStatsSnapshot {
    /// Counter delta since `earlier`.
    pub fn since(&self, earlier: &NetStatsSnapshot) -> NetStatsSnapshot {
        NetStatsSnapshot {
            traverser_msgs: self.traverser_msgs - earlier.traverser_msgs,
            progress_msgs: self.progress_msgs - earlier.progress_msgs,
            rows_msgs: self.rows_msgs - earlier.rows_msgs,
            control_msgs: self.control_msgs - earlier.control_msgs,
            traverser_bytes: self.traverser_bytes - earlier.traverser_bytes,
            progress_bytes: self.progress_bytes - earlier.progress_bytes,
            rows_bytes: self.rows_bytes - earlier.rows_bytes,
            control_bytes: self.control_bytes - earlier.control_bytes,
            wire_packets: self.wire_packets - earlier.wire_packets,
            wire_bytes: self.wire_bytes - earlier.wire_bytes,
            same_node_msgs: self.same_node_msgs - earlier.same_node_msgs,
            decode_errors: self.decode_errors - earlier.decode_errors,
            progress_piggybacked: self.progress_piggybacked - earlier.progress_piggybacked,
            deadline_flushes: self.deadline_flushes - earlier.deadline_flushes,
        }
    }

    /// Messages that are not progress reports (Fig. 11's "other messages").
    pub fn other_msgs(&self) -> u64 {
        self.traverser_msgs + self.rows_msgs + self.control_msgs
    }
}

/// A message on the wire (simulated or real — the [`crate::transport`]
/// seam moves these between nodes).
#[derive(Debug)]
pub enum WireMsg {
    /// Serialized traverser batch for one worker: a frame leased from the
    /// fabric's [`BytesPool`], returned to it after ingress decode. May
    /// carry a piggybacked progress trailer (see [`codec::ProgressEntry`]).
    Batch {
        /// Destination worker.
        dest: WorkerId,
        /// Encoded batch frame (`codec::encode_batch_into` layout).
        payload: Vec<u8>,
    },
    /// Coalesced progress report (to the coordinator).
    Progress {
        /// Reporting query.
        query: QueryId,
        /// Finished weight.
        weight: Weight,
        /// Steps executed.
        steps: u64,
    },
    /// Result rows (to the coordinator). Passed by value; the cost model
    /// charges their approximate encoded size.
    Rows {
        /// Producing query.
        query: QueryId,
        /// The rows.
        rows: Vec<Row>,
        /// Approximate encoded size, charged to the cost model.
        approx: usize,
    },
    /// Control-plane message for a worker.
    CtrlWorker {
        /// Destination worker.
        dest: WorkerId,
        /// The message.
        msg: WorkerMsg,
    },
    /// Control-plane message for the coordinator.
    CtrlCoord {
        /// The message.
        msg: CoordMsg,
    },
}

impl WireMsg {
    /// Modeled wire size (the cost model charges this, not the exact
    /// socket encoding).
    pub fn wire_size(&self) -> usize {
        match self {
            WireMsg::Batch { payload, .. } => payload.len() + 8,
            WireMsg::Progress { .. } => 32,
            WireMsg::Rows { approx, .. } => *approx + 16,
            WireMsg::CtrlWorker { msg, .. } => codec::worker_msg_wire_size(msg),
            WireMsg::CtrlCoord { msg } => codec::coord_msg_wire_size(msg),
        }
    }
}

pub(crate) enum EgressEvent {
    Packet {
        dest_node: NodeId,
        msgs: Vec<WireMsg>,
        bytes: usize,
    },
    Shutdown,
}

pub(crate) enum IngressEvent {
    Packet {
        deliver_at: Instant,
        msgs: Vec<WireMsg>,
    },
    Shutdown,
}

/// Why a tier-1 buffer was flushed (adaptive-scheduler tracing).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlushTrigger {
    /// Buffered bytes crossed the lane's (static or adaptive) threshold;
    /// also every per-message flush under `IoMode::Sync`.
    Threshold,
    /// The lane's idle-flush deadline fired (`IoMode::Adaptive`).
    Deadline,
    /// The owning worker went idle and drained its idle-eligible lanes.
    Idle,
    /// A control-plane message forced the flush.
    Control,
    /// An explicit flush call (query lifecycle, shutdown, tests).
    Explicit,
}

/// One tier-1 flush decision, recorded while flush tracing is on
/// ([`Fabric::record_flushes`]). The DST replay suite compares whole
/// traces across same-seed runs: the adaptive schedule must be
/// bit-identical.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlushEvent {
    /// Clock offset from fabric creation (virtual time under the sim).
    pub at: Duration,
    /// Node the flushing outbox belongs to.
    pub src: NodeId,
    /// Destination node of the flushed lane.
    pub dest: NodeId,
    /// Buffered bytes at flush time.
    pub bytes: usize,
    /// What tripped the flush.
    pub trigger: FlushTrigger,
    /// The lane's flush threshold when the decision was made.
    pub threshold: usize,
}

/// Sequencing state for [`FaultInjection::drop_batch_nth`]: a plain
/// counter guarded by the same mutex as an RNG derived from the engine
/// seed on the simulator's fault-schedule stream. Each candidate batch
/// consumes one draw, so the stream position stays in lockstep with the
/// arrival index and probabilistic ingress faults added to this path
/// later cannot shift an existing recorded schedule.
struct FaultState {
    rng: SmallRng,
    seen: u64,
}

/// The raw channel endpoints behind the per-node network threads. The
/// threaded engine consumes them inside [`Fabric::new`]'s spawned loops;
/// the deterministic simulator ([`crate::sim`]) takes them from
/// [`Fabric::new_sim`] and pumps them cooperatively instead.
pub(crate) struct NetChannels {
    pub egress_rx: Vec<Receiver<EgressEvent>>,
    pub ingress_tx: Vec<Sender<IngressEvent>>,
    pub ingress_rx: Vec<Receiver<IngressEvent>>,
}

/// The cluster fabric: inbox senders plus the tier-2 network threads.
pub struct Fabric {
    partitioner: Partitioner,
    io_mode: IoMode,
    flush_threshold: usize,
    net_cfg: NetConfig,
    worker_tx: Vec<Sender<WorkerMsg>>,
    coord_tx: Sender<CoordMsg>,
    egress_tx: Vec<Sender<EgressEvent>>,
    stats: Arc<NetStats>,
    invariants: Arc<MsgLedger>,
    fault: FaultInjection,
    /// Deterministic `drop_batch_nth` sequencing (see [`FaultState`]).
    fault_state: Mutex<FaultState>,
    /// Reusable egress frame buffers (zero-copy batch codec).
    pool: BytesPool,
    /// Whether this process sees the whole cluster's ledger (see
    /// [`Fabric::ledger_is_global`]). Cleared by
    /// [`Fabric::new_with_transport`].
    ledger_global: AtomicBool,
    /// Adaptive-flush policy ([`IoMode::Adaptive`]; inert otherwise).
    adaptive: AdaptivePolicy,
    /// Fabric creation time; flush-trace timestamps are offsets from this.
    epoch: Instant,
    /// Flush tracing toggle; off by default (zero steady-state cost).
    trace_flushes: AtomicBool,
    /// Recorded flush decisions while tracing is on.
    flush_trace: Mutex<Vec<FlushEvent>>,
    /// Most recent undecodable-frame error, surfaced to diagnostics
    /// instead of stderr.
    last_decode_error: Mutex<Option<GdError>>,
    /// Remote-traffic sketch feeding the rebalance planner (off by
    /// default; see [`crate::rebalance`]).
    hot: crate::rebalance::HotTracker,
    /// Decode errors can surface on any ingress thread, so this shard is
    /// mutex-wrapped (the path is cold by definition).
    #[cfg(feature = "obs")]
    decode_shard: Mutex<crate::obs::NetShard>,
    /// Cluster-wide observability state (registry + trace sink).
    #[cfg(feature = "obs")]
    obs: Arc<crate::obs::EngineObs>,
}

impl Fabric {
    /// Build the fabric and its network-channel endpoints without spawning
    /// any threads (shared by the threaded and simulated constructors).
    fn build(
        config: &EngineConfig,
        worker_tx: Vec<Sender<WorkerMsg>>,
        coord_tx: Sender<CoordMsg>,
    ) -> (Arc<Fabric>, NetChannels) {
        let partitioner = Partitioner::new(config.nodes, config.workers_per_node);
        #[cfg(feature = "obs")]
        let obs = Arc::new(crate::obs::EngineObs::new(partitioner.num_parts()));
        #[cfg(feature = "obs")]
        let stats = Arc::new(NetStats::new(Arc::clone(&obs)));
        #[cfg(not(feature = "obs"))]
        let stats = Arc::new(NetStats::default());
        let mut egress_tx = Vec::new();
        let mut egress_rx = Vec::new();
        let mut ingress_tx = Vec::new();
        let mut ingress_rx = Vec::new();
        for _ in 0..config.nodes {
            let (tx, rx) = unbounded();
            egress_tx.push(tx);
            egress_rx.push(rx);
            let (tx, rx) = unbounded();
            ingress_tx.push(tx);
            ingress_rx.push(rx);
        }
        let fabric = Arc::new(Fabric {
            partitioner,
            io_mode: config.io_mode,
            flush_threshold: config.flush_threshold,
            net_cfg: config.net,
            worker_tx,
            coord_tx,
            egress_tx,
            stats,
            invariants: Arc::new(MsgLedger::new()),
            fault: config.fault,
            fault_state: Mutex::new(FaultState {
                rng: graphdance_common::rng::derive(config.seed, crate::sim::FAULT_STREAM),
                seen: 0,
            }),
            pool: BytesPool::new(),
            ledger_global: AtomicBool::new(true),
            adaptive: config.adaptive,
            epoch: now(),
            trace_flushes: AtomicBool::new(false),
            flush_trace: Mutex::new(Vec::new()),
            last_decode_error: Mutex::new(None),
            hot: crate::rebalance::HotTracker::new(),
            #[cfg(feature = "obs")]
            decode_shard: Mutex::new(obs.net_shard()),
            #[cfg(feature = "obs")]
            obs,
        });
        let channels = NetChannels {
            egress_rx,
            ingress_tx,
            ingress_rx,
        };
        (fabric, channels)
    }

    /// Build the fabric and spawn the per-node network threads. Returns the
    /// fabric and the thread handles (joined at shutdown).
    pub fn new(
        config: &EngineConfig,
        worker_tx: Vec<Sender<WorkerMsg>>,
        coord_tx: Sender<CoordMsg>,
    ) -> (Arc<Fabric>, Vec<std::thread::JoinHandle<()>>) {
        let (fabric, channels) = Fabric::build(config, worker_tx, coord_tx);
        let NetChannels {
            egress_rx,
            ingress_tx,
            ingress_rx,
        } = channels;
        let mut handles = Vec::new();
        for (node, rx) in egress_rx.into_iter().enumerate() {
            let pump = EgressPump::new(Arc::clone(&fabric), rx, ingress_tx.clone());
            handles.push(
                std::thread::Builder::new()
                    .name(format!("gd-egress-{node}"))
                    .spawn(move || pump.run())
                    // Fabric construction precedes all queries.
                    .expect("spawn egress"), // lint: allow(hot-path-panics)
            );
        }
        for (node, rx) in ingress_rx.into_iter().enumerate() {
            let fabric2 = Arc::clone(&fabric);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("gd-ingress-{node}"))
                    .spawn(move || ingress_loop(fabric2, rx))
                    // Fabric construction precedes all queries.
                    .expect("spawn ingress"), // lint: allow(hot-path-panics)
            );
        }
        (fabric, handles)
    }

    /// Build the fabric for one node of a **multi-process** cluster: the
    /// given transport backend carries packets between processes. Only the
    /// local node's egress pump is spawned (remote nodes run their own
    /// processes), and no ingress threads exist — the transport's reader
    /// threads deliver straight into [`Fabric::deliver`]. The message
    /// ledger stays per-process (sends to remote nodes are recorded here,
    /// their deliveries in the receiving process), so
    /// [`Fabric::ledger_is_global`] reports `false` and cross-node
    /// conservation checks must be summed across processes.
    pub fn new_with_transport(
        config: &EngineConfig,
        local_node: NodeId,
        worker_tx: Vec<Sender<WorkerMsg>>,
        coord_tx: Sender<CoordMsg>,
        transport: Arc<dyn crate::transport::Transport>,
    ) -> (Arc<Fabric>, Vec<std::thread::JoinHandle<()>>) {
        let (fabric, channels) = Fabric::build(config, worker_tx, coord_tx);
        // sync: single-writer flag set before any reader thread exists
        fabric.ledger_global.store(false, Ordering::Relaxed);
        // Deliveries for queries whose sends happened in a peer process
        // must still be counted here (cross-process conservation is checked
        // by summing the per-process ledgers).
        fabric.invariants.set_local(true);
        transport.start(Arc::clone(&fabric));
        let mut egress_rx = channels.egress_rx;
        let rx = egress_rx.remove(local_node.as_usize());
        // The other nodes' egress/ingress endpoints die here: their outbox
        // lanes exist in *their* processes, and `Fabric::shutdown`'s sends
        // to the dead channels are ignored.
        let pump = EgressPump::with_transport(Arc::clone(&fabric), rx, transport);
        let handle = std::thread::Builder::new()
            .name(format!("gd-egress-{}", local_node.as_usize()))
            .spawn(move || pump.run())
            // Fabric construction precedes all queries.
            .expect("spawn egress"); // lint: allow(hot-path-panics)
        (fabric, vec![handle])
    }

    /// Build the fabric for the deterministic simulator: no threads are
    /// spawned; the caller receives the raw channel endpoints and pumps
    /// them itself (egress via [`EgressPump::pump`], ingress by draining
    /// `ingress_rx` under the virtual clock).
    pub(crate) fn new_sim(
        config: &EngineConfig,
        worker_tx: Vec<Sender<WorkerMsg>>,
        coord_tx: Sender<CoordMsg>,
    ) -> (Arc<Fabric>, NetChannels) {
        Fabric::build(config, worker_tx, coord_tx)
    }

    /// Topology.
    pub fn partitioner(&self) -> Partitioner {
        self.partitioner
    }

    /// Shared counters.
    pub fn stats(&self) -> &Arc<NetStats> {
        &self.stats
    }

    /// The message-conservation ledger (debug-build invariant checker).
    pub fn invariants(&self) -> &Arc<MsgLedger> {
        &self.invariants
    }

    /// Does this process see the whole cluster's ledger? `true` for the
    /// in-process fabrics; `false` under [`Fabric::new_with_transport`],
    /// where a cross-process send is recorded in the sender's ledger and
    /// its delivery in the receiver's — per-process sent==delivered checks
    /// would misfire, so the coordinator watchdog skips them.
    pub fn ledger_is_global(&self) -> bool {
        // sync: single-writer flag set at construction, read-only after
        self.ledger_global.load(Ordering::Relaxed)
    }

    /// The hot-vertex sketch feeding the rebalance planner.
    pub fn hot_tracker(&self) -> &crate::rebalance::HotTracker {
        &self.hot
    }

    /// The cluster's observability state (metrics registry + trace sink).
    #[cfg(feature = "obs")]
    pub fn obs(&self) -> &Arc<crate::obs::EngineObs> {
        &self.obs
    }

    /// Frame-pool accounting (zero-copy codec diagnostics).
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// The adaptive I/O scheduler policy this fabric was built with.
    pub fn adaptive(&self) -> &AdaptivePolicy {
        &self.adaptive
    }

    /// Return a frame to the pool without delivering it (the simulator's
    /// fault injector uses this when it drops a wire batch, so leased
    /// frames don't leak out of the pool's accounting).
    pub(crate) fn pool_put(&self, frame: Vec<u8>) {
        self.pool.put(frame);
    }

    /// Toggle flush-decision tracing (see [`FlushEvent`]).
    pub fn record_flushes(&self, on: bool) {
        // sync: tracing toggle — eventual visibility suffices, missed
        // events around the flip are acceptable
        self.trace_flushes.store(on, Ordering::Relaxed);
    }

    /// Drain the recorded flush trace.
    pub fn take_flush_trace(&self) -> Vec<FlushEvent> {
        std::mem::take(&mut *self.flush_trace.lock())
    }

    /// Take the most recent undecodable-frame error, if any arrived.
    pub fn take_decode_error(&self) -> Option<GdError> {
        self.last_decode_error.lock().take()
    }

    fn note_flush(
        &self,
        src: NodeId,
        dest: NodeId,
        bytes: usize,
        trigger: FlushTrigger,
        threshold: usize,
    ) {
        // sync: tracing toggle read, pairs with the Relaxed store in
        // record_flushes — no data guarded by the flag itself
        if !self.trace_flushes.load(Ordering::Relaxed) {
            return;
        }
        // lint: allow(hot-path-blocking) diagnostic trace, gated off by
        // default: bounded Vec push while held
        self.flush_trace.lock().push(FlushEvent {
            at: now() - self.epoch,
            src,
            dest,
            bytes,
            trigger,
            threshold,
        });
    }

    /// Create an outbox for a thread running on `src_node`.
    pub fn outbox(self: &Arc<Self>, src_node: NodeId) -> Outbox {
        let n = self.partitioner.nodes() as usize;
        let threshold = if self.io_mode == IoMode::Adaptive {
            self.flush_threshold
                .clamp(self.adaptive.min_threshold, self.adaptive.max_threshold)
        } else {
            self.flush_threshold
        };
        Outbox {
            #[cfg(feature = "obs")]
            obs: self.obs.net_shard(),
            fabric: Arc::clone(self),
            src_node,
            bufs: (0..n).map(|_| OutBuf::default()).collect(),
            lanes: (0..n).map(|_| LaneCtl { threshold }).collect(),
        }
    }

    /// Stop the network threads (send after all workers have stopped).
    pub fn shutdown(&self) {
        for tx in &self.egress_tx {
            let _ = tx.send(EgressEvent::Shutdown);
        }
    }

    /// Should the next remote batch at ingress be dropped
    /// (`drop_batch_nth`)? Consumes one fault-stream draw per candidate.
    fn batch_drop_fault(&self) -> bool {
        let Some(nth) = self.fault.drop_batch_nth else {
            return false;
        };
        // lint: allow(hot-path-blocking) fault-injection state (tests/sim
        // only): two integer updates while held
        let mut st = self.fault_state.lock();
        st.seen += 1;
        let _ = st.rng.next_u64();
        st.seen == nth
    }

    /// Record an undecodable batch frame: typed error for diagnostics plus
    /// the `net.decode_errors` counter — never stderr. Shared with the
    /// socket transport's reassembly path.
    pub(crate) fn note_decode_error(&self, e: GdError) {
        #[cfg(feature = "obs")]
        // lint: allow(hot-path-blocking) rare fault path (corrupt frame):
        // bounded shard-counter bump while held
        self.decode_shard.lock().decode_error();
        #[cfg(not(feature = "obs"))]
        // sync: monotonic diagnostic counter, no ordering dependency
        self.stats.decode_errors.fetch_add(1, Ordering::Relaxed);
        // lint: allow(hot-path-blocking) rare fault path: replaces one
        // Option while held
        *self.last_decode_error.lock() = Some(e);
    }

    /// Deliver a wire message locally (shared-memory shortcut or post-
    /// deserialization dispatch).
    pub(crate) fn deliver(&self, msg: WireMsg) {
        match msg {
            WireMsg::Batch { dest, payload } => {
                if self.batch_drop_fault() {
                    // Injected fault: the batch sinks without a trace.
                    // The ledger's `delivered` count stays short, which
                    // the watchdog turns into a diagnostic. The frame
                    // itself still goes back to the pool.
                    self.pool.put(payload);
                    return;
                }
                match codec::decode_batch_borrowed(&payload) {
                    Ok((batch, progress)) => {
                        self.record_delivered(&batch);
                        if !batch.is_empty() {
                            let _ = self.worker_tx[dest.as_usize()].send(WorkerMsg::Batch(batch));
                        }
                        // Piggybacked progress rides behind the batch it
                        // was flushed with, preserving the rows-before-
                        // progress FIFO (rows are never piggybacked).
                        for p in progress {
                            let _ = self.coord_tx.send(CoordMsg::Progress {
                                query: p.query,
                                weight: p.weight,
                                steps: p.steps,
                            });
                        }
                    }
                    Err(e) => {
                        // A corrupt frame names no query we could fail
                        // directly. Drop it: the message-conservation
                        // watchdog then surfaces the stalled query with
                        // sent/delivered counts (debug builds), or the
                        // query deadline fires (release). The error and a
                        // counter are kept for diagnostics.
                        self.note_decode_error(e);
                    }
                }
                self.pool.put(payload);
            }
            WireMsg::Progress {
                query,
                weight,
                steps,
            } => {
                let _ = self.coord_tx.send(CoordMsg::Progress {
                    query,
                    weight,
                    steps,
                });
            }
            WireMsg::Rows { query, rows, .. } => {
                let _ = self.coord_tx.send(CoordMsg::Rows { query, rows });
            }
            WireMsg::CtrlWorker { dest, msg } => {
                if MsgLedger::ENABLED {
                    if let Some(q) = crate::messages::worker_migration_qid(&msg) {
                        self.invariants.record_delivered(q, 1);
                    }
                }
                let _ = self.worker_tx[dest.as_usize()].send(msg);
            }
            WireMsg::CtrlCoord { msg } => {
                if MsgLedger::ENABLED {
                    if let Some(q) = crate::messages::coord_migration_qid(&msg) {
                        self.invariants.record_delivered(q, 1);
                    }
                }
                let _ = self.coord_tx.send(msg);
            }
        }
    }

    /// Deliver a batch of local traversers without serialization. The
    /// sending outbox counts the same-node shortcut (see
    /// [`Outbox::flush_node`]).
    fn deliver_local_batch(&self, dest: WorkerId, batch: Vec<Traverser>) {
        self.record_delivered(&batch);
        let _ = self.worker_tx[dest.as_usize()].send(WorkerMsg::Batch(batch));
    }

    /// Record a batch's traversers as delivered, per query (no-op in
    /// release builds).
    fn record_delivered(&self, batch: &[Traverser]) {
        if !MsgLedger::ENABLED {
            return;
        }
        for t in batch {
            self.invariants.record_delivered(t.query, 1);
        }
    }
}

/// The in-process transport backend: charge the modeled send cost, stamp
/// the propagation delay, and forward the packet to the destination node's
/// ingress channel. Used by both the threaded engine (ingress threads
/// drain the channels) and the deterministic simulator (the sim drains
/// them under the virtual clock) — the charge → count → stamp → send
/// sequence is exactly the pre-seam fabric's, so sim replays stay
/// bit-identical.
pub(crate) struct ChannelTransport {
    fabric: Arc<Fabric>,
    ingress: Vec<Sender<IngressEvent>>,
    #[cfg(feature = "obs")]
    obs: crate::obs::NetShard,
}

impl crate::transport::Transport for ChannelTransport {
    fn name(&self) -> &'static str {
        "channel"
    }

    fn start(&self, _fabric: Arc<Fabric>) {}

    fn ship(&self, pkt: crate::transport::WirePacket) {
        let crate::transport::WirePacket {
            dest_node,
            msgs,
            bytes,
        } = pkt;
        let fabric = &self.fabric;
        let wire = bytes + 64; // packet header
        charge(fabric.net_cfg.send_cost(wire));
        #[cfg(feature = "obs")]
        self.obs.wire_packet(wire);
        #[cfg(not(feature = "obs"))]
        {
            // sync: monotonic diagnostic counters (obs-off fallback)
            fabric.stats.wire_packets.fetch_add(1, Ordering::Relaxed);
            fabric
                .stats
                .wire_bytes
                // sync: monotonic diagnostic counter (obs-off fallback)
                .fetch_add(wire as u64, Ordering::Relaxed);
        }
        let deliver_at = now() + fabric.net_cfg.propagation_delay;
        let _ = self.ingress[dest_node.as_usize()].send(IngressEvent::Packet { deliver_at, msgs });
    }

    fn end_of_stream(&self) {
        // Propagate shutdown to every ingress thread once (node 0's egress
        // is guaranteed to exist; have each egress notify its own node's
        // ingress).
        for tx in &self.ingress {
            let _ = tx.send(IngressEvent::Shutdown);
        }
    }
}

/// One node's tier-2 sender (node-level combining). The threaded engine
/// runs [`EgressPump::run`] on a dedicated `gd-egress-N` thread; the
/// deterministic simulator holds the pump directly and calls
/// [`EgressPump::pump`] as a cooperatively-scheduled actor. Combined
/// packets leave through the [`crate::transport::Transport`] seam.
pub(crate) struct EgressPump {
    fabric: Arc<Fabric>,
    rx: Receiver<EgressEvent>,
    transport: Arc<dyn crate::transport::Transport>,
}

impl EgressPump {
    /// In-process pump (threaded and simulated engines): packets ship over
    /// the [`ChannelTransport`].
    pub(crate) fn new(
        fabric: Arc<Fabric>,
        rx: Receiver<EgressEvent>,
        ingress: Vec<Sender<IngressEvent>>,
    ) -> Self {
        let transport = Arc::new(ChannelTransport {
            #[cfg(feature = "obs")]
            obs: fabric.obs.net_shard(),
            fabric: Arc::clone(&fabric),
            ingress,
        });
        EgressPump {
            fabric,
            rx,
            transport,
        }
    }

    /// Pump shipping over an arbitrary transport backend (the real-socket
    /// multi-process engine).
    pub(crate) fn with_transport(
        fabric: Arc<Fabric>,
        rx: Receiver<EgressEvent>,
        transport: Arc<dyn crate::transport::Transport>,
    ) -> Self {
        EgressPump {
            fabric,
            rx,
            transport,
        }
    }

    /// Is an egress event queued?
    pub(crate) fn has_pending(&self) -> bool {
        !self.rx.is_empty()
    }

    /// Non-blocking quantum: process one queued event (plus tier-2
    /// combining) if there is one. Returns `false` once `Shutdown` has been
    /// consumed.
    pub(crate) fn pump(&self) -> bool {
        match self.rx.try_recv() {
            Ok(ev) => self.round(ev),
            Err(_) => true,
        }
    }

    /// Blocking loop for the threaded engine.
    pub(crate) fn run(self) {
        loop {
            let ev = match self.rx.recv() {
                Ok(ev) => ev,
                Err(_) => break,
            };
            if !self.round(ev) {
                break;
            }
        }
        // All flushed packets are shipped (FIFO): let the transport drain
        // and propagate shutdown downstream.
        self.transport.end_of_stream();
    }

    /// Combine `first` with whatever else is queued right now (tier 2) and
    /// ship the per-destination wire packets through the transport seam.
    /// Returns `false` if a `Shutdown` was consumed.
    fn round(&self, first: EgressEvent) -> bool {
        let fabric = &self.fabric;
        let first = match first {
            EgressEvent::Packet {
                dest_node,
                msgs,
                bytes,
            } => (dest_node, msgs, bytes),
            EgressEvent::Shutdown => return false,
        };
        // Node-level combining (tier 2): merge whatever is queued right now
        // into per-destination wire packets.
        let mut alive = true;
        let mut groups: Vec<(NodeId, Vec<WireMsg>, usize)> = vec![first];
        if matches!(fabric.io_mode, IoMode::TwoTier | IoMode::Adaptive) {
            for _ in 0..64 {
                match self.rx.try_recv() {
                    Ok(EgressEvent::Packet {
                        dest_node,
                        msgs,
                        bytes,
                    }) => {
                        if let Some(g) = groups.iter_mut().find(|g| g.0 == dest_node) {
                            g.1.extend(msgs);
                            g.2 += bytes;
                        } else {
                            groups.push((dest_node, msgs, bytes));
                        }
                    }
                    Ok(EgressEvent::Shutdown) => {
                        // Transmit what we have, then exit.
                        alive = false;
                        break;
                    }
                    Err(_) => break,
                }
            }
        }
        for (dest_node, msgs, bytes) in groups {
            self.transport.ship(crate::transport::WirePacket {
                dest_node,
                msgs,
                bytes,
            });
        }
        alive
    }
}

fn ingress_loop(fabric: Arc<Fabric>, rx: Receiver<IngressEvent>) {
    // Drain-before-close: every egress pump broadcasts one `Shutdown` after
    // its last packet, and this channel is per-sender FIFO — so after one
    // `Shutdown` per pump has arrived, no pump can still have packets
    // queued here. Exiting on the *first* `Shutdown` instead would race a
    // quick-to-stop pump against another node's still-draining egress and
    // truncate its tail.
    let pumps = fabric.partitioner().nodes() as usize;
    let mut shutdowns = 0usize;
    while shutdowns < pumps {
        match rx.recv() {
            Ok(IngressEvent::Packet { deliver_at, msgs }) => {
                let now = now();
                if deliver_at > now {
                    std::thread::sleep(deliver_at - now); // lint: allow(sim-determinism) threaded-mode only; sim pumps ingress itself
                }
                for m in msgs {
                    fabric.deliver(m);
                }
            }
            Ok(IngressEvent::Shutdown) => shutdowns += 1,
            Err(_) => break, // all senders gone: nothing more can arrive
        }
    }
}

/// Burn (or sleep) a simulated cost: spins for sub-50 µs durations (sleep
/// granularity is too coarse), sleeps otherwise. Public so the baseline
/// engines charge their simulated overheads identically. Under a frozen
/// clock the cost advances virtual time instead — spinning on a clock that
/// only the simulator can move would hang forever.
pub fn charge(d: Duration) {
    if d.is_zero() {
        return;
    }
    if graphdance_common::time::sim::is_frozen() {
        graphdance_common::time::sim::advance(d);
        return;
    }
    if d > Duration::from_micros(50) {
        // lint: allow(hot-path-blocking) deliberate: charge() IS the cost
        // model — the sleep models wire latency in threaded mode
        std::thread::sleep(d); // lint: allow(sim-determinism) unreachable under a frozen clock (see above)
    } else {
        let end = now() + d;
        while now() < end {
            std::hint::spin_loop();
        }
    }
}

/// Tier-1 buffer for one destination node.
#[derive(Default)]
struct OutBuf {
    /// Unserialized traversers, grouped at flush time.
    traversers: Vec<(WorkerId, Traverser)>,
    /// Other pending wire messages (rows/progress/control), in send order.
    msgs: Vec<WireMsg>,
    bytes: usize,
    /// When the oldest buffered message arrived (`IoMode::Adaptive` only:
    /// drives the idle-flush deadline and the residency feedback signal).
    /// Cleared with the rest of the buffer at flush.
    first_at: Option<Instant>,
}

impl OutBuf {
    fn is_empty(&self) -> bool {
        self.traversers.is_empty() && self.msgs.is_empty()
    }
}

/// Per-lane adaptive-flush state. Lives outside [`OutBuf`] because the
/// buffer is reset wholesale on flush while the learned threshold must
/// persist across flushes.
struct LaneCtl {
    /// Current flush threshold in bytes.
    threshold: usize,
}

/// A sending endpoint: per-destination-node buffers (tier 1).
pub struct Outbox {
    fabric: Arc<Fabric>,
    src_node: NodeId,
    bufs: Vec<OutBuf>,
    /// Adaptive per-lane control state, indexed like `bufs`.
    lanes: Vec<LaneCtl>,
    /// This sender's single-writer metrics shard.
    #[cfg(feature = "obs")]
    obs: crate::obs::NetShard,
}

impl Outbox {
    /// The topology (convenience).
    pub fn partitioner(&self) -> Partitioner {
        self.fabric.partitioner()
    }

    /// The owning fabric (workers reach shared fabric state — e.g. the
    /// hot-vertex sketch — through their outbox).
    pub(crate) fn fabric(&self) -> &Arc<Fabric> {
        &self.fabric
    }

    /// Count one logical message of `class` (shard under obs, atomics
    /// otherwise).
    #[inline]
    fn count(&self, class: MsgClass, bytes: usize) {
        #[cfg(feature = "obs")]
        self.obs.count(class as usize, bytes);
        #[cfg(not(feature = "obs"))]
        self.fabric.stats.count(class, bytes);
    }

    /// Count one message delivered via the same-node shortcut.
    #[inline]
    fn note_same_node(&self) {
        #[cfg(feature = "obs")]
        self.obs.same_node();
        #[cfg(not(feature = "obs"))]
        self.fabric
            .stats
            .same_node_msgs
            // sync: monotonic diagnostic counter (obs-off fallback)
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Stamp the lane's first-arrival time (adaptive residency/deadline
    /// signal). Called on every enqueue; free in non-adaptive modes.
    #[inline]
    fn note_enqueue(&mut self, node: usize) {
        if self.fabric.io_mode == IoMode::Adaptive && self.bufs[node].first_at.is_none() {
            self.bufs[node].first_at = Some(now());
        }
    }

    /// Move the lane's threshold per the feedback signals observed at this
    /// flush decision. Multiplicative in both directions, clamped to the
    /// policy range. Every input (egress depth, residency on the virtual
    /// clock) is deterministic under the simulator.
    fn adapt(&mut self, node: usize, trigger: FlushTrigger) {
        let pol = &self.fabric.adaptive;
        let threshold = self.lanes[node].threshold;
        let next = match trigger {
            // A deadline fired before the batch filled: the lane is
            // latency-bound, shrink toward smaller, quicker batches.
            FlushTrigger::Deadline => threshold / 2,
            FlushTrigger::Threshold => {
                let depth = self.fabric.egress_tx[self.src_node.as_usize()].len();
                let residency = self.bufs[node]
                    .first_at
                    .map(|t| now().saturating_duration_since(t))
                    .unwrap_or_default();
                if depth >= pol.egress_depth_high || residency < pol.residency_low {
                    // Egress is backed up, or traversers arrive faster
                    // than the threshold drains: bandwidth-bound, grow.
                    threshold * 2
                } else if residency > pol.residency_high {
                    // The buffer sat around before filling: shrink.
                    threshold / 2
                } else {
                    threshold
                }
            }
            _ => threshold,
        };
        self.lanes[node].threshold = next.clamp(pol.min_threshold, pol.max_threshold);
    }

    fn maybe_flush(&mut self, node: usize) {
        match self.fabric.io_mode {
            IoMode::Sync => self.flush_node_as(NodeId(node as u32), FlushTrigger::Threshold),
            IoMode::ThreadCombining | IoMode::TwoTier => {
                if self.bufs[node].bytes >= self.fabric.flush_threshold {
                    #[cfg(feature = "obs")]
                    self.obs.flush_threshold();
                    self.flush_node_as(NodeId(node as u32), FlushTrigger::Threshold);
                }
            }
            IoMode::Adaptive => {
                if self.bufs[node].bytes >= self.lanes[node].threshold {
                    #[cfg(feature = "obs")]
                    self.obs.flush_threshold();
                    self.adapt(node, FlushTrigger::Threshold);
                    self.flush_node_as(NodeId(node as u32), FlushTrigger::Threshold);
                }
            }
        }
    }

    /// Flush every lane whose idle-flush deadline has passed
    /// (`IoMode::Adaptive`). Returns whether anything was flushed. Workers
    /// call this each pump so a buffered lane is never held past
    /// `AdaptivePolicy::idle_flush` — on the virtual clock under the sim,
    /// on the wall clock in the threaded engine.
    pub fn poll_deadlines(&mut self) -> bool {
        if self.fabric.io_mode != IoMode::Adaptive {
            return false;
        }
        let mut flushed = false;
        let t = now();
        for node in 0..self.bufs.len() {
            let Some(first) = self.bufs[node].first_at else {
                continue;
            };
            if t >= first + self.fabric.adaptive.idle_flush {
                #[cfg(feature = "obs")]
                self.obs.deadline_flush();
                #[cfg(not(feature = "obs"))]
                self.fabric
                    .stats
                    .deadline_flushes
                    // sync: monotonic diagnostic counter (obs-off fallback)
                    .fetch_add(1, Ordering::Relaxed);
                self.adapt(node, FlushTrigger::Deadline);
                self.flush_node_as(NodeId(node as u32), FlushTrigger::Deadline);
                flushed = true;
            }
        }
        flushed
    }

    /// The earliest pending idle-flush deadline across all lanes, if any
    /// (`IoMode::Adaptive`). Idle workers sleep no longer than this; the
    /// simulator folds it into its timer horizon.
    pub fn next_flush_deadline(&self) -> Option<Instant> {
        if self.fabric.io_mode != IoMode::Adaptive {
            return None;
        }
        self.bufs
            .iter()
            .filter_map(|b| b.first_at)
            .min()
            .map(|first| first + self.fabric.adaptive.idle_flush)
    }

    /// Queue a traverser for `dest` (tier-1 buffering; flushes at the
    /// threshold, immediately under `Sync`).
    pub fn send_traverser(&mut self, dest: WorkerId, t: Traverser) {
        let node = self.fabric.partitioner.node_of_worker(dest).as_usize();
        // Exact encoded size (not the coarse `approx_bytes`): adaptive
        // thresholds steer on real frame bytes.
        let size = t.wire_bytes();
        self.count(MsgClass::Traverser, size);
        self.fabric.invariants.record_sent(t.query, 1);
        self.note_enqueue(node);
        let buf = &mut self.bufs[node];
        buf.traversers.push((dest, t));
        buf.bytes += size;
        self.maybe_flush(node);
    }

    /// Queue a progress report for the coordinator (node 0).
    pub fn send_progress(&mut self, query: QueryId, weight: Weight, steps: u64) {
        self.count(MsgClass::Progress, 32);
        self.note_enqueue(0);
        let buf = &mut self.bufs[0];
        buf.msgs.push(WireMsg::Progress {
            query,
            weight,
            steps,
        });
        buf.bytes += 32;
        self.maybe_flush(0);
    }

    /// **Fault injection only** (`SimFaults::progress_side_channel`): send
    /// a progress report straight to the coordinator inbox, bypassing the
    /// tier-1 buffer and the wire. This reproduces the pre-fix
    /// `shared_state_khop` drain order, where a coalesced progress report
    /// could overtake result rows still buffered in the sender's outbox and
    /// complete the stage before the rows arrived.
    pub fn send_progress_sidechannel(&mut self, query: QueryId, weight: Weight, steps: u64) {
        self.count(MsgClass::Progress, 32);
        let _ = self.fabric.coord_tx.send(CoordMsg::Progress {
            query,
            weight,
            steps,
        });
    }

    /// Queue result rows for the coordinator (node 0). Returns the
    /// approximate encoded size charged to the cost model.
    pub fn send_rows(&mut self, query: QueryId, rows: Vec<Row>) -> usize {
        let approx: usize = rows
            .iter()
            .map(|r| {
                8 + r
                    .iter()
                    .map(|v| match v {
                        Value::Str(s) => 9 + s.len(),
                        Value::List(l) => 9 + 16 * l.len(),
                        _ => 9,
                    })
                    .sum::<usize>()
            })
            .sum();
        self.count(MsgClass::Rows, approx);
        self.note_enqueue(0);
        let buf = &mut self.bufs[0];
        buf.msgs.push(WireMsg::Rows {
            query,
            rows,
            approx,
        });
        buf.bytes += approx;
        self.maybe_flush(0);
        approx
    }

    /// Send a control message to a worker (flushes that node immediately —
    /// the control plane is not batched). Returns the wire size.
    pub fn send_ctrl_worker(&mut self, dest: WorkerId, msg: WorkerMsg) -> usize {
        let node = self.fabric.partitioner.node_of_worker(dest).as_usize();
        let size = codec::worker_msg_wire_size(&msg);
        self.count(MsgClass::Control, size);
        if MsgLedger::ENABLED {
            if let Some(q) = crate::messages::worker_migration_qid(&msg) {
                self.fabric.invariants.record_sent(q, 1);
            }
        }
        self.bufs[node].msgs.push(WireMsg::CtrlWorker { dest, msg });
        self.bufs[node].bytes += size;
        self.flush_node_as(NodeId(node as u32), FlushTrigger::Control);
        size
    }

    /// Send a control message to the coordinator (immediate). Returns the
    /// wire size.
    pub fn send_ctrl_coord(&mut self, msg: CoordMsg) -> usize {
        let size = codec::coord_msg_wire_size(&msg);
        self.count(MsgClass::Control, size);
        if MsgLedger::ENABLED {
            if let Some(q) = crate::messages::coord_migration_qid(&msg) {
                self.fabric.invariants.record_sent(q, 1);
            }
        }
        self.bufs[0].msgs.push(WireMsg::CtrlCoord { msg });
        self.bufs[0].bytes += size;
        self.flush_node_as(NodeId(0), FlushTrigger::Control);
        size
    }

    /// Flush one destination node's buffer.
    pub fn flush_node(&mut self, node: NodeId) {
        self.flush_node_as(node, FlushTrigger::Explicit);
    }

    fn flush_node_as(&mut self, node: NodeId, trigger: FlushTrigger) {
        let buf = std::mem::take(&mut self.bufs[node.as_usize()]);
        if buf.is_empty() {
            return;
        }
        self.fabric.note_flush(
            self.src_node,
            node,
            buf.bytes,
            trigger,
            self.lanes[node.as_usize()].threshold,
        );
        #[cfg(feature = "obs")]
        self.obs.flush_buf_bytes(buf.bytes);
        if node == self.src_node {
            // Shared-memory shortcut: no serialization, no network thread.
            let mut groups: Vec<(WorkerId, Vec<Traverser>)> = Vec::new();
            for (dest, t) in buf.traversers {
                if let Some(g) = groups.iter_mut().find(|g| g.0 == dest) {
                    g.1.push(t);
                } else {
                    groups.push((dest, vec![t]));
                }
            }
            for (dest, batch) in groups {
                self.note_same_node();
                self.fabric.deliver_local_batch(dest, batch);
            }
            for m in buf.msgs {
                self.note_same_node();
                self.fabric.deliver(m);
            }
            return;
        }
        // Remote: serialize traverser groups per destination worker.
        let mut msgs: Vec<WireMsg> = Vec::new();
        let mut groups: Vec<(WorkerId, Vec<Traverser>)> = Vec::new();
        for (dest, t) in buf.traversers {
            if let Some(g) = groups.iter_mut().find(|g| g.0 == dest) {
                g.1.push(t);
            } else {
                groups.push((dest, vec![t]));
            }
        }
        // Piggyback pending progress reports on the first batch frame —
        // only when every queued wire message is a progress report, so a
        // result row or control message can never be overtaken by a
        // progress report that left the same buffer (the rows-before-
        // progress FIFO invariant).
        let mut rest = buf.msgs;
        let mut piggyback: Vec<ProgressEntry> = Vec::new();
        if self.fabric.io_mode == IoMode::Adaptive
            && !groups.is_empty()
            && !rest.is_empty()
            && rest.iter().all(|m| matches!(m, WireMsg::Progress { .. }))
        {
            for m in rest.drain(..) {
                if let WireMsg::Progress {
                    query,
                    weight,
                    steps,
                } = m
                {
                    piggyback.push(ProgressEntry {
                        query,
                        weight,
                        steps,
                    });
                }
            }
            #[cfg(feature = "obs")]
            self.obs.piggybacked(piggyback.len() as u64);
            #[cfg(not(feature = "obs"))]
            self.fabric
                .stats
                .progress_piggybacked
                // sync: monotonic diagnostic counter (obs-off fallback)
                .fetch_add(piggyback.len() as u64, Ordering::Relaxed);
        }
        for (i, (dest, batch)) in groups.into_iter().enumerate() {
            let mut payload = self.fabric.pool.get();
            let trailer: &[ProgressEntry] = if i == 0 { &piggyback } else { &[] };
            codec::encode_batch_into(&mut payload, &batch, trailer);
            msgs.push(WireMsg::Batch { dest, payload });
        }
        msgs.extend(rest);
        let bytes: usize = msgs.iter().map(WireMsg::wire_size).sum();
        let _ = self.fabric.egress_tx[self.src_node.as_usize()].send(EgressEvent::Packet {
            dest_node: node,
            msgs,
            bytes,
        });
    }

    /// Flush every buffer (called before a worker sleeps, §IV-B).
    pub fn flush_all(&mut self) {
        for n in 0..self.bufs.len() {
            self.flush_node_as(NodeId(n as u32), FlushTrigger::Explicit);
        }
    }

    /// Idle-time flush. In the static modes this drains everything (a
    /// sleeping worker must not strand messages). Under
    /// [`IoMode::Adaptive`] only the same-node lane and lanes carrying
    /// non-traverser messages are drained; pure-traverser remote lanes are
    /// held for their threshold or idle deadline — that residual batching
    /// while the worker naps between inbox polls is where the adaptive
    /// policy earns its message-count savings.
    pub fn flush_idle(&mut self) {
        if self.fabric.io_mode != IoMode::Adaptive {
            self.flush_all();
            return;
        }
        for n in 0..self.bufs.len() {
            let node = NodeId(n as u32);
            if node == self.src_node || !self.bufs[n].msgs.is_empty() {
                self.flush_node_as(node, FlushTrigger::Idle);
            }
        }
    }

    /// Flush only the same-node buffer (cheap; called after each execution
    /// batch to keep local latency low).
    pub fn flush_local(&mut self) {
        let n = self.src_node;
        self.flush_node(n);
    }

    /// Total buffered bytes (diagnostics).
    pub fn pending_bytes(&self) -> usize {
        self.bufs.iter().map(|b| b.bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphdance_pstm::Traverser;

    type FabricUnderTest = (
        Arc<Fabric>,
        Vec<Receiver<WorkerMsg>>,
        Receiver<CoordMsg>,
        Vec<std::thread::JoinHandle<()>>,
    );

    fn setup(io_mode: IoMode) -> FabricUnderTest {
        let mut cfg = EngineConfig::new(2, 2).with_io_mode(io_mode);
        cfg.net.propagation_delay = Duration::from_micros(1);
        cfg.net.per_message_overhead = Duration::from_nanos(100);
        let mut wtx = Vec::new();
        let mut wrx = Vec::new();
        for _ in 0..4 {
            let (tx, rx) = unbounded();
            wtx.push(tx);
            wrx.push(rx);
        }
        let (ctx, crx) = unbounded();
        let (fabric, handles) = Fabric::new(&cfg, wtx, ctx);
        (fabric, wrx, crx, handles)
    }

    fn t(v: u64) -> Traverser {
        Traverser::root(QueryId(1), 0, graphdance_common::VertexId(v), 2, Weight(v))
    }

    #[test]
    fn same_node_shortcut_skips_wire() {
        let (fabric, wrx, _crx, handles) = setup(IoMode::TwoTier);
        let mut ob = fabric.outbox(NodeId(0));
        // worker 1 is on node 0 (2 workers per node)
        ob.send_traverser(WorkerId(1), t(5));
        ob.flush_all();
        match wrx[1].recv_timeout(Duration::from_secs(1)).unwrap() {
            WorkerMsg::Batch(b) => assert_eq!(b.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
        let s = fabric.stats().snapshot();
        assert_eq!(s.wire_packets, 0, "no wire traffic for same-node");
        assert_eq!(s.same_node_msgs, 1);
        fabric.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn cross_node_delivery_serializes() {
        let (fabric, wrx, _crx, handles) = setup(IoMode::TwoTier);
        let mut ob = fabric.outbox(NodeId(0));
        // worker 3 is on node 1
        for i in 0..5 {
            ob.send_traverser(WorkerId(3), t(i));
        }
        ob.flush_all();
        match wrx[3].recv_timeout(Duration::from_secs(1)).unwrap() {
            WorkerMsg::Batch(b) => {
                assert_eq!(b.len(), 5);
                assert_eq!(b[0].vertex, graphdance_common::VertexId(0));
            }
            other => panic!("unexpected {other:?}"),
        }
        let s = fabric.stats().snapshot();
        assert_eq!(s.wire_packets, 1, "one combined packet");
        assert!(s.wire_bytes > 0);
        assert_eq!(s.traverser_msgs, 5, "logical messages counted individually");
        fabric.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn sync_mode_sends_one_packet_per_message() {
        let (fabric, wrx, _crx, handles) = setup(IoMode::Sync);
        let mut ob = fabric.outbox(NodeId(0));
        for i in 0..5 {
            ob.send_traverser(WorkerId(3), t(i));
        }
        // Sync mode flushed each send already.
        let mut got = 0;
        while got < 5 {
            match wrx[3].recv_timeout(Duration::from_secs(1)).unwrap() {
                WorkerMsg::Batch(b) => got += b.len(),
                other => panic!("unexpected {other:?}"),
            }
        }
        let s = fabric.stats().snapshot();
        assert_eq!(s.wire_packets, 5, "no batching in Sync mode");
        fabric.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn threshold_triggers_flush() {
        let (fabric, wrx, _crx, handles) = setup(IoMode::ThreadCombining);
        let mut ob = fabric.outbox(NodeId(0));
        // Each traverser is ~50 bytes; the 8 KB threshold flushes somewhere
        // within 300 sends — without any explicit flush call.
        for i in 0..300u64 {
            ob.send_traverser(WorkerId(2), t(i));
        }
        let mut got = 0;
        while got < 160 {
            match wrx[2].recv_timeout(Duration::from_secs(2)).unwrap() {
                WorkerMsg::Batch(b) => got += b.len(),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(got <= 300);
        assert!(
            fabric.stats().snapshot().wire_packets >= 1,
            "threshold flush produced a wire packet"
        );
        assert!(
            ob.pending_bytes() > 0,
            "a partial buffer remains below threshold"
        );
        fabric.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn progress_and_rows_route_to_coordinator() {
        let (fabric, _wrx, crx, handles) = setup(IoMode::TwoTier);
        // From node 1 (remote to the coordinator's node 0).
        let mut ob = fabric.outbox(NodeId(1));
        ob.send_rows(QueryId(4), vec![vec![Value::Int(1)]]);
        ob.send_progress(QueryId(4), Weight(9), 3);
        ob.flush_all();
        // FIFO: rows before the progress report from the same worker.
        match crx.recv_timeout(Duration::from_secs(1)).unwrap() {
            CoordMsg::Rows { query, rows } => {
                assert_eq!(query, QueryId(4));
                assert_eq!(rows.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        match crx.recv_timeout(Duration::from_secs(1)).unwrap() {
            CoordMsg::Progress {
                query,
                weight,
                steps,
            } => {
                assert_eq!(query, QueryId(4));
                assert_eq!(weight, Weight(9));
                assert_eq!(steps, 3);
            }
            other => panic!("unexpected {other:?}"),
        }
        let s = fabric.stats().snapshot();
        assert_eq!(s.progress_msgs, 1);
        assert_eq!(s.rows_msgs, 1);
        fabric.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn control_messages_flush_immediately() {
        let (fabric, wrx, _crx, handles) = setup(IoMode::TwoTier);
        let mut ob = fabric.outbox(NodeId(0));
        ob.send_ctrl_worker(WorkerId(3), WorkerMsg::QueryEnd { query: QueryId(2) });
        match wrx[3].recv_timeout(Duration::from_secs(1)).unwrap() {
            WorkerMsg::QueryEnd { query } => assert_eq!(query, QueryId(2)),
            other => panic!("unexpected {other:?}"),
        }
        fabric.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn adaptive_idle_deadline_flushes_on_virtual_clock() {
        use graphdance_common::time::sim as vclock;
        let _clock = vclock::freeze_clock();
        let (fabric, wrx, _crx, handles) = setup(IoMode::Adaptive);
        fabric.record_flushes(true);
        let idle = fabric.adaptive().idle_flush;
        let mut ob = fabric.outbox(NodeId(0));
        // One small traverser to a remote worker: far below threshold, so
        // the lane holds it.
        ob.send_traverser(WorkerId(2), t(1));
        let deadline = ob.next_flush_deadline().expect("held lane arms a deadline");
        assert!(!ob.poll_deadlines(), "deadline not due yet");
        assert!(ob.pending_bytes() > 0, "still buffered");
        vclock::advance(idle * 2);
        assert!(deadline <= now());
        assert!(ob.poll_deadlines(), "deadline flush fired");
        assert_eq!(ob.next_flush_deadline(), None, "lane disarmed after flush");
        match wrx[2].recv_timeout(Duration::from_secs(2)).unwrap() {
            WorkerMsg::Batch(b) => assert_eq!(b.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
        let s = fabric.stats().snapshot();
        assert_eq!(s.deadline_flushes, 1);
        let trace = fabric.take_flush_trace();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace[0].trigger, FlushTrigger::Deadline);
        assert_eq!(trace[0].dest, NodeId(1));
        assert!(trace[0].bytes > 0);
        fabric.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn adaptive_piggybacks_progress_on_remote_batches() {
        let (fabric, wrx, crx, handles) = setup(IoMode::Adaptive);
        // From node 1: both the traverser (worker 0) and the coordinator
        // live on node 0, so they share one lane.
        let mut ob = fabric.outbox(NodeId(1));
        ob.send_traverser(WorkerId(0), t(7));
        ob.send_progress(QueryId(3), Weight(11), 2);
        ob.flush_all();
        match wrx[0].recv_timeout(Duration::from_secs(2)).unwrap() {
            WorkerMsg::Batch(b) => assert_eq!(b.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
        match crx.recv_timeout(Duration::from_secs(2)).unwrap() {
            CoordMsg::Progress {
                query,
                weight,
                steps,
            } => {
                assert_eq!(query, QueryId(3));
                assert_eq!(weight, Weight(11));
                assert_eq!(steps, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
        let s = fabric.stats().snapshot();
        assert_eq!(s.progress_piggybacked, 1, "progress rode the batch frame");
        assert_eq!(
            s.wire_packets, 1,
            "one combined wire packet instead of batch + standalone progress"
        );
        fabric.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn rows_in_flight_block_piggybacking() {
        let (fabric, _wrx, crx, handles) = setup(IoMode::Adaptive);
        let mut ob = fabric.outbox(NodeId(1));
        // Rows share the lane FIFO with progress; piggybacking progress
        // onto the batch would let it overtake the rows, so it must stay
        // standalone here.
        ob.send_traverser(WorkerId(0), t(7));
        ob.send_rows(QueryId(3), vec![vec![Value::Int(1)]]);
        ob.send_progress(QueryId(3), Weight(11), 2);
        ob.flush_all();
        match crx.recv_timeout(Duration::from_secs(2)).unwrap() {
            CoordMsg::Rows { query, .. } => assert_eq!(query, QueryId(3)),
            other => panic!("unexpected {other:?}"),
        }
        match crx.recv_timeout(Duration::from_secs(2)).unwrap() {
            CoordMsg::Progress { query, .. } => assert_eq!(query, QueryId(3)),
            other => panic!("unexpected {other:?}"),
        }
        let s = fabric.stats().snapshot();
        assert_eq!(s.progress_piggybacked, 0, "rows pinned progress standalone");
        fabric.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn undecodable_batch_routes_to_error_counter() {
        let (fabric, wrx, _crx, handles) = setup(IoMode::TwoTier);
        fabric.deliver(WireMsg::Batch {
            dest: WorkerId(0),
            payload: vec![0xFF, 0x01],
        });
        let s = fabric.stats().snapshot();
        assert_eq!(s.decode_errors, 1);
        let err = fabric.take_decode_error().expect("error retained");
        assert!(err.to_string().contains("truncated"), "got: {err}");
        assert!(fabric.take_decode_error().is_none(), "error was taken");
        assert!(
            wrx[0].try_recv().is_err(),
            "no batch delivered from a corrupt frame"
        );
        fabric.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn flush_trace_labels_triggers_and_lanes() {
        let (fabric, wrx, _crx, handles) = setup(IoMode::TwoTier);
        fabric.record_flushes(true);
        let mut ob = fabric.outbox(NodeId(0));
        ob.send_traverser(WorkerId(2), t(1));
        ob.flush_all();
        ob.send_ctrl_worker(WorkerId(3), WorkerMsg::QueryEnd { query: QueryId(2) });
        for rx in [&wrx[2], &wrx[3]] {
            rx.recv_timeout(Duration::from_secs(2)).unwrap();
        }
        let trace = fabric.take_flush_trace();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].trigger, FlushTrigger::Explicit);
        assert_eq!(trace[1].trigger, FlushTrigger::Control);
        assert!(trace
            .iter()
            .all(|e| e.src == NodeId(0) && e.dest == NodeId(1)));
        assert!(fabric.take_flush_trace().is_empty(), "trace was drained");
        fabric.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn pool_frames_return_after_ingress_decode() {
        let (fabric, wrx, _crx, handles) = setup(IoMode::TwoTier);
        let mut ob = fabric.outbox(NodeId(0));
        for round in 0..4u64 {
            for i in 0..8 {
                ob.send_traverser(WorkerId(2), t(round * 8 + i));
            }
            ob.flush_all();
            let mut got = 0;
            while got < 8 {
                match wrx[2].recv_timeout(Duration::from_secs(2)).unwrap() {
                    WorkerMsg::Batch(b) => got += b.len(),
                    other => panic!("unexpected {other:?}"),
                }
            }
        }
        // The ingress thread returns each frame right after handing the
        // decoded batch over, so the lease may lag the recv by an instant.
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            let ps = fabric.pool_stats();
            if ps.outstanding == 0 {
                assert!(ps.allocated >= 1);
                assert!(
                    ps.recycled >= ps.allocated.saturating_sub(2),
                    "frames were reused, not re-allocated: {ps:?}"
                );
                break;
            }
            assert!(Instant::now() < deadline, "frames leaked: {ps:?}");
            std::thread::yield_now();
        }
        fabric.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn adaptive_aimd_moves_lane_threshold_both_ways() {
        use graphdance_common::time::sim as vclock;
        let _clock = vclock::freeze_clock();
        let (fabric, wrx, _crx, handles) = setup(IoMode::Adaptive);
        fabric.record_flushes(true);
        let policy = *fabric.adaptive();
        let mut ob = fabric.outbox(NodeId(0));
        // A deadline flush halves the lane threshold (buffer was starved).
        ob.send_traverser(WorkerId(2), t(1));
        vclock::advance(policy.idle_flush * 2);
        assert!(ob.poll_deadlines());
        let trace = fabric.take_flush_trace();
        let before = trace[0].threshold;
        // Refill and deadline-flush again: the recorded threshold shrank.
        ob.send_traverser(WorkerId(2), t(2));
        vclock::advance(policy.idle_flush * 2);
        assert!(ob.poll_deadlines());
        let trace = fabric.take_flush_trace();
        let after = trace[0].threshold;
        assert!(
            after < before,
            "AIMD halved the threshold: {before} -> {after}"
        );
        assert!(after >= policy.min_threshold);
        let mut got = 0;
        while got < 2 {
            match wrx[2].recv_timeout(Duration::from_secs(2)).unwrap() {
                WorkerMsg::Batch(b) => got += b.len(),
                other => panic!("unexpected {other:?}"),
            }
        }
        fabric.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    }
}
