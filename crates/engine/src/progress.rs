//! Distributed progress tracking (§IV-A).
//!
//! Worker side: each worker keeps one [`WeightAccumulator`] per active query
//! (inside its memo) and adds the weight of every traverser that terminates
//! locally — a single integer addition. On every buffer flush the coalesced
//! sum is sent to the coordinator as one `Progress` message (**weight
//! coalescing**). With coalescing disabled, every finished weight becomes
//! its own report — the naive scheme whose cost Fig. 10/11 quantifies.
//!
//! Coordinator side: [`QueryProgress`] sums the reports per query stage; the
//! stage's scope is complete exactly when the wrapping sum reaches
//! [`Weight::ROOT`] (false-positive probability ≤ (n−1)/2⁶⁴, Theorem 1).

use graphdance_common::FxHashMap;
use graphdance_common::QueryId;
use graphdance_pstm::weight::WeightAccumulator;
use graphdance_pstm::Weight;

/// Coordinator-side progress state for all in-flight queries.
#[derive(Debug, Default)]
pub struct ProgressTracker {
    queries: FxHashMap<QueryId, QueryProgress>,
}

/// One query's stage progress.
#[derive(Debug, Default)]
pub struct QueryProgress {
    acc: WeightAccumulator,
    reports: u64,
}

impl ProgressTracker {
    /// Fresh tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Begin tracking a new stage for `query` (resets the accumulator).
    pub fn begin_stage(&mut self, query: QueryId) {
        self.queries.insert(query, QueryProgress::default());
    }

    /// Record a report; returns `true` when the stage's scope completed.
    pub fn report(&mut self, query: QueryId, weight: Weight) -> bool {
        match self.queries.get_mut(&query) {
            Some(p) => {
                p.acc.add(weight);
                p.reports += 1;
                p.acc.is_complete()
            }
            // Reports for unknown queries (e.g. after an error aborted the
            // query) are ignored.
            None => false,
        }
    }

    /// Number of reports received for `query`'s current stage.
    pub fn reports(&self, query: QueryId) -> u64 {
        self.queries.get(&query).map_or(0, |p| p.reports)
    }

    /// Stop tracking `query`.
    pub fn finish_query(&mut self, query: QueryId) {
        self.queries.remove(&query);
    }

    /// Is this query known to the tracker?
    pub fn is_tracked(&self, query: QueryId) -> bool {
        self.queries.contains_key(&query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphdance_common::rng::seeded;

    #[test]
    fn stage_completes_at_root_sum() {
        let mut rng = seeded(5);
        let mut tr = ProgressTracker::new();
        let q = QueryId(1);
        tr.begin_stage(q);
        let parts = Weight::ROOT.split(5, &mut rng);
        for (i, p) in parts.iter().enumerate() {
            let done = tr.report(q, *p);
            assert_eq!(done, i == 4, "completion only on the last report");
        }
        assert_eq!(tr.reports(q), 5);
    }

    #[test]
    fn stages_reset_the_accumulator() {
        let mut tr = ProgressTracker::new();
        let q = QueryId(1);
        tr.begin_stage(q);
        assert!(tr.report(q, Weight::ROOT));
        tr.begin_stage(q);
        // previous stage's sum must not leak
        assert!(!tr.report(q, Weight(0)));
        assert!(tr.report(q, Weight::ROOT));
    }

    #[test]
    fn unknown_queries_ignored() {
        let mut tr = ProgressTracker::new();
        assert!(!tr.report(QueryId(9), Weight::ROOT));
        assert_eq!(tr.reports(QueryId(9)), 0);
    }

    #[test]
    fn double_begin_stage_discards_partial_sums() {
        // A retried/duplicated StageBegin must fully reset the stage: both
        // the accumulated weight and the report counter start over, so a
        // partial sum from the aborted attempt can never combine with the
        // new stage's reports into a phantom completion.
        let mut rng = seeded(7);
        let mut tr = ProgressTracker::new();
        let q = QueryId(2);
        tr.begin_stage(q);
        let parts = Weight::ROOT.split(4, &mut rng);
        assert!(!tr.report(q, parts[0]));
        assert!(!tr.report(q, parts[1]));
        assert_eq!(tr.reports(q), 2);

        tr.begin_stage(q); // reset mid-stage
        assert_eq!(tr.reports(q), 0, "report counter resets with the stage");
        let remainder = parts[2].add(parts[3]);
        assert!(
            !tr.report(q, remainder),
            "old partial sum must not survive the reset"
        );
        assert!(
            tr.report(q, parts[0].add(parts[1])),
            "fresh full sum completes"
        );
    }

    #[test]
    fn report_after_finish_does_not_resurrect_tracking() {
        let mut tr = ProgressTracker::new();
        let q = QueryId(3);
        tr.begin_stage(q);
        tr.finish_query(q);
        // Straggler coalesced reports from slow workers arrive after the
        // coordinator already finished the query.
        assert!(!tr.report(q, Weight::ROOT));
        assert!(!tr.is_tracked(q), "stragglers must not re-create state");
        assert_eq!(tr.reports(q), 0);
    }

    #[test]
    fn weight_sums_wrap_around_near_root() {
        // Weights live in Z/2^64: splits routinely produce "negative"
        // halves (e.g. ROOT splits into w and 1 - w where w > 1), so the
        // tracker's sum must wrap. Completion means the wrapping sum *lands
        // exactly on* ROOT — passing near it or through zero means nothing.
        let mut tr = ProgressTracker::new();
        let q = QueryId(4);
        tr.begin_stage(q);
        assert!(!tr.report(q, Weight(u64::MAX)), "sum = 2^64 - 1 ≠ ROOT");
        assert!(!tr.report(q, Weight(3)), "sum wraps to 2 ≠ ROOT");
        assert!(tr.report(q, Weight(u64::MAX)), "sum wraps to exactly ROOT");

        // A zero-weight report on a fresh stage leaves the sum at 0, one
        // short of ROOT — it must not complete.
        tr.begin_stage(q);
        assert!(!tr.report(q, Weight(0)));
        assert!(tr.report(q, Weight::ROOT));
    }

    #[test]
    fn finish_query_removes_state() {
        let mut tr = ProgressTracker::new();
        tr.begin_stage(QueryId(1));
        assert!(tr.is_tracked(QueryId(1)));
        tr.finish_query(QueryId(1));
        assert!(!tr.is_tracked(QueryId(1)));
        assert!(!tr.report(QueryId(1), Weight::ROOT));
    }
}
