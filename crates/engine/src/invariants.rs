//! Debug-build message-conservation ledger and liveness diagnostics (the
//! dynamic half of `cargo xtask check`, engine side).
//!
//! For every query the fabric counts traversers handed to an outbox
//! (`sent`) and traversers handed to a destination inbox (`delivered`).
//! The conservation law:
//!
//! * while a query runs, `sent − delivered` equals the traversers in
//!   flight inside the network layer;
//! * at quiesce (stage/scope completion), every sent traverser must have
//!   been delivered — `sent == delivered`.
//!
//! A message lost between outbox and inbox breaks weight conservation too,
//! but the *symptom* there is a stage that never completes: the tracker
//! waits forever for weight that sank with the message. The coordinator's
//! liveness watchdog uses this ledger to turn that silent hang into a
//! fast, diagnosable failure: a query that has made no progress for the
//! stall window *and* shows a sent/delivered imbalance is aborted with the
//! ledger dump instead of idling out its full deadline.
//!
//! The ledger is active in debug builds only ([`MsgLedger::ENABLED`]); in
//! release builds every method is a no-op and the hot-path cost vanishes.

use std::sync::atomic::{AtomicBool, Ordering};

use parking_lot::Mutex;

use graphdance_common::{FxHashMap, QueryId};

/// Per-query sent/delivered counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MsgCounts {
    /// Traversers handed to an outbox (local or remote destination).
    pub sent: u64,
    /// Traversers handed to a destination worker's inbox.
    pub delivered: u64,
}

impl MsgCounts {
    /// Traversers currently inside the network layer.
    pub fn in_flight(&self) -> u64 {
        self.sent.saturating_sub(self.delivered)
    }

    /// Traversers delivered more than once (a duplication fault): the
    /// excess of `delivered` over `sent`. Invisible to [`Self::in_flight`],
    /// which saturates at zero.
    pub fn surplus(&self) -> u64 {
        self.delivered.saturating_sub(self.sent)
    }
}

/// Fabric-wide message-conservation ledger. Shared by all outboxes and the
/// delivery paths of one [`crate::net::Fabric`].
#[derive(Debug, Default)]
pub struct MsgLedger {
    counts: Mutex<FxHashMap<QueryId, MsgCounts>>,
    /// Per-process ledger mode (multi-process clusters, see
    /// [`crate::net::Fabric::new_with_transport`]): a delivery may
    /// legitimately arrive for a query this process never sent for, so
    /// [`MsgLedger::record_delivered`] must create the entry instead of
    /// dropping the count — conservation only holds **summed across** the
    /// processes' ledgers, and an uncounted delivery would skew the sum.
    local: AtomicBool,
}

impl MsgLedger {
    /// Whether the ledger records anything (debug builds only).
    pub const ENABLED: bool = cfg!(debug_assertions);

    /// Fresh ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record traversers handed to an outbox for `query`.
    #[inline]
    pub fn record_sent(&self, query: QueryId, n: u64) {
        if !Self::ENABLED || n == 0 {
            return;
        }
        // lint: allow(hot-path-blocking) debug-build ledger: bounded O(1)
        // map update, compiled out of release via Self::ENABLED
        self.counts.lock().entry(query).or_default().sent += n;
    }

    /// Record traversers delivered to a worker inbox for `query`. In the
    /// default (global-ledger) mode only queries with a live `sent` entry
    /// are updated, so late deliveries for forgotten queries do not
    /// repopulate the map; in per-process mode ([`MsgLedger::set_local`])
    /// the entry is created, because the matching `sent` lives in another
    /// process's ledger.
    #[inline]
    pub fn record_delivered(&self, query: QueryId, n: u64) {
        if !Self::ENABLED || n == 0 {
            return;
        }
        // sync: mode flag, set once at fabric construction
        if self.local.load(Ordering::Relaxed) {
            // lint: allow(hot-path-blocking) debug-build ledger: bounded
            // O(1) map update, compiled out of release via Self::ENABLED
            self.counts.lock().entry(query).or_default().delivered += n;
            return;
        }
        // lint: allow(hot-path-blocking) debug-build ledger: bounded O(1)
        // map update, compiled out of release via Self::ENABLED
        if let Some(c) = self.counts.lock().get_mut(&query) {
            c.delivered += n;
        }
    }

    /// Switch to per-process mode: deliveries are counted even when this
    /// process never sent for the query (the send happened in a peer
    /// process). Set once, before any traffic, by
    /// [`crate::net::Fabric::new_with_transport`].
    pub fn set_local(&self, on: bool) {
        // sync: mode flag, set once at fabric construction
        self.local.store(on, Ordering::Relaxed);
    }

    /// Current counters for `query` (zeroes when untracked).
    pub fn counts(&self, query: QueryId) -> MsgCounts {
        // lint: allow(hot-path-blocking) debug-build ledger: bounded O(1)
        // map read, no blocking while held
        self.counts.lock().get(&query).copied().unwrap_or_default()
    }

    /// Does `query` show a sent/delivered mismatch right now — either
    /// undelivered traversers (drop) or excess deliveries (duplicate)?
    pub fn has_imbalance(&self, query: QueryId) -> bool {
        let c = self.counts(query);
        c.sent != c.delivered
    }

    /// Drop `query`'s counters (call when the query finishes).
    pub fn forget(&self, query: QueryId) {
        if !Self::ENABLED {
            return;
        }
        // lint: allow(hot-path-blocking) debug-build ledger: bounded O(1)
        // map remove at query teardown
        self.counts.lock().remove(&query);
    }

    /// Quiesce check: at scope completion every sent traverser must have
    /// been delivered exactly once. Returns the diagnostic dump on
    /// violation (deficit *or* surplus).
    pub fn check_quiesced(&self, query: QueryId) -> Result<(), String> {
        if !Self::ENABLED {
            return Ok(());
        }
        let c = self.counts(query);
        if c.sent == c.delivered {
            Ok(())
        } else {
            Err(self.dump(query, "message conservation violated at quiesce"))
        }
    }

    /// Diagnostic dump for `query`: headline, counters, and the direction
    /// of the imbalance. Used by the watchdog and the quiesce check.
    pub fn dump(&self, query: QueryId, headline: &str) -> String {
        let c = self.counts(query);
        if c.delivered > c.sent {
            format!(
                "{headline} for query {query:?}: sent {} traverser message(s), \
                 delivered {}, {} delivered in excess of sent — a message was \
                 duplicated in the delivery path",
                c.sent,
                c.delivered,
                c.surplus(),
            )
        } else {
            format!(
                "{headline} for query {query:?}: sent {} traverser message(s), \
                 delivered {}, {} still marked in flight — a message was dropped \
                 or a delivery path is not counting",
                c.sent,
                c.delivered,
                c.in_flight(),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_query_quiesces_clean() {
        let ledger = MsgLedger::new();
        let q = QueryId(1);
        ledger.record_sent(q, 3);
        ledger.record_delivered(q, 2);
        assert_eq!(
            ledger.counts(q),
            MsgCounts {
                sent: 3,
                delivered: 2
            }
        );
        assert!(ledger.has_imbalance(q));
        ledger.record_delivered(q, 1);
        assert!(!ledger.has_imbalance(q));
        assert_eq!(ledger.check_quiesced(q), Ok(()));
    }

    #[test]
    fn dropped_message_is_reported_with_diagnostic() {
        let ledger = MsgLedger::new();
        let q = QueryId(7);
        ledger.record_sent(q, 5);
        ledger.record_delivered(q, 4); // one message sank
        let err = ledger
            .check_quiesced(q)
            .expect_err("imbalance must be flagged");
        assert!(err.contains("q7"), "diagnostic names the query: {err}");
        assert!(err.contains("sent 5"), "got: {err}");
        assert!(err.contains("delivered 4"), "got: {err}");
        assert!(err.contains("1 still marked in flight"), "got: {err}");
    }

    #[test]
    fn duplicated_message_is_reported_with_diagnostic() {
        let ledger = MsgLedger::new();
        let q = QueryId(8);
        ledger.record_sent(q, 3);
        ledger.record_delivered(q, 4); // one message delivered twice
        assert_eq!(ledger.counts(q).surplus(), 1);
        assert_eq!(ledger.counts(q).in_flight(), 0, "in_flight saturates");
        assert!(ledger.has_imbalance(q), "surplus counts as imbalance");
        let err = ledger
            .check_quiesced(q)
            .expect_err("surplus must be flagged");
        assert!(err.contains("duplicated"), "got: {err}");
        assert!(err.contains("sent 3"), "got: {err}");
        assert!(err.contains("delivered 4"), "got: {err}");
    }

    #[test]
    fn forget_clears_and_blocks_late_deliveries() {
        let ledger = MsgLedger::new();
        let q = QueryId(2);
        ledger.record_sent(q, 1);
        ledger.forget(q);
        assert_eq!(ledger.counts(q), MsgCounts::default());
        // A straggler delivered after the query ended must not repopulate.
        ledger.record_delivered(q, 1);
        assert_eq!(ledger.counts(q), MsgCounts::default());
    }

    #[test]
    fn untracked_queries_are_balanced() {
        let ledger = MsgLedger::new();
        assert!(!ledger.has_imbalance(QueryId(99)));
        assert_eq!(ledger.check_quiesced(QueryId(99)), Ok(()));
    }
}
