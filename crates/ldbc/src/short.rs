//! The LDBC SNB Interactive Short reads (IS1–IS7): the transactional-style
//! point lookups of the mixed workload (Table I's "transactional queries").

use graphdance_common::{GdError, GdResult};
use graphdance_query::expr::Expr;
use graphdance_query::plan::{Order, Plan};
use graphdance_query::QueryBuilder;
use graphdance_storage::Schema;

/// Names of the IS queries, index 0 = IS1.
pub const IS_NAMES: [&str; 7] = ["IS1", "IS2", "IS3", "IS4", "IS5", "IS6", "IS7"];

/// Build all 7 plans (index 0 = IS1).
pub fn build_is_plans(schema: &Schema) -> GdResult<Vec<Plan>> {
    Ok(vec![
        is1(schema)?,
        is2(schema)?,
        is3(schema)?,
        is4(schema)?,
        is5(schema)?,
        is6(schema)?,
        is7(schema)?,
    ])
}

/// IS1 — person profile. Params: `$0` person.
pub fn is1(schema: &Schema) -> GdResult<Plan> {
    let mut b = QueryBuilder::new(schema);
    b.v_param(0);
    let cols = [
        "firstName",
        "lastName",
        "birthday",
        "locationIP",
        "browserUsed",
        "gender",
    ]
    .map(|k| b.prop(k));
    b.output(cols.to_vec());
    b.compile()
}

/// IS2 — the person's 10 most recent messages. Params: `$0` person.
pub fn is2(schema: &Schema) -> GdResult<Plan> {
    let mut b = QueryBuilder::new(schema);
    b.v_param(0);
    b.in_("hasCreator");
    let created = b.load("creationDate");
    b.top_k(
        10,
        vec![
            (Expr::Slot(created), Order::Desc),
            (Expr::VertexId, Order::Asc),
        ],
        vec![Expr::VertexId, Expr::Slot(created)],
    );
    b.compile()
}

/// IS3 — friends with the friendship creation date, newest first.
/// Params: `$0` person.
pub fn is3(schema: &Schema) -> GdResult<Plan> {
    let mut b = QueryBuilder::new(schema);
    b.v_param(0);
    let since = b.alloc_slot();
    b.expand(
        graphdance_storage::Direction::Both,
        "knows",
        vec![("creationDate", since)],
    );
    let first = b.load("firstName");
    b.top_k(
        1000,
        vec![
            (Expr::Slot(since), Order::Desc),
            (Expr::VertexId, Order::Asc),
        ],
        vec![Expr::VertexId, Expr::Slot(first), Expr::Slot(since)],
    );
    b.compile()
}

/// IS4 — message content summary. Params: `$0` message.
pub fn is4(schema: &Schema) -> GdResult<Plan> {
    let mut b = QueryBuilder::new(schema);
    b.v_param(0);
    let cols = [b.prop("creationDate"), b.prop("length")];
    b.output(cols.to_vec());
    b.compile()
}

/// IS5 — message creator. Params: `$0` message.
pub fn is5(schema: &Schema) -> GdResult<Plan> {
    let mut b = QueryBuilder::new(schema);
    b.v_param(0);
    b.out("hasCreator");
    let cols = [Expr::VertexId, b.prop("firstName"), b.prop("lastName")];
    b.output(cols.to_vec());
    b.compile()
}

/// IS6 — the forum containing a message (walking `replyOf` up for
/// comments) and its moderator. Params: `$0` message.
///
/// Two pipelines cover the post and comment cases; exactly one emits.
pub fn is6(schema: &Schema) -> GdResult<Plan> {
    // Post case: the message itself is a post.
    let mut direct = {
        let mut b = QueryBuilder::new(schema);
        b.v_param(0);
        b.has_label("Post");
        b.in_("containerOf");
        let title = b.load("title");
        b.out("hasModerator");
        b.output(vec![Expr::Slot(title), Expr::VertexId]);
        b.compile()?
    };
    // Comment case: walk replyOf to the root post first.
    let walked = {
        let mut b = QueryBuilder::new(schema);
        b.v_param(0);
        b.has_label("Comment");
        let c = b.alloc_slot();
        b.repeat(1, 12, c, |r| {
            r.out("replyOf");
        });
        b.has_label("Post");
        b.in_("containerOf");
        let title = b.load("title");
        b.out("hasModerator");
        b.output(vec![Expr::Slot(title), Expr::VertexId]);
        b.compile()?
    };
    let extra = walked.stages.into_iter().next().expect("one stage");
    direct.stages[0].pipelines.extend(extra.pipelines);
    direct.stages[0].num_slots = direct.stages[0].num_slots.max(extra.num_slots);
    direct.validate().map_err(GdError::InvalidProgram)?;
    Ok(direct)
}

/// IS7 — replies to a message with their authors, newest first.
/// Params: `$0` message.
pub fn is7(schema: &Schema) -> GdResult<Plan> {
    let mut b = QueryBuilder::new(schema);
    b.v_param(0);
    b.in_("replyOf");
    let comment = b.alloc_slot();
    b.compute(comment, Expr::VertexId);
    let created = b.load("creationDate");
    b.out("hasCreator");
    b.top_k(
        100,
        vec![
            (Expr::Slot(created), Order::Desc),
            (Expr::Slot(comment), Order::Asc),
        ],
        vec![Expr::Slot(comment), Expr::Slot(created), Expr::VertexId],
    );
    b.compile()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphdance_datagen::SnbDataset;

    #[test]
    fn all_is_plans_compile() {
        let mut s = Schema::new();
        SnbDataset::register_schema(&mut s);
        let plans = build_is_plans(&s).unwrap();
        assert_eq!(plans.len(), 7);
        for (i, p) in plans.iter().enumerate() {
            assert!(p.validate().is_ok(), "IS{} invalid", i + 1);
        }
    }

    #[test]
    fn is6_covers_both_message_kinds() {
        let mut s = Schema::new();
        SnbDataset::register_schema(&mut s);
        let p = is6(&s).unwrap();
        assert_eq!(p.stages[0].pipelines.len(), 2);
    }
}
