//! Latency statistics (avg / percentiles) for the benchmark reports.

use std::time::Duration;

/// Aggregated latency statistics over a set of samples.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: usize,
    /// Mean latency.
    pub avg: Duration,
    /// Median.
    pub p50: Duration,
    /// 95th percentile.
    pub p95: Duration,
    /// 99th percentile.
    pub p99: Duration,
    /// Maximum.
    pub max: Duration,
}

impl LatencyStats {
    /// Compute stats from samples (empty input gives all-zero stats).
    pub fn from_samples(mut samples: Vec<Duration>) -> LatencyStats {
        if samples.is_empty() {
            return LatencyStats::default();
        }
        samples.sort_unstable();
        let count = samples.len();
        let total: Duration = samples.iter().sum();
        let pct = |p: f64| {
            // Nearest-rank: the smallest sample with at least p of the mass.
            let idx = (count as f64 * p).ceil() as usize;
            samples[idx.saturating_sub(1).min(count - 1)]
        };
        LatencyStats {
            count,
            avg: total / count as u32,
            p50: pct(0.50),
            p95: pct(0.95),
            p99: pct(0.99),
            max: *samples.last().expect("non-empty"),
        }
    }

    /// Format as `avg/p99` milliseconds for table output.
    pub fn fmt_ms(&self) -> String {
        format!(
            "{:8.3} ms avg / {:8.3} ms p99 (n={})",
            self.avg.as_secs_f64() * 1e3,
            self.p99.as_secs_f64() * 1e3,
            self.count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zero() {
        let s = LatencyStats::from_samples(vec![]);
        assert_eq!(s.count, 0);
        assert_eq!(s.avg, Duration::ZERO);
    }

    #[test]
    fn percentiles_ordered() {
        let samples: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        let s = LatencyStats::from_samples(samples);
        assert_eq!(s.count, 100);
        assert_eq!(s.max, Duration::from_millis(100));
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
        assert_eq!(s.avg, Duration::from_micros(50_500));
        assert_eq!(s.p50, Duration::from_millis(50));
        assert_eq!(s.p99, Duration::from_millis(99));
    }

    #[test]
    fn single_sample() {
        let s = LatencyStats::from_samples(vec![Duration::from_millis(7)]);
        assert_eq!(s.avg, Duration::from_millis(7));
        assert_eq!(s.p99, Duration::from_millis(7));
        assert_eq!(s.max, Duration::from_millis(7));
    }

    #[test]
    fn formatting() {
        let s = LatencyStats::from_samples(vec![Duration::from_millis(2)]);
        let out = s.fmt_ms();
        assert!(out.contains("2.000"), "{out}");
        assert!(out.contains("n=1"));
    }
}
