//! # graphdance-ldbc
//!
//! The LDBC Social Network Benchmark workload (§V-A), implemented as PSTM
//! traversal plans over the `graphdance-datagen` SNB dataset:
//!
//! * [`ic`] — the 14 Interactive Complex read queries (IC1–IC14).
//! * [`short`] — the Interactive Short reads (IS1–IS7).
//! * [`updates`] — the update stream (UP): person/post/comment/like/knows/
//!   membership insertions through the MV2PL transaction layer.
//! * [`params`] — parameter generation matching each query's signature.
//! * [`driver`] — the mixed interactive workload with the Time Compression
//!   Ratio (TCR) pacing of §V-A1, measuring per-class avg/P99 latency and
//!   whether the system sustained the issue rate.
//! * [`stats`] — latency statistics helpers.
//!
//! Query simplifications relative to the official SNB definitions are
//! documented per query in [`ic`]; every engine under test runs the *same*
//! plans, so cross-engine comparisons remain apples-to-apples.

pub mod driver;
pub mod ic;
pub mod params;
pub mod short;
pub mod stats;
pub mod updates;

pub use driver::{run_mixed, MixedReport, TcrConfig};
pub use ic::{build_ic_plans, IC_NAMES};
pub use short::{build_is_plans, IS_NAMES};
pub use stats::LatencyStats;
pub use updates::UpdateStream;
