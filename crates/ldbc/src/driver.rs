//! The mixed LDBC SNB Interactive workload driver (§V-A1).
//!
//! Operations (IC, IS, UP) are issued on a fixed schedule whose rate is
//! controlled by the **Time Compression Ratio**: a lower TCR compresses the
//! simulated timeline, demanding higher throughput. Latency is measured
//! from an operation's *scheduled* time, so a system that cannot keep up
//! accumulates schedule lag — mirroring how TigerGraph "fails to complete
//! the test at a TCR of 0.03 because it is unable to keep up with the
//! query issuance rate".

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use graphdance_common::time::now;

use graphdance_common::rng::derive;
use graphdance_datagen::SnbDataset;
use graphdance_query::plan::Plan;
use graphdance_storage::Schema;
use graphdance_txn::TxnSystem;

use graphdance_baselines::QueryEngine;

use crate::params::{ic_params, is_params};
use crate::stats::LatencyStats;
use crate::updates::UpdateStream;

/// One operation class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpClass {
    Ic(usize),
    Is(usize),
    Up,
}

/// Mixed-workload configuration.
#[derive(Debug, Clone)]
pub struct TcrConfig {
    /// Time compression ratio; the issue rate is `base_ops_per_sec / tcr`.
    pub tcr: f64,
    /// Baseline operation rate at TCR = 1.
    pub base_ops_per_sec: f64,
    /// Wall-clock duration of the run.
    pub duration: Duration,
    /// Concurrent client threads.
    pub clients: usize,
    /// IC queries to include (indices 0..14); lets the harness exclude
    /// IC3/IC9/IC14 for the BSP baseline exactly as the paper excluded
    /// TigerGraph's timeouts.
    pub ic_subset: Vec<usize>,
    /// RNG seed.
    pub seed: u64,
}

impl TcrConfig {
    /// A short default run.
    pub fn new(tcr: f64) -> Self {
        TcrConfig {
            tcr,
            base_ops_per_sec: 60.0,
            duration: Duration::from_secs(3),
            clients: 8,
            ic_subset: (0..14).collect(),
            seed: 0x7C2,
        }
    }
}

/// Result of a mixed-workload run.
#[derive(Debug, Clone)]
pub struct MixedReport {
    /// Interactive complex query latency (scheduled → completed).
    pub ic: LatencyStats,
    /// Interactive short query latency.
    pub is: LatencyStats,
    /// Update latency.
    pub up: LatencyStats,
    /// Operations scheduled. When the run aborts for overload,
    /// `completed + failed < issued` (the tail was never attempted).
    pub issued: usize,
    /// Completed operation count.
    pub completed: usize,
    /// Failed operation count (errors or timeouts).
    pub failed: usize,
    /// Did the engine keep up with the issue rate? False when the schedule
    /// lag exceeded half the run duration (the "unable to keep up"
    /// condition).
    pub sustained: bool,
}

/// Run the mixed workload against an engine.
///
/// `txn` must be the transaction system whose LCT the engine reads (for
/// GraphDance, `engine.txn()`); updates flow through it.
pub fn run_mixed(
    engine: &dyn QueryEngine,
    txn: &TxnSystem,
    schema: &Schema,
    data: &SnbDataset,
    ic_plans: &[Plan],
    is_plans: &[Plan],
    cfg: &TcrConfig,
) -> MixedReport {
    let rate = cfg.base_ops_per_sec / cfg.tcr;
    let total_ops = (rate * cfg.duration.as_secs_f64()).ceil() as usize;
    let interval = Duration::from_secs_f64(1.0 / rate);

    // Build the schedule: the LDBC mix is mostly short reads and updates
    // with periodic complex reads.
    let mut schedule: Vec<OpClass> = Vec::with_capacity(total_ops);
    let mut rng = derive(cfg.seed, 0);
    use rand::Rng;
    for _ in 0..total_ops {
        let r: f64 = rng.gen();
        if r < 0.15 && !cfg.ic_subset.is_empty() {
            schedule.push(OpClass::Ic(
                cfg.ic_subset[rng.gen_range(0..cfg.ic_subset.len())],
            ));
        } else if r < 0.75 {
            schedule.push(OpClass::Is(rng.gen_range(0..is_plans.len())));
        } else {
            schedule.push(OpClass::Up);
        }
    }

    let stream = UpdateStream::new(data);
    let next = AtomicUsize::new(0);
    let samples: Mutex<(Vec<Duration>, Vec<Duration>, Vec<Duration>)> =
        Mutex::new((Vec::new(), Vec::new(), Vec::new()));
    let failed = AtomicUsize::new(0);
    let completed = AtomicUsize::new(0);
    let max_lag = Mutex::new(Duration::ZERO);
    let start = now();

    std::thread::scope(|scope| {
        for client in 0..cfg.clients {
            let schedule = &schedule;
            let next = &next;
            let samples = &samples;
            let failed = &failed;
            let completed = &completed;
            let max_lag = &max_lag;
            let stream = &stream;
            let mut crng = derive(cfg.seed, 1 + client as u64);
            scope.spawn(move || loop {
                // sync: work-stealing index allocator — atomicity alone
                // makes each op run once, no data rides on it
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= schedule.len() {
                    return;
                }
                let scheduled_at = start + interval.mul_f64(idx as f64);
                let now = now();
                if scheduled_at > now {
                    std::thread::sleep(scheduled_at - now);
                } else {
                    let lag = now - scheduled_at;
                    let mut ml = max_lag.lock().expect("no poisoning");
                    if lag > *ml {
                        *ml = lag;
                    }
                    if lag > cfg.duration {
                        // Overloaded beyond recovery: the system failed to
                        // keep up (the benchmark's abort condition). Stop
                        // issuing; unexecuted operations count as neither
                        // completed nor failed.
                        drop(ml);
                        // sync: abort: racing clients may run a few more
                        // ops, harmless for the abort path
                        next.store(schedule.len(), Ordering::Relaxed);
                        return;
                    }
                }
                let op = schedule[idx];
                let outcome = match op {
                    OpClass::Ic(i) => engine
                        .query_timed(&ic_plans[i], ic_params(i, data, &mut crng))
                        .map(|_| ()),
                    OpClass::Is(i) => engine
                        .query_timed(&is_plans[i], is_params(i, data, &mut crng))
                        .map(|_| ()),
                    OpClass::Up => stream.apply_random(txn, schema, &mut crng).map(|_| ()),
                };
                let latency = scheduled_at.elapsed();
                match outcome {
                    Ok(()) => {
                        // sync: result counter, read after scope join
                        completed.fetch_add(1, Ordering::Relaxed);
                        let mut s = samples.lock().expect("no poisoning");
                        match op {
                            OpClass::Ic(_) => s.0.push(latency),
                            OpClass::Is(_) => s.1.push(latency),
                            OpClass::Up => s.2.push(latency),
                        }
                    }
                    Err(_) => {
                        // sync: result counter, read after scope join
                        failed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });

    let (ic_s, is_s, up_s) = samples.into_inner().expect("threads joined");
    let lag = max_lag.into_inner().expect("threads joined");
    let overrun = start.elapsed().saturating_sub(cfg.duration);
    MixedReport {
        ic: LatencyStats::from_samples(ic_s),
        is: LatencyStats::from_samples(is_s),
        up: LatencyStats::from_samples(up_s),
        issued: schedule.len(),
        // sync: scoped-thread join above is the happens-before edge
        completed: completed.load(Ordering::Relaxed),
        // sync: scoped-thread join above is the happens-before edge
        failed: failed.load(Ordering::Relaxed),
        sustained: lag < cfg.duration.mul_f64(0.5) && overrun < cfg.duration,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphdance_common::Partitioner;
    use graphdance_datagen::SnbParams;
    use graphdance_engine::{EngineConfig, GraphDance};

    #[test]
    fn mixed_workload_runs_to_completion() {
        let data = SnbDataset::generate(SnbParams::tiny());
        let graph = data.build(Partitioner::new(2, 2)).unwrap();
        let schema = std::sync::Arc::clone(graph.schema());
        let engine = GraphDance::start(graph.clone(), EngineConfig::new(2, 2));
        let ic = crate::ic::build_ic_plans(&schema).unwrap();
        let is_ = crate::short::build_is_plans(&schema).unwrap();
        let mut cfg = TcrConfig::new(3.0);
        cfg.duration = Duration::from_millis(800);
        cfg.clients = 4;
        let report = run_mixed(&engine, engine.txn(), &schema, &data, &ic, &is_, &cfg);
        assert!(report.issued > 0);
        assert!(report.completed + report.failed <= report.issued);
        assert!(
            report.failed * 10 <= report.issued,
            "failures should be rare: {} / {}",
            report.failed,
            report.issued
        );
        assert!(report.is.count > 0, "short reads ran");
        engine.shutdown();
    }
}
