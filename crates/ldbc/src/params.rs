//! Parameter generation for the benchmark queries, matching each plan's
//! documented signature.

use rand::rngs::SmallRng;
use rand::Rng;

use graphdance_common::time::date_millis;
use graphdance_common::Value;
use graphdance_datagen::snb::{vid, Kind};
use graphdance_datagen::SnbDataset;

/// Draw parameters for IC query `idx` (0-based: 0 = IC1).
pub fn ic_params(idx: usize, data: &SnbDataset, rng: &mut SmallRng) -> Vec<Value> {
    let person = || Value::Vertex(vid(Kind::Person, 0)); // replaced below
    let _ = person;
    let p = Value::Vertex(data.person(rng.gen_range(0..data.num_persons())));
    let start = date_millis(2010, 6, 1);
    let end = date_millis(2012, 6, 1);
    match idx {
        // IC1: person, firstName
        0 => vec![
            p,
            Value::str(data.person_first_name(rng.gen_range(0..data.num_persons()))),
        ],
        // IC2: person, maxDate
        1 => vec![p, Value::Int(rng.gen_range(start..end))],
        // IC3: person, countryX, countryY, startDate, endDate
        2 => {
            let countries = data.country_names();
            let x = countries[rng.gen_range(0..countries.len())];
            let y = countries[rng.gen_range(0..countries.len())];
            let s = rng.gen_range(start..end - 90 * 86_400_000);
            vec![
                p,
                Value::str(x),
                Value::str(y),
                Value::Int(s),
                Value::Int(s + 90 * 86_400_000),
            ]
        }
        // IC4: person, startDate, endDate
        3 => {
            let s = rng.gen_range(start..end - 60 * 86_400_000);
            vec![p, Value::Int(s), Value::Int(s + 60 * 86_400_000)]
        }
        // IC5: person, minJoinDate
        4 => vec![p, Value::Int(rng.gen_range(start..end))],
        // IC6: person, tagName
        5 => vec![
            p,
            Value::str(data.tag_name(rng.gen_range(0..data.num_tags()))),
        ],
        // IC7 / IC8: person
        6 | 7 => vec![p],
        // IC9: person, maxDate
        8 => vec![p, Value::Int(rng.gen_range(start..end))],
        // IC10: person, month
        9 => vec![p, Value::Int(rng.gen_range(1..=12))],
        // IC11: person, countryName, maxWorkFrom
        10 => {
            let countries = data.country_names();
            vec![
                p,
                Value::str(countries[rng.gen_range(0..countries.len())]),
                Value::Int(rng.gen_range(2005..2013)),
            ]
        }
        // IC12: person, tagClassName
        11 => {
            let classes = data.tag_class_names();
            vec![p, Value::str(classes[rng.gen_range(0..classes.len())])]
        }
        // IC13 / IC14: two persons
        12 | 13 => {
            let q = Value::Vertex(data.person(rng.gen_range(0..data.num_persons())));
            vec![p, q]
        }
        _ => panic!("no IC{}", idx + 1),
    }
}

/// Draw parameters for IS query `idx` (0-based: 0 = IS1).
pub fn is_params(idx: usize, data: &SnbDataset, rng: &mut SmallRng) -> Vec<Value> {
    let person = Value::Vertex(data.person(rng.gen_range(0..data.num_persons())));
    let (_, posts, comments) = data.next_ids();
    let message = if rng.gen_bool(0.6) || comments == 0 {
        Value::Vertex(vid(Kind::Post, rng.gen_range(0..posts)))
    } else {
        Value::Vertex(vid(Kind::Comment, rng.gen_range(0..comments)))
    };
    match idx {
        0..=2 => vec![person],
        3..=6 => vec![message],
        _ => panic!("no IS{}", idx + 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphdance_common::rng::seeded;
    use graphdance_datagen::SnbParams;
    use graphdance_storage::Schema;

    #[test]
    fn params_match_plan_arity() {
        let data = SnbDataset::generate(SnbParams::tiny());
        let mut schema = Schema::new();
        SnbDataset::register_schema(&mut schema);
        let ic = crate::ic::build_ic_plans(&schema).unwrap();
        let is_ = crate::short::build_is_plans(&schema).unwrap();
        let mut rng = seeded(9);
        for (i, plan) in ic.iter().enumerate() {
            let ps = ic_params(i, &data, &mut rng);
            assert!(
                ps.len() >= plan.num_params,
                "IC{}: {} params generated, plan wants {}",
                i + 1,
                ps.len(),
                plan.num_params
            );
        }
        for (i, plan) in is_.iter().enumerate() {
            let ps = is_params(i, &data, &mut rng);
            assert!(ps.len() >= plan.num_params, "IS{}", i + 1);
        }
    }

    #[test]
    fn person_params_are_valid_vertices() {
        let data = SnbDataset::generate(SnbParams::tiny());
        let g = data
            .build(graphdance_common::Partitioner::single())
            .unwrap();
        let mut rng = seeded(3);
        for _ in 0..20 {
            let ps = ic_params(0, &data, &mut rng);
            let v = ps[0].as_vertex().unwrap();
            assert!(g.contains(v));
        }
    }
}
