//! The LDBC SNB update stream (UP): insertions applied through the MV2PL
//! transaction layer (§IV-C), so concurrent interactive reads keep seeing
//! consistent LCT snapshots.

use std::sync::atomic::{AtomicUsize, Ordering};

use rand::rngs::SmallRng;
use rand::Rng;

use graphdance_common::time::date_millis;
use graphdance_common::{GdResult, Value};
use graphdance_datagen::snb::{vid, Kind};
use graphdance_datagen::SnbDataset;
use graphdance_storage::Schema;
use graphdance_txn::TxnSystem;

/// Kinds of update operations in the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateKind {
    AddPerson,
    AddPost,
    AddComment,
    AddLike,
    AddKnows,
    AddMembership,
}

/// Allocates fresh entity ids and applies update transactions.
pub struct UpdateStream {
    next_person: AtomicUsize,
    next_post: AtomicUsize,
    next_comment: AtomicUsize,
    base_persons: usize,
    base_posts: usize,
    base_forums: usize,
}

impl UpdateStream {
    /// Start the stream after the bulk-loaded dataset.
    pub fn new(data: &SnbDataset) -> Self {
        let (persons, posts, comments) = data.next_ids();
        UpdateStream {
            next_person: AtomicUsize::new(persons),
            next_post: AtomicUsize::new(posts),
            next_comment: AtomicUsize::new(comments),
            base_persons: persons,
            base_posts: posts,
            base_forums: (persons / 3).max(1),
        }
    }

    /// Apply one random update; returns its kind.
    pub fn apply_random(
        &self,
        txn: &TxnSystem,
        schema: &Schema,
        rng: &mut SmallRng,
    ) -> GdResult<UpdateKind> {
        let kind = match rng.gen_range(0..100) {
            0..=9 => UpdateKind::AddPerson,
            10..=39 => UpdateKind::AddPost,
            40..=69 => UpdateKind::AddComment,
            70..=84 => UpdateKind::AddLike,
            85..=94 => UpdateKind::AddKnows,
            _ => UpdateKind::AddMembership,
        };
        self.apply(kind, txn, schema, rng)?;
        Ok(kind)
    }

    /// Apply one update of the given kind. No-wait lock conflicts surface
    /// as `TxnAborted`; callers may retry.
    pub fn apply(
        &self,
        kind: UpdateKind,
        txn: &TxnSystem,
        schema: &Schema,
        rng: &mut SmallRng,
    ) -> GdResult<()> {
        let pk = |n: &str| schema.prop(n).expect("SNB schema registered");
        let el = |n: &str| schema.edge_label(n).expect("SNB schema registered");
        let vl = |n: &str| schema.vertex_label(n).expect("SNB schema registered");
        let now = date_millis(2013, 1, 1);
        let rand_person =
            |rng: &mut SmallRng| vid(Kind::Person, rng.gen_range(0..self.base_persons));
        match kind {
            UpdateKind::AddPerson => {
                // sync: unique-id allocator, distinctness is all that matters
                let i = self.next_person.fetch_add(1, Ordering::Relaxed);
                let mut tx = txn.begin();
                tx.insert_vertex(
                    vid(Kind::Person, i),
                    vl("Person"),
                    vec![
                        (pk("firstName"), Value::str("New")),
                        (pk("lastName"), Value::str(format!("Arrival{i}"))),
                        (pk("creationDate"), Value::Int(now)),
                        (pk("birthday"), Value::Int(date_millis(1990, 1, 1))),
                    ],
                )?;
                tx.insert_edge(
                    vid(Kind::Person, i),
                    el("isLocatedIn"),
                    vid(Kind::City, 0),
                    vec![],
                )?;
                tx.commit()?;
            }
            UpdateKind::AddPost => {
                // sync: unique-id allocator, distinctness is all that matters
                let i = self.next_post.fetch_add(1, Ordering::Relaxed);
                let creator = rand_person(rng);
                let forum = vid(Kind::Forum, rng.gen_range(0..self.base_forums));
                let mut tx = txn.begin();
                tx.insert_vertex(
                    vid(Kind::Post, i),
                    vl("Post"),
                    vec![
                        (pk("creationDate"), Value::Int(now)),
                        (pk("length"), Value::Int(rng.gen_range(10..200))),
                    ],
                )?;
                tx.insert_edge(vid(Kind::Post, i), el("hasCreator"), creator, vec![])?;
                tx.insert_edge(forum, el("containerOf"), vid(Kind::Post, i), vec![])?;
                tx.commit()?;
            }
            UpdateKind::AddComment => {
                // sync: unique-id allocator, distinctness is all that matters
                let i = self.next_comment.fetch_add(1, Ordering::Relaxed);
                let creator = rand_person(rng);
                let parent = vid(Kind::Post, rng.gen_range(0..self.base_posts));
                let mut tx = txn.begin();
                tx.insert_vertex(
                    vid(Kind::Comment, i),
                    vl("Comment"),
                    vec![
                        (pk("creationDate"), Value::Int(now)),
                        (pk("length"), Value::Int(rng.gen_range(5..150))),
                    ],
                )?;
                tx.insert_edge(vid(Kind::Comment, i), el("hasCreator"), creator, vec![])?;
                tx.insert_edge(vid(Kind::Comment, i), el("replyOf"), parent, vec![])?;
                tx.commit()?;
            }
            UpdateKind::AddLike => {
                let person = rand_person(rng);
                let post = vid(Kind::Post, rng.gen_range(0..self.base_posts));
                let mut tx = txn.begin();
                tx.insert_edge(
                    person,
                    el("likes"),
                    post,
                    vec![(pk("creationDate"), Value::Int(now))],
                )?;
                tx.commit()?;
            }
            UpdateKind::AddKnows => {
                let a = rand_person(rng);
                let b = rand_person(rng);
                if a == b {
                    return Ok(());
                }
                let mut tx = txn.begin();
                tx.insert_edge(
                    a,
                    el("knows"),
                    b,
                    vec![(pk("creationDate"), Value::Int(now))],
                )?;
                tx.commit()?;
            }
            UpdateKind::AddMembership => {
                let forum = vid(Kind::Forum, rng.gen_range(0..self.base_forums));
                let person = rand_person(rng);
                let mut tx = txn.begin();
                tx.insert_edge(
                    forum,
                    el("hasMember"),
                    person,
                    vec![(pk("joinDate"), Value::Int(now))],
                )?;
                tx.commit()?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphdance_common::rng::seeded;
    use graphdance_common::Partitioner;
    use graphdance_datagen::SnbParams;

    #[test]
    fn updates_apply_and_advance_lct() {
        let data = SnbDataset::generate(SnbParams::tiny());
        let graph = data.build(Partitioner::new(1, 2)).unwrap();
        let schema = std::sync::Arc::clone(graph.schema());
        let txn = TxnSystem::new(graph.clone());
        let stream = UpdateStream::new(&data);
        let mut rng = seeded(4);
        let before_v = graph.total_vertices();
        let before_ts = txn.read_ts();
        let mut applied = 0;
        for _ in 0..50 {
            if stream.apply_random(&txn, &schema, &mut rng).is_ok() {
                applied += 1;
            }
        }
        assert!(applied > 40, "most updates apply: {applied}");
        assert!(txn.read_ts() > before_ts);
        assert!(graph.total_vertices() >= before_v);
    }

    #[test]
    fn all_kinds_apply_cleanly() {
        let data = SnbDataset::generate(SnbParams::tiny());
        let graph = data.build(Partitioner::single()).unwrap();
        let schema = std::sync::Arc::clone(graph.schema());
        let txn = TxnSystem::new(graph);
        let stream = UpdateStream::new(&data);
        let mut rng = seeded(5);
        for kind in [
            UpdateKind::AddPerson,
            UpdateKind::AddPost,
            UpdateKind::AddComment,
            UpdateKind::AddLike,
            UpdateKind::AddKnows,
            UpdateKind::AddMembership,
        ] {
            stream.apply(kind, &txn, &schema, &mut rng).unwrap();
        }
    }
}
