//! The 14 LDBC SNB Interactive Complex queries as PSTM plans.
//!
//! Each constructor documents its parameter layout. Where the official
//! query has details that do not change its systems-level shape (negative
//! existence conditions, full result-column lists), we simplify and say so
//! — every engine runs the same plan, so comparisons stay fair.

use graphdance_common::{GdError, GdResult, Value};
use graphdance_query::expr::{CmpOp, Expr};
use graphdance_query::plan::{GroupOrder, Order, Plan};
use graphdance_query::QueryBuilder;
use graphdance_storage::Schema;

/// Names of the IC queries, index 0 = IC1.
pub const IC_NAMES: [&str; 14] = [
    "IC1", "IC2", "IC3", "IC4", "IC5", "IC6", "IC7", "IC8", "IC9", "IC10", "IC11", "IC12", "IC13",
    "IC14",
];

/// Build all 14 plans (index 0 = IC1).
pub fn build_ic_plans(schema: &Schema) -> GdResult<Vec<Plan>> {
    Ok(vec![
        ic1(schema)?,
        ic2(schema)?,
        ic3(schema)?,
        ic4(schema)?,
        ic5(schema)?,
        ic6(schema)?,
        ic7(schema)?,
        ic8(schema)?,
        ic9(schema)?,
        ic10(schema)?,
        ic11(schema)?,
        ic12(schema)?,
        ic13(schema)?,
        ic14(schema)?,
    ])
}

/// Shared prelude: friends (and optionally friends-of-friends) of `$0`
/// with min-distance pruning; excludes the start person. Returns the
/// distance slot.
fn friends_prefix(b: &mut QueryBuilder<'_>, max_hops: i64) -> (u8, u8) {
    b.v_param(0);
    let c = b.alloc_slot();
    let d = b.alloc_slot();
    b.repeat(1, max_hops, c, |r| {
        r.compute(
            d,
            Expr::Add(Box::new(Expr::Slot(d)), Box::new(Expr::int(1))),
        );
        r.both("knows");
        r.min_dist(d);
    });
    b.filter(Expr::ne(Expr::VertexId, Expr::Param(0)));
    (c, d)
}

/// IC1 — transitive friends with a given first name.
///
/// Params: `$0` start person (vertex), `$1` firstName (string).
/// Returns top 20 `(person, lastName, distance)` ordered by
/// (distance asc, lastName asc, id asc).
pub fn ic1(schema: &Schema) -> GdResult<Plan> {
    let mut b = QueryBuilder::new(schema);
    let (_, d) = friends_prefix(&mut b, 3);
    b.has("firstName", CmpOp::Eq, Expr::Param(1));
    let last = b.load("lastName");
    // `distinct` by vertex: async delivery can route a longer path through
    // MinDist before the shortest arrives, emitting one row per distance.
    // Keeping only the best-sorted (= minimum-distance) row per person in
    // the aggregation makes the result exact regardless of arrival order.
    b.top_k_distinct(
        20,
        vec![
            (Expr::Slot(d), Order::Asc),
            (Expr::Slot(last), Order::Asc),
            (Expr::VertexId, Order::Asc),
        ],
        vec![Expr::VertexId, Expr::Slot(last), Expr::Slot(d)],
        vec![Expr::VertexId],
    );
    b.compile()
}

/// IC2 — recent messages by friends.
///
/// Params: `$0` person, `$1` maxDate (epoch ms).
/// Returns top 20 `(friend, message, creationDate)` newest first.
pub fn ic2(schema: &Schema) -> GdResult<Plan> {
    let mut b = QueryBuilder::new(schema);
    b.v_param(0);
    b.both("knows");
    let f = b.alloc_slot();
    b.compute(f, Expr::VertexId);
    b.in_("hasCreator");
    let created = b.load("creationDate");
    b.filter(Expr::le(Expr::Slot(created), Expr::Param(1)));
    b.top_k(
        20,
        vec![
            (Expr::Slot(created), Order::Desc),
            (Expr::VertexId, Order::Asc),
        ],
        vec![Expr::Slot(f), Expr::VertexId, Expr::Slot(created)],
    );
    b.compile()
}

/// IC3 — friends/FoF whose messages were posted from country X or Y in a
/// date window. (Simplification: official IC3 requires counts in *both*
/// countries and excludes residents; we count messages in either country,
/// which preserves the traversal + per-person aggregation shape.)
///
/// Params: `$0` person, `$1`/`$2` country names, `$3` startDate,
/// `$4` endDate. Returns top 20 `(friend, messageCount)`.
pub fn ic3(schema: &Schema) -> GdResult<Plan> {
    let mut b = QueryBuilder::new(schema);
    let (_, _) = friends_prefix(&mut b, 2);
    let f = b.alloc_slot();
    b.compute(f, Expr::VertexId);
    b.in_("hasCreator");
    let created = b.load("creationDate");
    b.filter(Expr::And(vec![
        Expr::ge(Expr::Slot(created), Expr::Param(3)),
        Expr::lt(Expr::Slot(created), Expr::Param(4)),
    ]));
    b.out("isLocatedIn");
    let country = b.prop("name");
    b.filter(Expr::Or(vec![
        Expr::eq(country.clone(), Expr::Param(1)),
        Expr::eq(country, Expr::Param(2)),
    ]));
    b.group_count(Expr::Slot(f), GroupOrder::CountDesc, 20);
    b.compile()
}

/// IC4 — new topics: tags on friends' posts in a window, by post count.
/// (Simplification: the "tag must not appear before the window" negative
/// condition is dropped.)
///
/// Params: `$0` person, `$1` startDate, `$2` endDate.
/// Returns top 10 `(tagName, postCount)`.
pub fn ic4(schema: &Schema) -> GdResult<Plan> {
    let mut b = QueryBuilder::new(schema);
    b.v_param(0);
    b.both("knows");
    b.in_("hasCreator");
    b.has_label("Post");
    let created = b.load("creationDate");
    b.filter(Expr::And(vec![
        Expr::ge(Expr::Slot(created), Expr::Param(1)),
        Expr::lt(Expr::Slot(created), Expr::Param(2)),
    ]));
    b.out("hasTag");
    let name = b.load("name");
    b.group_count(Expr::Slot(name), GroupOrder::CountDesc, 10);
    b.compile()
}

/// IC5 — new groups: forums that friends/FoF joined after a date, scored
/// by the number of posts those friends made in them.
///
/// Params: `$0` person, `$1` minJoinDate.
/// Returns top 20 `(forum, postCount)`.
pub fn ic5(schema: &Schema) -> GdResult<Plan> {
    let mut b = QueryBuilder::new(schema);
    let (_, _) = friends_prefix(&mut b, 2);
    let f = b.alloc_slot();
    b.compute(f, Expr::VertexId);
    let join_date = b.alloc_slot();
    b.expand(
        graphdance_storage::Direction::In,
        "hasMember",
        vec![("joinDate", join_date)],
    );
    b.filter(Expr::gt(Expr::Slot(join_date), Expr::Param(1)));
    let forum = b.alloc_slot();
    b.compute(forum, Expr::VertexId);
    b.out("containerOf");
    b.out("hasCreator");
    b.filter(Expr::eq(Expr::VertexId, Expr::Slot(f)));
    b.group_count(Expr::Slot(forum), GroupOrder::CountDesc, 20);
    b.compile()
}

/// IC6 — tag co-occurrence: other tags on friends'/FoF's posts that carry
/// tag `$1`.
///
/// Params: `$0` person, `$1` tagName.
/// Returns top 10 `(tagName, postCount)`.
pub fn ic6(schema: &Schema) -> GdResult<Plan> {
    let mut b = QueryBuilder::new(schema);
    let (_, _) = friends_prefix(&mut b, 2);
    b.in_("hasCreator");
    b.has_label("Post");
    let post = b.alloc_slot();
    b.compute(post, Expr::VertexId);
    b.out("hasTag");
    b.has("name", CmpOp::Eq, Expr::Param(1));
    b.move_to(post);
    b.out("hasTag");
    b.has("name", CmpOp::Ne, Expr::Param(1));
    let name = b.load("name");
    b.group_count(Expr::Slot(name), GroupOrder::CountDesc, 10);
    b.compile()
}

/// IC7 — recent likers of the person's messages.
///
/// Params: `$0` person. Returns top 20 `(liker, likeDate, message)` newest
/// like first. (Simplification: the `isNew` flag and latency column are
/// omitted.)
pub fn ic7(schema: &Schema) -> GdResult<Plan> {
    let mut b = QueryBuilder::new(schema);
    b.v_param(0);
    b.in_("hasCreator");
    let msg = b.alloc_slot();
    b.compute(msg, Expr::VertexId);
    let like_date = b.alloc_slot();
    b.expand(
        graphdance_storage::Direction::In,
        "likes",
        vec![("creationDate", like_date)],
    );
    b.top_k(
        20,
        vec![
            (Expr::Slot(like_date), Order::Desc),
            (Expr::VertexId, Order::Asc),
        ],
        vec![Expr::VertexId, Expr::Slot(like_date), Expr::Slot(msg)],
    );
    b.compile()
}

/// IC8 — recent replies to the person's messages.
///
/// Params: `$0` person. Returns top 20 `(author, comment, creationDate)`.
pub fn ic8(schema: &Schema) -> GdResult<Plan> {
    let mut b = QueryBuilder::new(schema);
    b.v_param(0);
    b.in_("hasCreator");
    b.in_("replyOf");
    let comment = b.alloc_slot();
    b.compute(comment, Expr::VertexId);
    let created = b.load("creationDate");
    b.out("hasCreator");
    b.top_k(
        20,
        vec![
            (Expr::Slot(created), Order::Desc),
            (Expr::Slot(comment), Order::Asc),
        ],
        vec![Expr::VertexId, Expr::Slot(comment), Expr::Slot(created)],
    );
    b.compile()
}

/// IC9 — recent messages by friends or friends-of-friends before a date.
///
/// Params: `$0` person, `$1` maxDate. Returns top 20
/// `(friend, message, creationDate)`.
pub fn ic9(schema: &Schema) -> GdResult<Plan> {
    let mut b = QueryBuilder::new(schema);
    let (_, _) = friends_prefix(&mut b, 2);
    let f = b.alloc_slot();
    b.compute(f, Expr::VertexId);
    b.in_("hasCreator");
    let created = b.load("creationDate");
    b.filter(Expr::lt(Expr::Slot(created), Expr::Param(1)));
    b.top_k(
        20,
        vec![
            (Expr::Slot(created), Order::Desc),
            (Expr::VertexId, Order::Asc),
        ],
        vec![Expr::Slot(f), Expr::VertexId, Expr::Slot(created)],
    );
    b.compile()
}

/// IC10 — friend recommendation: friends-of-friends with a birthday in the
/// given month, scored by posting activity. (Simplification: the official
/// common-interest score — posts with/without overlapping interest tags —
/// is replaced by the candidate's post count, preserving the
/// FoF-filter-aggregate shape.)
///
/// Params: `$0` person, `$1` month (1..=12).
/// Returns top 10 `(candidate, postCount)`.
pub fn ic10(schema: &Schema) -> GdResult<Plan> {
    let mut b = QueryBuilder::new(schema);
    let (_, d) = friends_prefix(&mut b, 2);
    b.filter(Expr::eq(Expr::Slot(d), Expr::int(2))); // FoF only
    let bday = b.load("birthday");
    b.filter(Expr::eq(
        Expr::Month(Box::new(Expr::Slot(bday))),
        Expr::Param(1),
    ));
    let cand = b.alloc_slot();
    b.compute(cand, Expr::VertexId);
    b.in_("hasCreator");
    b.has_label("Post");
    b.group_count(Expr::Slot(cand), GroupOrder::CountDesc, 10);
    b.compile()
}

/// IC11 — job referral: friends/FoF who work at a company in country `$1`
/// since before `$2`.
///
/// Params: `$0` person, `$1` countryName, `$2` maxWorkFrom (year).
/// Returns top 10 `(friend, companyName, workFrom)` earliest first.
pub fn ic11(schema: &Schema) -> GdResult<Plan> {
    let mut b = QueryBuilder::new(schema);
    let (_, _) = friends_prefix(&mut b, 2);
    let f = b.alloc_slot();
    b.compute(f, Expr::VertexId);
    let work_from = b.alloc_slot();
    b.expand(
        graphdance_storage::Direction::Out,
        "workAt",
        vec![("workFrom", work_from)],
    );
    b.filter(Expr::lt(Expr::Slot(work_from), Expr::Param(2)));
    let company = b.load("name");
    b.out("isLocatedIn");
    b.has("name", CmpOp::Eq, Expr::Param(1));
    b.top_k(
        10,
        vec![
            (Expr::Slot(work_from), Order::Asc),
            (Expr::Slot(f), Order::Asc),
            (Expr::Slot(company), Order::Desc),
        ],
        vec![Expr::Slot(f), Expr::Slot(company), Expr::Slot(work_from)],
    );
    b.compile()
}

/// IC12 — expert search: friends whose comments reply to posts tagged with
/// a tag whose class equals `$1` or descends from it.
///
/// Params: `$0` person, `$1` tagClassName.
/// Returns top 20 `(friend, replyCount)`.
///
/// The "class or any ancestor" disjunction is expressed with two pipelines
/// aggregating into the same per-partition GroupCount memo: one tests the
/// tag's direct class, the other walks `isSubclassOf` 1..4 levels up.
pub fn ic12(schema: &Schema) -> GdResult<Plan> {
    let build_branch = |walk_up: bool| -> GdResult<Plan> {
        let mut b = QueryBuilder::new(schema);
        b.v_param(0);
        b.both("knows");
        let f = b.alloc_slot();
        b.compute(f, Expr::VertexId);
        b.in_("hasCreator");
        b.has_label("Comment");
        b.out("replyOf");
        b.has_label("Post");
        b.out("hasTag");
        b.out("hasType");
        if walk_up {
            let c = b.alloc_slot();
            b.repeat(1, 4, c, |r| {
                r.out("isSubclassOf");
            });
        }
        b.has("name", CmpOp::Eq, Expr::Param(1));
        b.group_count(Expr::Slot(f), GroupOrder::CountDesc, 20);
        b.compile()
    };
    let direct = build_branch(false)?;
    let walked = build_branch(true)?;
    let mut plan = direct;
    let extra = walked.stages.into_iter().next().expect("one stage");
    plan.stages[0].pipelines.extend(extra.pipelines);
    plan.stages[0].num_slots = plan.stages[0].num_slots.max(extra.num_slots);
    plan.validate().map_err(GdError::InvalidProgram)?;
    Ok(plan)
}

/// IC13 — length of the shortest `knows` path between two persons (≤ 6
/// hops; unreachable pairs — and `person1 == person2` — return no rows,
/// which the caller reports as −1 / 0 respectively).
///
/// Params: `$0` person1, `$1` person2. Returns `[[distance]]`.
pub fn ic13(schema: &Schema) -> GdResult<Plan> {
    let mut b = QueryBuilder::new(schema);
    b.v_param(0);
    b.filter(Expr::ne(Expr::Param(0), Expr::Param(1)));
    let c = b.alloc_slot();
    let d = b.alloc_slot();
    b.repeat(1, 6, c, |r| {
        r.compute(
            d,
            Expr::Add(Box::new(Expr::Slot(d)), Box::new(Expr::int(1))),
        );
        r.both("knows");
        r.min_dist(d);
    });
    b.filter(Expr::eq(Expr::VertexId, Expr::Param(1)));
    b.top_k(1, vec![(Expr::Slot(d), Order::Asc)], vec![Expr::Slot(d)]);
    b.compile()
}

/// IC14 — (simplified) trusted-connection paths: the distances (≤ 4 hops)
/// at which person2 is reachable from person1, with the number of
/// `(vertex, distance)`-distinct arrivals per distance as the path weight.
/// (The official query enumerates all shortest paths and scores them by
/// reply interactions; the bounded distance histogram preserves the
/// multi-source traversal + aggregate shape.)
///
/// Params: `$0` person1, `$1` person2. Returns `(distance, weight)` rows.
pub fn ic14(schema: &Schema) -> GdResult<Plan> {
    let mut b = QueryBuilder::new(schema);
    b.v_param(0);
    let c = b.alloc_slot();
    let d = b.alloc_slot();
    b.repeat(1, 4, c, |r| {
        r.compute(
            d,
            Expr::Add(Box::new(Expr::Slot(d)), Box::new(Expr::int(1))),
        );
        r.both("knows");
        r.dedup_by(vec![d]);
    });
    b.filter(Expr::eq(Expr::VertexId, Expr::Param(1)));
    b.group_count(Expr::Slot(d), GroupOrder::KeyAsc, 5);
    b.compile()
}

/// Convenience: returns `(name, plan)` pairs.
pub fn named_ic_plans(schema: &Schema) -> GdResult<Vec<(&'static str, Plan)>> {
    Ok(IC_NAMES
        .iter()
        .copied()
        .zip(build_ic_plans(schema)?)
        .collect())
}

/// Re-export used by `params`.
pub fn param_value_person(v: graphdance_common::VertexId) -> Value {
    Value::Vertex(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphdance_datagen::SnbDataset;

    fn schema() -> Schema {
        let mut s = Schema::new();
        SnbDataset::register_schema(&mut s);
        s
    }

    #[test]
    fn all_ic_plans_compile_and_validate() {
        let s = schema();
        let plans = build_ic_plans(&s).unwrap();
        assert_eq!(plans.len(), 14);
        for (i, p) in plans.iter().enumerate() {
            assert!(p.validate().is_ok(), "IC{} invalid", i + 1);
            assert!(p.num_params >= 1, "IC{} should take params", i + 1);
        }
    }

    #[test]
    fn ic12_has_two_branch_pipelines() {
        let s = schema();
        let p = ic12(&s).unwrap();
        assert_eq!(p.stages[0].pipelines.len(), 2);
    }

    #[test]
    fn ic1_param_count() {
        let s = schema();
        assert_eq!(ic1(&s).unwrap().num_params, 2);
        assert_eq!(ic13(&s).unwrap().num_params, 2);
        assert_eq!(ic3(&s).unwrap().num_params, 5);
    }
}
