//! Item-level index over the workspace: every `fn`, with its impl type,
//! crate, and body span.
//!
//! This is the foundation the deep passes share. It is an *approximate*
//! parser (see DESIGN.md §11 for the soundness discussion): it recognizes
//! `fn` items and `impl` blocks from the token stream, but performs no
//! name resolution, type inference, or macro expansion. Functions are
//! identified by `(self_type, name)`; two impls of the same method name on
//! different types stay distinct, but two traits implementing the same
//! method for the same type do not.

use std::collections::HashMap;

use crate::lex::{lex, Tok, Token};
use crate::scan::SourceFile;

/// One indexed function item.
#[derive(Debug)]
pub struct FnItem {
    /// Bare function name.
    pub name: String,
    /// The `impl` self type this fn is a method of, if any. For
    /// `impl Trait for Type` blocks this is `Type`.
    pub self_ty: Option<String>,
    /// Index of the containing file in the workspace file list.
    pub file: usize,
    /// Crate the file belongs to (`engine`, `txn`, `vendor/rand`, …).
    pub crate_name: String,
    /// 1-based line of the `fn` keyword.
    pub sig_line: usize,
    /// Token range of the body in the file's token stream (exclusive of
    /// the braces), or `None` for bodyless trait-method declarations.
    pub body: Option<(usize, usize)>,
    /// First and last 1-based line of the body (inclusive).
    pub body_lines: (usize, usize),
    /// True when the fn lives in test code (`#[cfg(test)]` region or a
    /// tests/benches file).
    pub in_test: bool,
}

impl FnItem {
    /// `Type::name` for methods, bare `name` otherwise.
    pub fn qual(&self) -> String {
        match &self.self_ty {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// The workspace item index: per-file token streams plus every fn item.
pub struct ItemIndex {
    /// Token stream per file, same order as the input file slice.
    pub toks: Vec<Vec<Token>>,
    /// Every indexed fn.
    pub fns: Vec<FnItem>,
    /// Bare name → fn ids, for approximate call resolution.
    pub by_name: HashMap<String, Vec<usize>>,
}

/// Crate name from a workspace-relative path: `crates/engine/src/x.rs` →
/// `engine`, `vendor/rand/src/lib.rs` → `vendor/rand`, anything else →
/// its first path segment.
pub fn crate_of(rel: &str) -> String {
    let mut parts = rel.split('/');
    match parts.next() {
        Some("crates") | Some("vendor") => {
            let top = rel.split('/').next().unwrap_or("");
            let name = parts.next().unwrap_or("");
            if top == "vendor" {
                format!("vendor/{name}")
            } else {
                name.to_string()
            }
        }
        Some(first) => first.to_string(),
        None => String::new(),
    }
}

/// Build the index over a preprocessed workspace.
pub fn build(files: &[SourceFile]) -> ItemIndex {
    let mut toks = Vec::with_capacity(files.len());
    let mut fns = Vec::new();
    for (fid, file) in files.iter().enumerate() {
        let ts = lex(file);
        index_file(fid, file, &ts, &mut fns);
        toks.push(ts);
    }
    let mut by_name: HashMap<String, Vec<usize>> = HashMap::new();
    for (i, f) in fns.iter().enumerate() {
        by_name.entry(f.name.clone()).or_default().push(i);
    }
    ItemIndex { toks, fns, by_name }
}

/// Scan one file's tokens for `impl` blocks and `fn` items.
fn index_file(fid: usize, file: &SourceFile, ts: &[Token], out: &mut Vec<FnItem>) {
    let crate_name = crate_of(&file.rel);
    // Stack of (brace depth at which the impl body opened, self type).
    let mut impls: Vec<(u32, String)> = Vec::new();
    let mut depth: u32 = 0;
    let mut i = 0;
    while i < ts.len() {
        match &ts[i].tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth = depth.saturating_sub(1);
                if impls.last().is_some_and(|(d, _)| *d == depth) {
                    impls.pop();
                }
            }
            Tok::Ident(kw) if kw == "impl" => {
                if let Some((ty, open)) = parse_impl_header(ts, i + 1) {
                    impls.push((depth, ty));
                    depth += 1;
                    i = open + 1;
                    continue;
                }
            }
            Tok::Ident(kw) if kw == "fn" => {
                // `fn` followed by an ident is an item; `fn(` is a fn-pointer
                // type and is skipped.
                if let Some(name) = ts.get(i + 1).and_then(|t| t.ident()) {
                    let sig_line = ts[i].line;
                    // Find the body `{` or a terminating `;` (trait decl).
                    let mut j = i + 2;
                    let mut body = None;
                    while j < ts.len() {
                        match ts[j].tok {
                            Tok::Punct('{') => {
                                let end = matching_brace(ts, j);
                                body = Some((j + 1, end));
                                break;
                            }
                            Tok::Punct(';') => break,
                            _ => j += 1,
                        }
                    }
                    let (bstart, bend) = body.unwrap_or((j, j));
                    let body_lines = (
                        ts.get(bstart).map_or(sig_line, |t| t.line),
                        if bend > bstart {
                            ts[bend - 1].line
                        } else {
                            sig_line
                        },
                    );
                    let in_test = file.lines.get(sig_line - 1).is_some_and(|l| l.in_test);
                    out.push(FnItem {
                        name: name.to_string(),
                        self_ty: impls.last().map(|(_, t)| t.clone()),
                        file: fid,
                        crate_name: crate_name.clone(),
                        sig_line,
                        body,
                        body_lines,
                        in_test,
                    });
                    // Keep scanning *inside* the body too: nested fns and the
                    // impl/depth bookkeeping both need every brace counted.
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// Parse an `impl` header starting right after the `impl` keyword. Returns
/// the self type and the token index of the body's `{`, or `None` when the
/// shape is not an impl block (e.g. `impl Trait` in a return type).
fn parse_impl_header(ts: &[Token], mut i: usize) -> Option<(String, usize)> {
    let mut angle: u32 = 0;
    let mut after_for = false;
    let mut last_ident: Option<String> = None;
    let mut last_ident_after_for: Option<String> = None;
    while i < ts.len() {
        match &ts[i].tok {
            Tok::Punct('<') => angle += 1,
            Tok::Punct('>') => angle = angle.saturating_sub(1),
            Tok::Punct('{') if angle == 0 => {
                let ty = if after_for {
                    last_ident_after_for
                } else {
                    last_ident
                };
                return ty.map(|t| (t, i));
            }
            // `impl Trait` in type position never reaches a `{` before one
            // of these terminators.
            Tok::Punct(';') | Tok::Punct(')') | Tok::Punct(',') if angle == 0 => return None,
            Tok::Ident(s) if angle == 0 => {
                if s == "for" {
                    after_for = true;
                } else if s == "where" {
                    // Ignore where-clause idents; the self type is fixed by
                    // this point.
                    let ty = if after_for {
                        last_ident_after_for.clone()
                    } else {
                        last_ident.clone()
                    };
                    // Scan forward to the body `{`.
                    let mut j = i;
                    let mut a: u32 = 0;
                    while j < ts.len() {
                        match ts[j].tok {
                            Tok::Punct('<') => a += 1,
                            Tok::Punct('>') => a = a.saturating_sub(1),
                            Tok::Punct('{') if a == 0 => return ty.map(|t| (t, j)),
                            Tok::Punct(';') if a == 0 => return None,
                            _ => {}
                        }
                        j += 1;
                    }
                    return None;
                } else if s != "dyn" {
                    if after_for {
                        last_ident_after_for = Some(s.clone());
                    } else {
                        last_ident = Some(s.clone());
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Token index of the `}` matching the `{` at `open` (or the stream end).
fn matching_brace(ts: &[Token], open: usize) -> usize {
    let mut depth = 0u32;
    for (k, t) in ts.iter().enumerate().skip(open) {
        match t.tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            _ => {}
        }
    }
    ts.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::parse_source;

    fn index_of(src: &str) -> ItemIndex {
        build(&[parse_source("crates/engine/src/x.rs", src)])
    }

    #[test]
    fn free_fns_and_methods_are_indexed() {
        let idx = index_of(
            "fn free() { helper(); }\n\
             impl Worker {\n    pub fn pump(&mut self) -> u32 { 0 }\n}\n\
             impl Rule for HotPath {\n    fn name(&self) -> &str { \"x\" }\n}\n",
        );
        let quals: Vec<String> = idx.fns.iter().map(|f| f.qual()).collect();
        assert_eq!(quals, vec!["free", "Worker::pump", "HotPath::name"]);
        assert_eq!(idx.fns[0].crate_name, "engine");
    }

    #[test]
    fn generic_impls_and_where_clauses_resolve_self_type() {
        let idx = index_of(
            "impl<T: Clone> Holder<T> where T: Send {\n    fn get(&self) -> &T { &self.0 }\n}\n\
             impl<'a> std::fmt::Display for Violation {\n    fn fmt(&self) -> u32 { 1 }\n}\n",
        );
        assert_eq!(idx.fns[0].qual(), "Holder::get");
        assert_eq!(idx.fns[1].qual(), "Violation::fmt");
    }

    #[test]
    fn body_spans_cover_the_right_lines() {
        let idx = index_of("fn a() {\n    one();\n    two();\n}\nfn b();\n");
        assert_eq!(idx.fns[0].body_lines, (2, 3));
        assert!(idx.fns[1].body.is_none(), "bodyless decl has no span");
    }

    #[test]
    fn cfg_test_fns_are_flagged() {
        let idx = index_of("fn hot() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n");
        assert!(!idx.fns[0].in_test);
        assert!(idx.fns[1].in_test);
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let idx = index_of("fn takes(f: fn(u32) -> u32) -> u32 { f(1) }\n");
        assert_eq!(idx.fns.len(), 1);
        assert_eq!(idx.fns[0].name, "takes");
    }

    #[test]
    fn impl_trait_in_return_position_is_not_an_impl_block() {
        let idx = index_of(
            "fn mk() -> impl Iterator<Item = u32> {\n    std::iter::empty()\n}\nfn after() {}\n",
        );
        assert_eq!(idx.fns.len(), 2);
        assert!(idx.fns[1].self_ty.is_none(), "no phantom impl context");
    }

    #[test]
    fn crate_of_maps_paths() {
        assert_eq!(crate_of("crates/engine/src/net.rs"), "engine");
        assert_eq!(crate_of("vendor/rand/src/lib.rs"), "vendor/rand");
        assert_eq!(crate_of("src/lib.rs"), "src");
    }
}
