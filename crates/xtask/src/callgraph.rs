//! Approximate intra-workspace call graph over the item index.
//!
//! Call sites are recognized syntactically — `ident(`, `path::ident(`,
//! `.ident(` — and resolved *by name* against the index: a method call
//! resolves to every indexed method with that name, a `Type::fn` call
//! prefers methods whose impl type matches the qualifier. This
//! over-approximates (edges to same-named fns on unrelated types) and
//! under-approximates (trait-object dispatch through closures, macros that
//! expand to calls). DESIGN.md §11 spells out what that means for each
//! pass built on top.

use std::collections::HashMap;

use crate::index::ItemIndex;
use crate::lex::Token;

/// One syntactic call site inside a fn body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// 1-based source line.
    pub line: usize,
    /// Callee name (last path segment / method name).
    pub callee: String,
    /// `Type` in `Type::callee(..)` calls, if present.
    pub qualifier: Option<String>,
    /// True for `.callee(..)` method-call syntax.
    pub method: bool,
    /// True when the call has zero arguments (`callee()`).
    pub arity0: bool,
}

/// Method names the deep passes interpret as synchronization/blocking
/// *primitives* when called with zero args — they never become call-graph
/// edges, even when a workspace type happens to define a method with the
/// same name (e.g. an arity-0 `.lock()` is always treated as a mutex
/// acquisition, not a call to `LockTable::lock`, which takes three args).
pub const PRIMITIVE_METHODS: &[&str] = &["lock", "read", "write", "recv", "join", "wait"];

/// Maximum same-named candidates a call site may resolve to before the
/// name is considered carrying no signal (see the ambiguity cap below).
pub const MAX_CANDIDATES: usize = 3;

/// Method names that collide with std collection/iterator/trait APIs.
/// `.get(…)` on an unknown receiver is a `HashMap`/`Vec` access in almost
/// every real call site; resolving it to a same-named workspace method
/// cross-connects unrelated subsystems with phantom edges. Method-call
/// syntax never resolves through these names — **qualified** calls
/// (`BytesPool::get(…)`) still do, so a genuinely lock-holding impl can
/// always be made visible to the analysis by naming it.
pub const STD_COLLISIONS: &[&str] = &[
    "get",
    "get_mut",
    "insert",
    "remove",
    "push",
    "pop",
    "len",
    "is_empty",
    "contains",
    "contains_key",
    "clear",
    "entry",
    "iter",
    "iter_mut",
    "drain",
    "take",
    "next",
    "clone",
    "extend",
    "retain",
    "keys",
    "values",
    "new",
    "default",
    "fmt",
    "eq",
    "cmp",
    "hash",
    "drop",
    "from",
    "into",
    "as_ref",
    "as_mut",
];

/// The resolved call graph: edges between fn ids in the [`ItemIndex`].
pub struct CallGraph {
    /// Per-fn outgoing edges as `(callee fn id, call-site line)`.
    pub edges: Vec<Vec<(usize, usize)>>,
}

/// Extract the syntactic call sites from one fn body token range.
pub fn extract_sites(ts: &[Token], body: (usize, usize)) -> Vec<CallSite> {
    let (start, end) = body;
    let mut out = Vec::new();
    for i in start..end.min(ts.len()) {
        let Some(name) = ts[i].ident() else { continue };
        if !ts.get(i + 1).is_some_and(|t| t.is('(')) {
            continue;
        }
        if KEYWORDS.contains(&name) {
            continue;
        }
        // `fn name(` is a nested definition, not a call.
        if i > 0 && ts[i - 1].ident() == Some("fn") {
            continue;
        }
        let method = i > 0 && ts[i - 1].is('.');
        let qualifier = if !method && i >= 3 && ts[i - 1].is(':') && ts[i - 2].is(':') {
            ts[i - 3].ident().map(str::to_string)
        } else {
            None
        };
        let arity0 = ts.get(i + 2).is_some_and(|t| t.is(')'));
        out.push(CallSite {
            line: ts[i].line,
            callee: name.to_string(),
            qualifier,
            method,
            arity0,
        });
    }
    out
}

const KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "let", "in", "move", "ref", "mut", "as",
    "break", "continue", "else", "unsafe", "where", "impl", "dyn", "fn", "pub", "use", "mod",
];

/// Build the call graph over an index.
pub fn build(index: &ItemIndex) -> CallGraph {
    // Pre-split candidates: method-shaped (has a self type) vs any.
    let mut methods_by_name: HashMap<&str, Vec<usize>> = HashMap::new();
    for (i, f) in index.fns.iter().enumerate() {
        if f.self_ty.is_some() {
            methods_by_name.entry(f.name.as_str()).or_default().push(i);
        }
    }

    let mut edges = Vec::with_capacity(index.fns.len());
    for f in &index.fns {
        // Vendored shims wrap std primitives (channels, locks); modeling
        // their internals only manufactures phantom paths back into the
        // workspace (their *callers* in crates/ are still analyzed, and
        // the unsafe audit still scans their lines).
        let s = match f.body {
            Some(body) if !f.crate_name.starts_with("vendor/") => {
                extract_sites(&index.toks[f.file], body)
            }
            _ => Vec::new(),
        };
        let mut out: Vec<(usize, usize)> = Vec::new();
        for site in &s {
            if site.method && site.arity0 && PRIMITIVE_METHODS.contains(&site.callee.as_str()) {
                continue; // sync/blocking primitive, handled by the passes
            }
            if site.method && STD_COLLISIONS.contains(&site.callee.as_str()) {
                continue; // std-API name collision, no resolution signal
            }
            let candidates: &[usize] = if site.method {
                methods_by_name
                    .get(site.callee.as_str())
                    .map_or(&[], Vec::as_slice)
            } else {
                index.by_name.get(&site.callee).map_or(&[], Vec::as_slice)
            };
            // `Type::fn` restricts to impls of `Type` when any exist.
            let mut restricted: Vec<usize> = match &site.qualifier {
                Some(q) => {
                    let exact: Vec<usize> = candidates
                        .iter()
                        .copied()
                        .filter(|&c| index.fns[c].self_ty.as_deref() == Some(q))
                        .collect();
                    if exact.is_empty() {
                        candidates.to_vec()
                    } else {
                        exact
                    }
                }
                None => candidates.to_vec(),
            };
            // Ambiguity cap: a name shared by many items (`len`, `get`,
            // `take`, …) carries no resolution signal — linking to every
            // impl floods the graph with phantom paths that cross-connect
            // unrelated subsystems. Distinctive names (≤ MAX_CANDIDATES
            // impls) still resolve to all of them.
            if restricted.len() > MAX_CANDIDATES {
                restricted.clear();
            }
            for c in restricted {
                // Production code never resolves into test helpers.
                if index.fns[c].in_test && !f.in_test {
                    continue;
                }
                if !out.iter().any(|(e, _)| *e == c) {
                    out.push((c, site.line));
                }
            }
        }
        edges.push(out);
    }
    CallGraph { edges }
}

impl CallGraph {
    /// BFS from `roots`; returns `parent[fn] = Some((caller, line))` for
    /// every reachable fn (roots map to `None` but are present as keys).
    pub fn reach(&self, roots: &[usize]) -> HashMap<usize, Option<(usize, usize)>> {
        let mut parent: HashMap<usize, Option<(usize, usize)>> = HashMap::new();
        let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        for &r in roots {
            parent.entry(r).or_insert(None);
            queue.push_back(r);
        }
        while let Some(f) = queue.pop_front() {
            for &(callee, line) in &self.edges[f] {
                if let std::collections::hash_map::Entry::Vacant(e) = parent.entry(callee) {
                    e.insert(Some((f, line)));
                    queue.push_back(callee);
                }
            }
        }
        parent
    }

    /// Human-readable call chain `root → … → target` from a `reach` map.
    pub fn chain(
        &self,
        index: &ItemIndex,
        parent: &HashMap<usize, Option<(usize, usize)>>,
        target: usize,
    ) -> String {
        let mut names = vec![index.fns[target].qual()];
        let mut cur = target;
        while let Some(Some((p, _))) = parent.get(&cur) {
            names.push(index.fns[*p].qual());
            cur = *p;
            if names.len() > 32 {
                break;
            }
        }
        names.reverse();
        names.join(" → ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index;
    use crate::scan::parse_source;

    fn graph_of(src: &str) -> (ItemIndex, CallGraph) {
        let idx = index::build(&[parse_source("crates/engine/src/x.rs", src)]);
        let g = build(&idx);
        (idx, g)
    }

    fn fn_id(idx: &ItemIndex, qual: &str) -> usize {
        idx.fns.iter().position(|f| f.qual() == qual).unwrap()
    }

    #[test]
    fn free_and_method_calls_resolve() {
        let (idx, g) = graph_of(
            "fn top() { helper(); w.go(); }\n\
             fn helper() {}\n\
             impl Worker {\n    fn go(&self) {}\n}\n",
        );
        let top = fn_id(&idx, "top");
        let callees: Vec<String> = g.edges[top]
            .iter()
            .map(|&(c, _)| idx.fns[c].qual())
            .collect();
        assert_eq!(callees, vec!["helper", "Worker::go"]);
    }

    #[test]
    fn qualified_calls_prefer_the_matching_impl() {
        let (idx, g) = graph_of(
            "fn top() { Worker::go(w); }\n\
             impl Worker {\n    fn go(&self) {}\n}\n\
             impl Other {\n    fn go(&self) {}\n}\n",
        );
        let top = fn_id(&idx, "top");
        assert_eq!(g.edges[top].len(), 1);
        assert_eq!(idx.fns[g.edges[top][0].0].qual(), "Worker::go");
    }

    #[test]
    fn arity0_primitive_methods_are_not_edges() {
        let (idx, g) = graph_of(
            "fn top(&self) { self.m.lock(); self.table.lock(txn, v); }\n\
             impl LockTable {\n    fn lock(&self, t: u64, v: u64) {}\n}\n",
        );
        let top = fn_id(&idx, "top");
        // `.lock()` (arity 0) is a primitive; `.lock(txn, v)` resolves.
        assert_eq!(g.edges[top].len(), 1);
        assert_eq!(idx.fns[g.edges[top][0].0].qual(), "LockTable::lock");
    }

    #[test]
    fn reach_and_chain_report_paths() {
        let (idx, g) = graph_of("fn a() { b(); }\nfn b() { c(); }\nfn c() {}\nfn lonely() {}\n");
        let a = fn_id(&idx, "a");
        let c = fn_id(&idx, "c");
        let lonely = fn_id(&idx, "lonely");
        let r = g.reach(&[a]);
        assert!(r.contains_key(&c));
        assert!(!r.contains_key(&lonely));
        assert_eq!(g.chain(&idx, &r, c), "a → b → c");
    }

    #[test]
    fn test_helpers_are_not_resolved_from_production_code() {
        let (idx, g) = graph_of(
            "fn top() { setup(); }\n\
             #[cfg(test)]\nmod tests {\n    fn setup() {}\n}\n",
        );
        let top = fn_id(&idx, "top");
        assert!(g.edges[top].is_empty());
    }
}
