//! Source model for the lint pass.
//!
//! Rules never look at raw file text. Each file is preprocessed once into a
//! [`SourceFile`] whose per-line `code` has comments and string-literal
//! contents stripped, so token scans (`.unwrap()`, `std::collections::…`)
//! cannot false-positive on prose, doc examples, or error messages. The
//! preprocessor also extracts two pieces of line metadata the rules share:
//!
//! * **allow annotations** — `// lint: allow(<rule>)` suppresses `<rule>` on
//!   its own line, or on the next code line when the comment stands alone;
//! * **test regions** — lines inside a `#[cfg(test)]` item (and every line
//!   of `tests/` / `benches/` files) are flagged `in_test`; line rules skip
//!   them, since `unwrap()` in a test is idiomatic.
//!
//! This is a token-level scanner, not a parser: it tracks comment nesting,
//! string/char literals, and brace depth, which is exactly enough for the
//! four rules and keeps the crate dependency-free.

/// One finding. `file` is workspace-relative so diagnostics are clickable
/// from the repo root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub rule: &'static str,
    pub file: String,
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A preprocessed line of source.
#[derive(Debug, Clone)]
pub struct Line {
    /// 1-based line number.
    pub number: usize,
    /// The line with comments removed and string contents blanked; quotes
    /// are kept so the column structure stays roughly intact.
    pub code: String,
    /// Rules suppressed on this line via `// lint: allow(<rule>)`.
    pub allows: Vec<String>,
    /// True inside a `#[cfg(test)]` item or a tests/benches file.
    pub in_test: bool,
    /// True when the line carries a `// sync: <invariant>` justification
    /// (trailing, or on a standalone comment line directly above). The
    /// atomics audit requires one per non-obs `Ordering::*` site.
    pub sync: bool,
    /// True when the line carries a `// SAFETY: <argument>` justification
    /// (trailing or directly above). The unsafe audit requires one per
    /// `unsafe` block/fn/impl.
    pub safety: bool,
}

impl Line {
    /// Whether `rule` is suppressed on this line.
    pub fn allows(&self, rule: &str) -> bool {
        self.allows.iter().any(|a| a == rule)
    }
}

/// A preprocessed source file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes, e.g.
    /// `crates/engine/src/worker.rs`.
    pub rel: String,
    pub lines: Vec<Line>,
}

impl SourceFile {
    /// Whether the file lives under one of the given workspace-relative
    /// directory prefixes.
    pub fn under(&self, prefixes: &[&str]) -> bool {
        prefixes.iter().any(|p| self.rel.starts_with(p))
    }
}

/// Lexer state carried across lines.
enum Mode {
    Code,
    /// Nested depth of `/* … */` (rust block comments nest).
    BlockComment(u32),
    /// Inside `"…"`.
    Str,
    /// Inside `r##"…"##` with the given `#` count.
    RawStr(u32),
}

/// Preprocess one file's text into the line model.
pub fn parse_source(rel: &str, text: &str) -> SourceFile {
    let force_test = rel.contains("/tests/") || rel.contains("/benches/");

    let mut lines = Vec::new();
    let mut mode = Mode::Code;
    // Allow annotations from a standalone comment line waiting for the next
    // code line.
    let mut carried_allows: Vec<String> = Vec::new();
    // `sync:` / `SAFETY:` justifications from standalone comment lines
    // waiting for the next code line (same carry rule as allows).
    let mut carried_sync = false;
    let mut carried_safety = false;

    // Brace-depth tracking for `#[cfg(test)]` regions.
    let mut depth: i64 = 0;
    let mut pending_test_item = false;
    let mut test_until_depth: Option<i64> = None;

    for (idx, raw) in text.lines().enumerate() {
        let mut code = String::with_capacity(raw.len());
        let mut comment = String::new();
        let mut chars = raw.chars().peekable();

        while let Some(c) = chars.next() {
            match mode {
                Mode::BlockComment(d) => {
                    if c == '*' && chars.peek() == Some(&'/') {
                        chars.next();
                        if d == 1 {
                            mode = Mode::Code;
                        } else {
                            mode = Mode::BlockComment(d - 1);
                        }
                    } else if c == '/' && chars.peek() == Some(&'*') {
                        chars.next();
                        mode = Mode::BlockComment(d + 1);
                    } else {
                        comment.push(c);
                    }
                }
                Mode::Str => {
                    if c == '\\' {
                        chars.next(); // skip the escaped char
                    } else if c == '"' {
                        code.push('"');
                        mode = Mode::Code;
                    }
                }
                Mode::RawStr(hashes) => {
                    if c == '"' {
                        // Need `hashes` consecutive '#' to close.
                        let mut n = 0;
                        while n < hashes && chars.peek() == Some(&'#') {
                            chars.next();
                            n += 1;
                        }
                        if n == hashes {
                            code.push('"');
                            mode = Mode::Code;
                        }
                    }
                }
                Mode::Code => match c {
                    '/' if chars.peek() == Some(&'/') => {
                        // Line comment: capture the rest for allow parsing.
                        chars.next();
                        comment.extend(chars.by_ref());
                    }
                    '/' if chars.peek() == Some(&'*') => {
                        chars.next();
                        mode = Mode::BlockComment(1);
                    }
                    '"' => {
                        code.push('"');
                        mode = Mode::Str;
                    }
                    'r' if matches!(chars.peek(), Some('"') | Some('#'))
                        && !code.ends_with(|p: char| p.is_alphanumeric() || p == '_') =>
                    {
                        // Possible raw string r"…" / r#"…"#. Count hashes.
                        let mut hashes = 0;
                        while chars.peek() == Some(&'#') {
                            chars.next();
                            hashes += 1;
                        }
                        if chars.peek() == Some(&'"') {
                            chars.next();
                            code.push('r');
                            code.push('"');
                            mode = Mode::RawStr(hashes);
                        } else {
                            // `r#ident` raw identifier — put the hashes back
                            // conceptually (they carry no tokens we match).
                            code.push('r');
                            for _ in 0..hashes {
                                code.push('#');
                            }
                        }
                    }
                    '\'' => {
                        // Char literal vs lifetime. A char literal closes
                        // within two chars (`'x'` or `'\n'`); a lifetime
                        // does not. Peek without consuming on the lifetime
                        // path is impossible with a plain iterator, so
                        // consume conservatively: escapes are always char
                        // literals; otherwise only treat as a literal when
                        // the char after next is `'`.
                        code.push('\'');
                        let mut look = chars.clone();
                        match look.next() {
                            Some('\\') => {
                                // Escape: consume until closing quote.
                                chars.next();
                                for c2 in chars.by_ref() {
                                    if c2 == '\'' {
                                        break;
                                    }
                                }
                                code.push('\'');
                            }
                            Some(_) if look.next() == Some('\'') => {
                                chars.next();
                                chars.next();
                                code.push('\'');
                            }
                            _ => {} // lifetime: leave the tick, keep lexing
                        }
                    }
                    _ => code.push(c),
                },
            }
        }

        // Allow annotations: `lint: allow(rule)` anywhere in the line's
        // comment text (possibly several).
        let mut allows = parse_allows(&comment);
        let mut sync = has_justification(&comment, "sync:");
        let mut safety = has_justification(&comment, "SAFETY:");
        let standalone = code.trim().is_empty();
        if standalone {
            // A comment-only line passes its allows down to the next code
            // line (and blank lines in between don't break the chain).
            carried_allows.append(&mut allows);
            carried_sync |= sync;
            carried_safety |= safety;
            sync = false;
            safety = false;
        } else {
            allows.append(&mut carried_allows);
            sync |= std::mem::take(&mut carried_sync);
            safety |= std::mem::take(&mut carried_safety);
        }

        // Test-region tracking on the stripped code.
        if force_test {
            test_until_depth = Some(-1); // whole file
        }
        let mut in_test = test_until_depth.is_some();
        if code.contains("#[cfg(test)]") {
            pending_test_item = true;
        }
        for c in code.chars() {
            match c {
                '{' => {
                    if pending_test_item && test_until_depth.is_none() {
                        test_until_depth = Some(depth);
                        pending_test_item = false;
                        in_test = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if !force_test && test_until_depth == Some(depth) {
                        test_until_depth = None;
                    }
                }
                _ => {}
            }
        }

        lines.push(Line {
            number: idx + 1,
            code,
            allows,
            in_test,
            sync,
            safety,
        });
    }

    SourceFile {
        rel: rel.to_string(),
        lines,
    }
}

/// Extract every `lint: allow(<rule>)` from a comment's text.
fn parse_allows(comment: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(pos) = rest.find("lint: allow(") {
        rest = &rest[pos + "lint: allow(".len()..];
        if let Some(end) = rest.find(')') {
            let rule = rest[..end].trim();
            if !rule.is_empty() {
                out.push(rule.to_string());
            }
            rest = &rest[end + 1..];
        } else {
            break;
        }
    }
    out
}

/// Whether a comment carries `<marker>` followed by a nonempty
/// justification (`// sync: single-writer shard`, `// SAFETY: …`). A bare
/// marker with no text does not count — the justification *is* the audit
/// trail.
fn has_justification(comment: &str, marker: &str) -> bool {
    comment
        .find(marker)
        .is_some_and(|pos| !comment[pos + marker.len()..].trim().is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(f: &SourceFile) -> Vec<String> {
        f.lines.iter().map(|l| l.code.clone()).collect()
    }

    #[test]
    fn strips_line_and_block_comments() {
        let f = parse_source(
            "x.rs",
            "let a = 1; // trailing .unwrap()\n/* block\nspans .expect( lines */ let b = 2;\n",
        );
        let c = codes(&f);
        assert_eq!(c[0].trim(), "let a = 1;");
        assert!(!c[0].contains("unwrap"));
        assert_eq!(c[1].trim(), "");
        assert_eq!(c[2].trim(), "let b = 2;");
        assert!(!c[2].contains("expect"));
    }

    #[test]
    fn blanks_string_contents_including_raw() {
        let f = parse_source(
            "x.rs",
            "let s = \"contains .unwrap() text\";\nlet r = r#\"panic!(\"quoted\")\"#;\nlet t = s;\n",
        );
        let c = codes(&f);
        assert!(!c[0].contains("unwrap"), "{:?}", c[0]);
        assert!(!c[1].contains("panic"), "{:?}", c[1]);
        assert_eq!(c[2].trim(), "let t = s;");
    }

    #[test]
    fn char_literals_and_lifetimes_survive() {
        let f = parse_source(
            "x.rs",
            "fn f<'a>(x: &'a str) -> char { 'x' }\nlet q = '\\'';\nlet z = 1;\n",
        );
        let c = codes(&f);
        assert!(c[0].contains("fn f<'a>"), "{:?}", c[0]);
        assert_eq!(c[2].trim(), "let z = 1;");
    }

    #[test]
    fn trailing_allow_applies_to_its_line() {
        let f = parse_source(
            "x.rs",
            "x.unwrap(); // lint: allow(hot-path-panics) startup only\n",
        );
        assert!(f.lines[0].allows("hot-path-panics"));
        assert!(!f.lines[0].allows("nondeterminism"));
    }

    #[test]
    fn standalone_allow_applies_to_next_code_line() {
        let f = parse_source(
            "x.rs",
            "// lint: allow(nondeterminism)\nInstant::now();\nInstant::now();\n",
        );
        assert!(f.lines[1].allows("nondeterminism"));
        assert!(
            !f.lines[2].allows("nondeterminism"),
            "allow must not leak past one line"
        );
    }

    #[test]
    fn cfg_test_region_is_flagged() {
        let src = "fn hot() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\nfn also_hot() {}\n";
        let f = parse_source("x.rs", src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[3].in_test, "inside mod tests");
        assert!(!f.lines[5].in_test, "region closed");
    }

    #[test]
    fn tests_dir_files_are_entirely_test() {
        let f = parse_source("crates/foo/tests/it.rs", "fn t() { x.unwrap(); }\n");
        assert!(f.lines[0].in_test);
    }

    #[test]
    fn sync_and_safety_justifications_trailing_and_carried() {
        let src = "x.load(Ordering::Relaxed); // sync: single-writer shard\n\
                   // SAFETY: ptr is valid for the shard's lifetime\n\
                   unsafe { *p }\n\
                   y.load(Ordering::Relaxed);\n";
        let f = parse_source("x.rs", src);
        assert!(f.lines[0].sync);
        assert!(!f.lines[0].safety);
        assert!(f.lines[2].safety, "standalone SAFETY carries to next line");
        assert!(
            !f.lines[3].sync,
            "justification must not leak past one line"
        );
        assert!(!f.lines[3].safety);
    }

    #[test]
    fn bare_markers_without_text_do_not_count() {
        let f = parse_source(
            "x.rs",
            "a.load(Ordering::Relaxed); // sync:\nunsafe {} // SAFETY:\n",
        );
        assert!(!f.lines[0].sync);
        assert!(!f.lines[1].safety);
    }
}
