//! `codec-exhaustive`: every control message variant is cost-modeled.
//!
//! `engine/src/messages.rs` defines the control-plane enums (`WorkerMsg`,
//! `CoordMsg`, `BspSignal`); `engine/src/codec.rs` charges each variant a
//! wire size so the simulated network bills control traffic honestly. The
//! codec's sizing functions are written as exhaustive `match`es with no
//! wildcard, so *within one crate build* the compiler enforces coverage —
//! but nothing stops a `_ => 0` wildcard from creeping in during a refactor
//! and silently zero-rating every future variant. This cross-file check
//! closes that hole: each variant name declared in `messages.rs` must
//! appear as `Enum::Variant` somewhere in `codec.rs`.

use super::Rule;
use crate::scan::{SourceFile, Violation};

/// The enums whose variants must be priced, and the file that must price
/// them.
const MESSAGES: &str = "crates/engine/src/messages.rs";
const CODEC: &str = "crates/engine/src/codec.rs";
const ENUMS: &[&str] = &["WorkerMsg", "CoordMsg", "BspSignal"];

pub struct CodecExhaustive;

impl Rule for CodecExhaustive {
    fn name(&self) -> &'static str {
        "codec-exhaustive"
    }

    fn describe(&self) -> &'static str {
        "every WorkerMsg/CoordMsg/BspSignal variant has a matching arm in engine/src/codec.rs"
    }

    fn check(&self, files: &[SourceFile]) -> Vec<Violation> {
        let Some(messages) = files.iter().find(|f| f.rel == MESSAGES) else {
            // Scanning a partial tree (e.g. a rule fixture): nothing to do.
            return Vec::new();
        };
        let Some(codec) = files.iter().find(|f| f.rel == CODEC) else {
            return vec![Violation {
                rule: self.name(),
                file: MESSAGES.to_string(),
                line: 1,
                message: format!("{CODEC} is missing — control messages have no wire-size model"),
            }];
        };

        let codec_text: String = codec
            .lines
            .iter()
            .map(|l| l.code.as_str())
            .collect::<Vec<_>>()
            .join("\n");

        let mut out = Vec::new();
        for enum_name in ENUMS {
            let variants = enum_variants(messages, enum_name);
            if variants.is_empty() {
                out.push(Violation {
                    rule: self.name(),
                    file: MESSAGES.to_string(),
                    line: 1,
                    message: format!(
                        "could not find `enum {enum_name}` in {MESSAGES} — \
                         update the codec-exhaustive rule if it moved"
                    ),
                });
                continue;
            }
            for (line, variant) in variants {
                let arm = format!("{enum_name}::{variant}");
                if !codec_text.contains(&arm) {
                    out.push(Violation {
                        rule: self.name(),
                        file: MESSAGES.to_string(),
                        line,
                        message: format!(
                            "`{arm}` has no arm in {CODEC} — add it to the \
                             wire-size match so the network cost model covers it"
                        ),
                    });
                }
            }
        }
        out
    }
}

/// Extract `(line, variant_name)` pairs from `enum <name> { … }` in a
/// preprocessed file. Variants are the depth-1 identifiers that open the
/// line inside the enum's braces; derive attributes, doc comments, and
/// field lines (deeper brace depth) never match because comments are
/// stripped and depth is tracked.
fn enum_variants(file: &SourceFile, enum_name: &str) -> Vec<(usize, String)> {
    let header = format!("enum {enum_name} ");
    let header_brace = format!("enum {enum_name} {{");
    let mut out = Vec::new();
    let mut depth_in_enum: Option<u32> = None;

    for line in &file.lines {
        let code = line.code.trim();
        match depth_in_enum {
            None => {
                if code.contains(&header_brace) || code.contains(&header) && code.ends_with('{') {
                    depth_in_enum = Some(1);
                }
            }
            Some(ref mut depth) => {
                if *depth == 1 {
                    // A variant line starts with an uppercase identifier
                    // followed by `,`, `(`, `{`, or ` `.
                    let ident: String = code
                        .chars()
                        .take_while(|c| c.is_alphanumeric() || *c == '_')
                        .collect();
                    if !ident.is_empty()
                        && ident.chars().next().is_some_and(|c| c.is_ascii_uppercase())
                    {
                        let after = code[ident.len()..].chars().next();
                        if matches!(after, None | Some(',') | Some('(') | Some('{') | Some(' ')) {
                            out.push((line.number, ident));
                        }
                    }
                }
                for c in code.chars() {
                    match c {
                        '{' => *depth += 1,
                        '}' => {
                            *depth -= 1;
                            if *depth == 0 {
                                return out;
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::parse_source;

    const FIXTURE_MESSAGES: &str = "\
/// Doc comment.
#[derive(Debug)]
pub enum WorkerMsg {
    /// A data batch.
    Batch(Vec<Traverser>),
    QueryBegin { ctx: Arc<QueryCtx>, stage: u16 },
    Shutdown,
}

pub enum CoordMsg {
    Progress { query: QueryId, weight: Weight },
    Tick,
}

pub enum BspSignal {
    RunStep { query: QueryId, depth: u32 },
}
";

    fn files(codec_src: &str) -> Vec<SourceFile> {
        vec![
            parse_source("crates/engine/src/messages.rs", FIXTURE_MESSAGES),
            parse_source("crates/engine/src/codec.rs", codec_src),
        ]
    }

    #[test]
    fn variant_extraction_skips_docs_attrs_and_fields() {
        let f = parse_source("crates/engine/src/messages.rs", FIXTURE_MESSAGES);
        let v: Vec<String> = enum_variants(&f, "WorkerMsg")
            .into_iter()
            .map(|(_, n)| n)
            .collect();
        assert_eq!(v, ["Batch", "QueryBegin", "Shutdown"]);
        let c: Vec<String> = enum_variants(&f, "CoordMsg")
            .into_iter()
            .map(|(_, n)| n)
            .collect();
        assert_eq!(c, ["Progress", "Tick"]);
    }

    #[test]
    fn complete_codec_passes() {
        let codec = "\
fn size(m: &WorkerMsg) -> usize {
    match m {
        WorkerMsg::Batch(b) => b.len(),
        WorkerMsg::QueryBegin { .. } => 16,
        WorkerMsg::Shutdown => 4,
    }
}
fn csize(m: &CoordMsg) -> usize {
    match m { CoordMsg::Progress { .. } => 32, CoordMsg::Tick => 4 }
}
fn bsize(s: &BspSignal) -> usize {
    match s { BspSignal::RunStep { .. } => 16 }
}
";
        assert!(CodecExhaustive.check(&files(codec)).is_empty());
    }

    #[test]
    fn missing_variant_is_reported_at_its_declaration() {
        // Codec forgot QueryBegin and the whole BspSignal enum.
        let codec = "\
fn size(m: &WorkerMsg) -> usize {
    match m { WorkerMsg::Batch(b) => b.len(), WorkerMsg::Shutdown => 4, _ => 0 }
}
fn csize(m: &CoordMsg) -> usize {
    match m { CoordMsg::Progress { .. } => 32, CoordMsg::Tick => 4 }
}
";
        let v = CodecExhaustive.check(&files(codec));
        assert_eq!(v.len(), 2, "{v:#?}");
        assert!(v[0].message.contains("WorkerMsg::QueryBegin"));
        assert_eq!(v[0].file, "crates/engine/src/messages.rs");
        assert_eq!(v[0].line, 6, "points at the variant declaration");
        assert!(v[1].message.contains("BspSignal::RunStep"));
    }

    #[test]
    fn partial_trees_without_messages_are_skipped() {
        let only = vec![parse_source("crates/engine/src/codec.rs", "fn x() {}")];
        assert!(CodecExhaustive.check(&only).is_empty());
    }
}
