//! `std-hash`: use `graphdance_common::FxHashMap`, not SipHash maps.
//!
//! Query execution hashes vertex ids on every `Expand`, `Dedup`, and memo
//! access; the default `std::collections::HashMap` (SipHash-1-3) costs
//! several times more per lookup than the workspace's Fx hasher and its
//! random seeding makes iteration order differ run-to-run, which breaks
//! reproducibility of anything that iterates a map. All workspace code must
//! use `graphdance_common::{FxHashMap, FxHashSet}`.
//!
//! The one sanctioned site is `common/src/fxhash.rs`, where the aliases are
//! *defined* over the std types with an explicit hasher — it carries the
//! allow annotation.

use super::Rule;
use crate::scan::{SourceFile, Violation};

pub struct StdHash;

impl Rule for StdHash {
    fn name(&self) -> &'static str {
        "std-hash"
    }

    fn describe(&self) -> &'static str {
        "no std::collections::HashMap/HashSet — use graphdance_common::FxHashMap/FxHashSet"
    }

    fn check(&self, files: &[SourceFile]) -> Vec<Violation> {
        let mut out = Vec::new();
        for f in files {
            for line in &f.lines {
                if line.in_test || line.allows(self.name()) {
                    continue;
                }
                // Both the path form (`std::collections::HashMap<..>`) and
                // the import form (`use std::collections::{HashMap, ..}`)
                // put `std::collections` and the type name on one line.
                // `hash_map::Entry` et al. are fine — only the map/set type
                // names are banned.
                let has_path = line.code.contains("std::collections::");
                if !has_path {
                    continue;
                }
                for ty in ["HashMap", "HashSet"] {
                    if contains_word(&line.code, ty) {
                        out.push(Violation {
                            rule: self.name(),
                            file: f.rel.clone(),
                            line: line.number,
                            message: format!(
                                "std::collections::{ty} is SipHash-seeded (slow, \
                                 nondeterministic iteration) — use \
                                 graphdance_common::Fx{ty}"
                            ),
                        });
                    }
                }
            }
        }
        out
    }
}

/// `needle` appears in `hay` not embedded in a larger identifier
/// (so `HashMap` does not match `FxHashMap`).
fn contains_word(hay: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = hay[start..].find(needle) {
        let at = start + pos;
        let before_ok = at == 0
            || !hay[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + needle.len();
        let after_ok = after >= hay.len()
            || !hay[after..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = at + needle.len();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::parse_source;

    fn run(rel: &str, src: &str) -> Vec<Violation> {
        StdHash.check(&[parse_source(rel, src)])
    }

    #[test]
    fn flags_import_and_path_forms() {
        let fixture = "use std::collections::{HashMap, VecDeque};\nlet m: std::collections::HashSet<u64> = Default::default();\n";
        let v = run("crates/engine/src/worker.rs", fixture);
        assert_eq!(v.len(), 2, "{v:#?}");
        assert!(v[0].message.contains("FxHashMap"));
        assert!(v[1].message.contains("FxHashSet"));
    }

    #[test]
    fn fx_aliases_and_entry_paths_are_fine() {
        let fixture = "use graphdance_common::FxHashMap;\nuse std::collections::hash_map::Entry;\nuse std::collections::{BTreeMap, VecDeque, BinaryHeap};\nlet m: FxHashMap<u64, u64> = FxHashMap::default();\n";
        assert!(run("crates/engine/src/worker.rs", fixture).is_empty());
    }

    #[test]
    fn definition_site_uses_the_allow_annotation() {
        let fixture = "// lint: allow(std-hash) alias definition site\nuse std::collections::{HashMap, HashSet};\npub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;\n";
        assert!(run("crates/common/src/fxhash.rs", fixture).is_empty());
    }

    #[test]
    fn test_code_may_use_std_maps() {
        let fixture = "#[cfg(test)]\nmod tests {\n    fn t() { let s = std::collections::HashSet::new(); }\n}\n";
        assert!(run("crates/pstm/src/interp.rs", fixture).is_empty());
    }
}
