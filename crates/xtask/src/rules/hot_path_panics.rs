//! `hot-path-panics`: no `unwrap`/`expect`/`panic!` in hot-path crates.
//!
//! A panic in a worker or network thread does not crash the process — it
//! kills one thread of the simulated cluster and leaves the client blocked
//! on a reply that will never come (exactly the hang class the liveness
//! watchdog exists to catch). Fallible paths in `engine`, `pstm`, and
//! `storage` must therefore propagate `GdError` so the coordinator can fail
//! the query with a diagnostic.
//!
//! Thread-spawn expects at engine startup and true never-happens branches
//! may be annotated `// lint: allow(hot-path-panics) <justification>`.

use super::Rule;
use crate::scan::{SourceFile, Violation};

/// Crates whose `src/` is on the query execution path.
const HOT_CRATES: &[&str] = &[
    "crates/engine/src",
    "crates/pstm/src",
    "crates/storage/src",
    "crates/service/src",
];

/// Panicking constructs and the advice attached to each.
const TOKENS: &[(&str, &str)] = &[
    (".unwrap()", "`.unwrap()`"),
    (".expect(", "`.expect(..)`"),
    ("panic!", "`panic!`"),
    ("unreachable!", "`unreachable!`"),
    ("todo!", "`todo!`"),
    ("unimplemented!", "`unimplemented!`"),
];

pub struct HotPathPanics;

impl Rule for HotPathPanics {
    fn name(&self) -> &'static str {
        "hot-path-panics"
    }

    fn describe(&self) -> &'static str {
        "no unwrap/expect/panic! in crates/{engine,pstm,storage,service} non-test code"
    }

    fn check(&self, files: &[SourceFile]) -> Vec<Violation> {
        let mut out = Vec::new();
        for f in files.iter().filter(|f| f.under(HOT_CRATES)) {
            for line in &f.lines {
                if line.in_test || line.allows(self.name()) {
                    continue;
                }
                for (tok, label) in TOKENS {
                    if line.code.contains(tok) {
                        out.push(Violation {
                            rule: self.name(),
                            file: f.rel.clone(),
                            line: line.number,
                            message: format!(
                                "{label} in a hot-path crate can wedge the cluster — \
                                 propagate GdError, or annotate \
                                 `// lint: allow(hot-path-panics) <why>`"
                            ),
                        });
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::parse_source;

    fn run(rel: &str, src: &str) -> Vec<Violation> {
        HotPathPanics.check(&[parse_source(rel, src)])
    }

    #[test]
    fn flags_unwrap_expect_and_panic_in_hot_crate() {
        let fixture = "fn f(o: Option<u32>) -> u32 {\n    let a = o.unwrap();\n    let b = o.expect(\"present\");\n    if a + b > 9 { panic!(\"boom\") }\n    a\n}\n";
        let v = run("crates/engine/src/worker.rs", fixture);
        assert_eq!(v.len(), 3, "{v:#?}");
        assert_eq!(v[0].line, 2);
        assert_eq!(v[1].line, 3);
        assert_eq!(v[2].line, 4);
        assert!(v[0].message.contains("GdError"));
    }

    #[test]
    fn ignores_non_hot_crates_and_test_code() {
        let fixture = "fn f(o: Option<u32>) -> u32 { o.unwrap() }\n";
        assert!(run("crates/bench/src/lib.rs", fixture).is_empty());

        let test_fixture = "#[cfg(test)]\nmod tests {\n    fn t() { None::<u32>.unwrap(); }\n}\n";
        assert!(run("crates/pstm/src/interp.rs", test_fixture).is_empty());
    }

    #[test]
    fn allow_annotation_suppresses_a_single_site() {
        let fixture = "let h = spawn(f).expect(\"spawn\"); // lint: allow(hot-path-panics) startup\nlet bad = o.unwrap();\n";
        let v = run("crates/engine/src/net.rs", fixture);
        assert_eq!(v.len(), 1, "{v:#?}");
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn unwrap_or_variants_do_not_match() {
        let fixture = "let a = o.unwrap_or(0);\nlet b = o.unwrap_or_else(|| 1);\nlet c = r.expect_err(\"must fail\");\n";
        assert!(run("crates/storage/src/graph.rs", fixture).is_empty());
    }

    #[test]
    fn strings_and_comments_do_not_match() {
        let fixture = "// this mentions .unwrap() in prose\nlet msg = \"do not panic!()\";\n";
        assert!(run("crates/engine/src/engine.rs", fixture).is_empty());
    }
}
