//! The lint rules behind `cargo xtask check`.
//!
//! Each rule implements [`Rule`] over the preprocessed [`SourceFile`] set
//! (comments and string contents already stripped, test regions flagged —
//! see `scan`). Any rule can be suppressed at a single site with a
//! `// lint: allow(<rule-name>)` comment on the offending line or on the
//! line above; the annotation is the audit trail for *why* the exception is
//! sound, so it should always carry a justification after the `)`.

use crate::scan::{SourceFile, Violation};

pub mod adhoc_counter;
pub mod codec_exhaustive;
pub mod hot_path_panics;
pub mod nondeterminism;
pub mod sim_determinism;
pub mod std_hash;

/// A single named lint rule.
pub trait Rule {
    /// Kebab-case rule name, as used in `// lint: allow(<name>)` and
    /// `cargo xtask check --rule <name>`.
    fn name(&self) -> &'static str;
    /// One-line description for `cargo xtask check --list`.
    fn describe(&self) -> &'static str;
    /// Scan the workspace and report violations.
    fn check(&self, files: &[SourceFile]) -> Vec<Violation>;
}

/// All rules, in report order.
pub fn all() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(hot_path_panics::HotPathPanics),
        Box::new(std_hash::StdHash),
        Box::new(nondeterminism::Nondeterminism),
        Box::new(sim_determinism::SimDeterminism),
        Box::new(codec_exhaustive::CodecExhaustive),
        Box::new(adhoc_counter::AdhocCounter),
    ]
}
