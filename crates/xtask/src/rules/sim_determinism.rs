//! `sim-determinism`: no wall-clock blocking or OS entropy in
//! sim-reachable crates.
//!
//! The deterministic simulator (`SimCluster` + `graphdance-sim`) runs the
//! whole cluster on one thread under a virtual clock: a given seed must
//! replay bit-identically forever, which is the contract every repro line
//! in `sim-repro/` depends on. That only holds if nothing on a
//! sim-reachable path blocks on the wall clock (`thread::sleep`,
//! `yield_now`) or pulls OS entropy (`OsRng`, `from_entropy`,
//! `rand::random`) — any of those would make the schedule depend on the
//! host machine instead of the seed. Raw `SystemTime` reads are equally
//! disqualifying (and unlike `Instant`, even constructing one is a
//! wall-clock dependency).
//!
//! The sibling `nondeterminism` rule already bans `Instant::now` /
//! `SystemTime::now` / `thread_rng` workspace-wide; this rule adds the
//! *blocking* and *entropy-source* constructs, but only inside the crates
//! the simulator can actually schedule. Threaded-mode-only code paths in
//! those crates (real network pacing, background broadcasters) carry a
//! `// lint: allow(sim-determinism)` with a justification for why the sim
//! can never reach them.

use super::Rule;
use crate::scan::{SourceFile, Violation};

/// Crates the simulator can schedule code from, plus the service layer
/// (its deadline/queue policy must stay a pure function of
/// `common::time::now()` so `svc=` repros replay). Baselines, the LDBC
/// driver, and the bench harness never run under `SimCluster`.
const SIM_REACHABLE: &[&str] = &[
    "crates/common/",
    "crates/storage/",
    "crates/query/",
    "crates/pstm/",
    "crates/engine/",
    "crates/sim/",
    "crates/service/",
];

/// Forbidden construct → why it breaks seeded replay.
const TOKENS: &[(&str, &str)] = &[
    (
        "thread::sleep",
        "blocks on the wall clock; advance the virtual clock (common::time::sim) instead",
    ),
    (
        "yield_now",
        "hands scheduling to the OS; the sim scheduler must own every interleaving",
    ),
    (
        "park_timeout",
        "blocks on the wall clock; the sim pumps actors instead of parking threads",
    ),
    (
        "SystemTime",
        "wall-clock reads diverge across runs; use common::time::now()",
    ),
    (
        "OsRng",
        "OS entropy is unseedable; use common::rng::{seeded, derive}",
    ),
    (
        "from_entropy",
        "OS entropy is unseedable; use common::rng::{seeded, derive}",
    ),
    (
        "rand::random",
        "implicitly OS-seeded; use common::rng::{seeded, derive}",
    ),
];

pub struct SimDeterminism;

impl Rule for SimDeterminism {
    fn name(&self) -> &'static str {
        "sim-determinism"
    }

    fn describe(&self) -> &'static str {
        "no thread::sleep/yield_now/SystemTime/OS entropy in sim-reachable crates"
    }

    fn check(&self, files: &[SourceFile]) -> Vec<Violation> {
        let mut out = Vec::new();
        for f in files {
            if !f.under(SIM_REACHABLE) {
                continue;
            }
            for line in &f.lines {
                if line.in_test || line.allows(self.name()) {
                    continue;
                }
                for (tok, why) in TOKENS {
                    if line.code.contains(tok) {
                        out.push(Violation {
                            rule: self.name(),
                            file: f.rel.clone(),
                            line: line.number,
                            message: format!("`{tok}` breaks deterministic replay: {why}"),
                        });
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::parse_source;

    fn run(rel: &str, src: &str) -> Vec<Violation> {
        SimDeterminism.check(&[parse_source(rel, src)])
    }

    #[test]
    fn flags_blocking_and_entropy_in_sim_crates() {
        let fixture = "std::thread::sleep(d);\nstd::thread::yield_now();\nlet t = std::time::SystemTime::now();\nlet mut r = SmallRng::from_entropy();\nlet x: u64 = rand::random();\n";
        let v = run("crates/engine/src/worker.rs", fixture);
        assert_eq!(v.len(), 5, "{v:#?}");
        assert!(v[0].message.contains("virtual clock"));
    }

    #[test]
    fn unreachable_crates_are_out_of_scope() {
        let fixture = "std::thread::sleep(backoff);\nlet r = SmallRng::from_entropy();\n";
        assert!(run("crates/baselines/src/bsp.rs", fixture).is_empty());
        assert!(run("crates/ldbc/src/driver.rs", fixture).is_empty());
    }

    #[test]
    fn threaded_mode_paths_carry_their_allow() {
        // Mirrors the real `engine/src/net.rs` pacing sleep.
        let fixture = "std::thread::sleep(d); // lint: allow(sim-determinism) threaded-mode only; sim pumps ingress itself\n";
        assert!(run("crates/engine/src/net.rs", fixture).is_empty());
    }

    #[test]
    fn tests_may_sleep() {
        let fixture = "#[cfg(test)]\nmod tests {\n    fn t() { std::thread::sleep(d); }\n}\n";
        assert!(run("crates/engine/src/engine.rs", fixture).is_empty());
    }

    #[test]
    fn duration_construction_is_not_a_clock_read() {
        let fixture = "let d = std::time::Duration::from_micros(5);\nlet t = graphdance_common::time::now();\n";
        assert!(run("crates/engine/src/coordinator.rs", fixture).is_empty());
    }
}
