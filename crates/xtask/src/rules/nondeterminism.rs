//! `nondeterminism`: clock and RNG reads go through `common::time` /
//! `common::rng`.
//!
//! Run-to-run reproducibility is a core property of the evaluation harness:
//! every experiment is driven by seeded RNGs, and wall-clock reads are
//! centralized in `graphdance_common::time::now()` so that measurement
//! policy (and any future virtual-clock or record/replay mode) has a single
//! switch point. A stray `Instant::now()` deep in an engine module silently
//! forks that policy; `thread_rng()` reseeds from the OS and destroys
//! reproducibility outright.

use super::Rule;
use crate::scan::{SourceFile, Violation};

/// Forbidden construct → where the sanctioned equivalent lives.
const TOKENS: &[(&str, &str)] = &[
    ("Instant::now", "graphdance_common::time::now()"),
    ("SystemTime::now", "graphdance_common::time::now()"),
    ("thread_rng", "graphdance_common::rng::{seeded, derive}"),
];

pub struct Nondeterminism;

impl Rule for Nondeterminism {
    fn name(&self) -> &'static str {
        "nondeterminism"
    }

    fn describe(&self) -> &'static str {
        "no Instant::now/SystemTime::now/thread_rng outside common::time / common::rng"
    }

    fn check(&self, files: &[SourceFile]) -> Vec<Violation> {
        let mut out = Vec::new();
        for f in files {
            for line in &f.lines {
                if line.in_test || line.allows(self.name()) {
                    continue;
                }
                for (tok, sanctioned) in TOKENS {
                    if line.code.contains(tok) {
                        out.push(Violation {
                            rule: self.name(),
                            file: f.rel.clone(),
                            line: line.number,
                            message: format!(
                                "`{tok}` forks the workspace's clock/RNG policy — \
                                 use {sanctioned} instead"
                            ),
                        });
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::parse_source;

    fn run(rel: &str, src: &str) -> Vec<Violation> {
        Nondeterminism.check(&[parse_source(rel, src)])
    }

    #[test]
    fn flags_raw_clock_and_rng_reads() {
        let fixture = "let t0 = Instant::now();\nlet wall = std::time::SystemTime::now();\nlet mut rng = rand::thread_rng();\n";
        let v = run("crates/engine/src/coordinator.rs", fixture);
        assert_eq!(v.len(), 3, "{v:#?}");
        assert!(v[0].message.contains("time::now()"));
        assert!(v[2].message.contains("rng::{seeded, derive}"));
    }

    #[test]
    fn sanctioned_wrappers_do_not_match() {
        let fixture = "use graphdance_common::time::now;\nlet t0 = now();\nlet r = graphdance_common::rng::seeded(42);\n";
        assert!(run("crates/bench/src/lib.rs", fixture).is_empty());
    }

    #[test]
    fn the_clock_module_carries_its_allow() {
        // Mirrors the real `common/src/time.rs` definition site.
        let fixture = "pub fn now() -> Instant {\n    Instant::now() // lint: allow(nondeterminism) — the sanctioned clock read\n}\n";
        assert!(run("crates/common/src/time.rs", fixture).is_empty());
    }

    #[test]
    fn tests_may_read_the_clock_directly() {
        let fixture =
            "#[cfg(test)]\nmod tests {\n    fn t() { let t = std::time::Instant::now(); }\n}\n";
        assert!(run("crates/engine/src/net.rs", fixture).is_empty());
    }
}
