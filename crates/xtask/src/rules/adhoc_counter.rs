//! `adhoc-counter`: metrics belong in `crates/obs`, not in scattered
//! atomics.
//!
//! PR 3 introduced the sharded `graphdance-obs` registry precisely so the
//! engine stops growing one-off `AtomicU64` / `Cell<u64>` counters that
//! each invent their own snapshot/reset story and (worse) put contended
//! `lock xadd`s on hot paths. New counters in the instrumented crates
//! (`engine`, `pstm`, `storage`) and in the measurement crates (`bench`,
//! `sim` — whose numbers feed committed BENCH_*.json artifacts and DST
//! verdicts, so ad-hoc counting there corrupts the record) must register
//! with the obs registry instead; the rule flags any other `AtomicU64` or
//! `Cell<u64>` appearing there.
//!
//! Legitimate non-metric uses — id allocators, sequencing for fault
//! injection, the obs-off `NetStats` fallback — carry a
//! `// lint: allow(adhoc-counter) <why>` annotation as the audit trail.
//! Plain `use` imports are not flagged (the import is harmless; the
//! declaration or constructor site is where the decision shows).

use super::Rule;
use crate::scan::{SourceFile, Violation};

pub struct AdhocCounter;

/// Crates whose counters must live in the obs registry.
const SCOPED: [&str; 6] = [
    "crates/engine/src/",
    "crates/pstm/src/",
    "crates/storage/src/",
    "crates/bench/src/",
    "crates/sim/src/",
    "crates/service/src/",
];

impl Rule for AdhocCounter {
    fn name(&self) -> &'static str {
        "adhoc-counter"
    }

    fn describe(&self) -> &'static str {
        "no ad-hoc AtomicU64/Cell<u64> counters in engine/pstm/storage/bench/sim/service — register obs metrics"
    }

    fn check(&self, files: &[SourceFile]) -> Vec<Violation> {
        let mut out = Vec::new();
        for f in files {
            if !SCOPED.iter().any(|p| f.rel.starts_with(p)) {
                continue;
            }
            for line in &f.lines {
                if line.in_test || line.allows(self.name()) {
                    continue;
                }
                let code = line.code.trim_start();
                if code.starts_with("use ") || code.starts_with("pub use ") {
                    continue;
                }
                for ty in ["AtomicU64", "Cell<u64>"] {
                    if contains_token(&line.code, ty) {
                        out.push(Violation {
                            rule: self.name(),
                            file: f.rel.clone(),
                            line: line.number,
                            message: format!(
                                "ad-hoc {ty} counter — register a metric with the \
                                 graphdance-obs registry (or annotate why this is \
                                 not a metric)"
                            ),
                        });
                    }
                }
            }
        }
        out
    }
}

/// `needle` appears in `hay` not embedded in a larger identifier (so
/// `AtomicU64` does not match a hypothetical `MyAtomicU64x`). `<` / `>`
/// in the needle match literally.
fn contains_token(hay: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = hay[start..].find(needle) {
        let at = start + pos;
        let before_ok = at == 0
            || !hay[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + needle.len();
        let after_ok = after >= hay.len()
            || !hay[after..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = at + needle.len();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::parse_source;

    fn run(rel: &str, src: &str) -> Vec<Violation> {
        AdhocCounter.check(&[parse_source(rel, src)])
    }

    #[test]
    fn flags_field_and_ctor_sites_in_scope() {
        let fixture = "use std::sync::atomic::AtomicU64;\n\
                       struct S {\n    hits: AtomicU64,\n    misses: std::cell::Cell<u64>,\n}\n\
                       fn f() { let c = AtomicU64::new(0); }\n";
        let v = run("crates/engine/src/worker.rs", fixture);
        assert_eq!(v.len(), 3, "{v:#?}");
        assert!(v.iter().all(|v| v.rule == "adhoc-counter"));
        assert!(v[0].message.contains("graphdance-obs"));
    }

    #[test]
    fn imports_are_not_flagged() {
        let fixture = "use std::sync::atomic::{AtomicU64, Ordering};\n\
                       pub use std::cell::Cell;\n";
        assert!(run("crates/pstm/src/memo.rs", fixture).is_empty());
    }

    #[test]
    fn out_of_scope_crates_are_free() {
        let fixture = "struct S { n: AtomicU64 }\n";
        assert!(run("crates/txn/src/manager.rs", fixture).is_empty());
        assert!(run("crates/obs/src/shared.rs", fixture).is_empty());
        assert!(run("crates/baselines/src/bsp.rs", fixture).is_empty());
    }

    #[test]
    fn measurement_crates_are_in_scope() {
        let fixture = "struct S { n: AtomicU64 }\n";
        assert_eq!(run("crates/bench/src/lib.rs", fixture).len(), 1);
        assert_eq!(
            run("crates/bench/src/bin/hotpath_arena.rs", fixture).len(),
            1
        );
        assert_eq!(run("crates/sim/src/oracle.rs", fixture).len(), 1);
    }

    #[test]
    fn allow_annotation_and_tests_escape() {
        let fixture = "// lint: allow(adhoc-counter) id allocator, not a metric\n\
                       struct S { next_id: AtomicU64 }\n\
                       fn g() { let n = AtomicU64::new(0); } // lint: allow(adhoc-counter) seq\n\
                       #[cfg(test)]\nmod tests {\n    fn t() { let c = AtomicU64::new(0); }\n}\n";
        assert!(run("crates/storage/src/graph.rs", fixture).is_empty());
    }

    #[test]
    fn other_atomics_are_fine() {
        let fixture = "struct S { stop: std::sync::atomic::AtomicBool, n: AtomicUsize }\n";
        assert!(run("crates/engine/src/engine.rs", fixture).is_empty());
    }
}
