//! Token-tree lexer over the preprocessed source model.
//!
//! The deep passes (`--deep`) need more than per-line substring checks:
//! the item index has to find `fn`/`impl` boundaries and the call-graph
//! extractor has to see `ident (`, `. ident (`, and `path :: ident (`
//! shapes. This lexer turns a [`SourceFile`]'s stripped `code` lines into
//! a flat token stream with line numbers. Comments and string contents are
//! already gone (see `scan`), so the lexer only has to split identifiers
//! from punctuation.
//!
//! It is deliberately not a full Rust lexer: multi-char operators arrive
//! as single [`Tok::Punct`] chars (`::` is two `:` tokens) and numeric
//! literals are lumped into [`Tok::Ident`] — none of the deep passes match
//! on numbers, and keeping one token shape keeps the index simple.

use crate::scan::SourceFile;

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier, keyword, or numeric literal.
    Ident(String),
    /// Any single punctuation character (`{`, `(`, `.`, `:`, `!`, …).
    Punct(char),
}

/// A token plus the 1-based source line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    pub line: usize,
    pub tok: Tok,
}

impl Token {
    /// The identifier text, if this is an ident token.
    pub fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(s) => Some(s),
            Tok::Punct(_) => None,
        }
    }

    /// Whether this token is the given punctuation char.
    pub fn is(&self, c: char) -> bool {
        self.tok == Tok::Punct(c)
    }
}

/// Lex a preprocessed file into its token stream.
pub fn lex(file: &SourceFile) -> Vec<Token> {
    let mut out = Vec::new();
    for line in &file.lines {
        let mut chars = line.code.chars().peekable();
        while let Some(c) = chars.next() {
            if c.is_whitespace() {
                continue;
            }
            if c.is_alphanumeric() || c == '_' {
                let mut ident = String::new();
                ident.push(c);
                while let Some(&n) = chars.peek() {
                    if n.is_alphanumeric() || n == '_' {
                        ident.push(n);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Token {
                    line: line.number,
                    tok: Tok::Ident(ident),
                });
            } else {
                out.push(Token {
                    line: line.number,
                    tok: Tok::Punct(c),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::parse_source;

    fn toks(src: &str) -> Vec<Tok> {
        lex(&parse_source("x.rs", src))
            .into_iter()
            .map(|t| t.tok)
            .collect()
    }

    #[test]
    fn splits_idents_and_punct() {
        let t = toks("fn f(x: u32) { x.lock() }\n");
        let idents: Vec<&str> = t
            .iter()
            .filter_map(|t| match t {
                Tok::Ident(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(idents, vec!["fn", "f", "x", "u32", "x", "lock"]);
        assert!(t.contains(&Tok::Punct('.')));
        assert!(t.contains(&Tok::Punct('{')));
    }

    #[test]
    fn line_numbers_track_source_lines() {
        let f = parse_source("x.rs", "fn a() {\n    b();\n}\n");
        let l = lex(&f);
        let b = l.iter().find(|t| t.ident() == Some("b")).unwrap();
        assert_eq!(b.line, 2);
    }

    #[test]
    fn comments_and_strings_are_already_stripped() {
        let t = toks("let s = \"call site()\"; // and here()\n");
        let idents: Vec<&str> = t
            .iter()
            .filter_map(|t| match t {
                Tok::Ident(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(idents, vec!["let", "s"]);
    }
}
