//! End-to-end fixture tests for the deep passes.
//!
//! Each fixture under `crates/xtask/fixtures/<pass>/` is a seeded-violation
//! mini-crate in two variants: `violation.rs` (the pass must fire) and
//! `suppressed.rs` (the same code silenced through the pass's escape hatch
//! — `// lint: allow(<rule>)`, `// sync:`, or `// SAFETY:`). Unlike the
//! unit tests inside each pass module, these run the full pipeline exactly
//! as `cargo xtask check --deep` does: preprocess → lex → index → call
//! graph → pass. The fixture sources are excluded from real workspace
//! scans (`load_workspace` skips `crates/xtask/`), so the deliberate
//! violations never leak into the CI gate.

#![cfg(test)]

use crate::deep::{self, Workspace};
use crate::scan::{parse_source, Violation};

/// Run one deep rule over fixture sources mapped to plausible
/// workspace-relative paths.
fn run(rule: &str, srcs: &[(&str, &str)]) -> Vec<Violation> {
    let files: Vec<_> = srcs.iter().map(|(rel, s)| parse_source(rel, s)).collect();
    let ws = Workspace::build(&files);
    deep::all()
        .iter()
        .find(|r| r.name() == rule)
        .expect("rule exists")
        .check(&ws)
}

/// Roots so the blocking pass has an anchor even in fixtures that do not
/// define one (it fails loudly on zero roots by design).
const PUMP_STUB: (&str, &str) = (
    "crates/engine/src/worker.rs",
    "impl Worker {\n    pub fn pump(&mut self) -> bool { false }\n}\n",
);

#[test]
fn lock_order_fixture_cycle_is_detected() {
    let v = run(
        "lock-order",
        &[
            PUMP_STUB,
            (
                "crates/txn/src/bank.rs",
                include_str!("../fixtures/lock_order/violation.rs"),
            ),
        ],
    );
    // The inversion is reported from both sides (one violation per
    // inverted edge), each naming both lock classes.
    assert_eq!(v.len(), 2, "{v:#?}");
    for viol in &v {
        assert!(
            viol.message.contains("accounts") && viol.message.contains("audit_log"),
            "cycle report names both lock classes: {}",
            viol.message
        );
    }
}

#[test]
fn lock_order_fixture_allow_suppresses() {
    let v = run(
        "lock-order",
        &[
            PUMP_STUB,
            (
                "crates/txn/src/bank.rs",
                include_str!("../fixtures/lock_order/suppressed.rs"),
            ),
        ],
    );
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn blocking_fixture_sleep_three_frames_down_is_detected_with_chain() {
    let v = run(
        "hot-path-blocking",
        &[(
            "crates/engine/src/worker.rs",
            include_str!("../fixtures/blocking/violation.rs"),
        )],
    );
    assert_eq!(v.len(), 1, "{v:#?}");
    assert!(
        v[0].message
            .contains("Worker::pump → Worker::drain_dirty → flush_all → sync_to_disk"),
        "chain is reported: {}",
        v[0].message
    );
}

#[test]
fn blocking_fixture_allow_suppresses() {
    let v = run(
        "hot-path-blocking",
        &[(
            "crates/engine/src/worker.rs",
            include_str!("../fixtures/blocking/suppressed.rs"),
        )],
    );
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn atomics_fixture_unjustified_orderings_are_detected() {
    let v = run(
        "atomics-audit",
        &[(
            "crates/pstm/src/epoch.rs",
            include_str!("../fixtures/atomics/violation.rs"),
        )],
    );
    assert_eq!(v.len(), 2, "{v:#?}");
    assert!(v[0].message.contains("Ordering::Relaxed"));
    assert!(v[1].message.contains("Ordering::Acquire"));
}

#[test]
fn atomics_fixture_sync_and_allow_suppress() {
    let v = run(
        "atomics-audit",
        &[(
            "crates/pstm/src/epoch.rs",
            include_str!("../fixtures/atomics/suppressed.rs"),
        )],
    );
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn unsafe_fixture_unannotated_sites_are_detected() {
    let v = run(
        "unsafe-audit",
        &[(
            "crates/pstm/src/slot.rs",
            include_str!("../fixtures/unsafe/violation.rs"),
        )],
    );
    assert_eq!(v.len(), 3, "{v:#?}");
}

#[test]
fn unsafe_fixture_safety_comments_suppress() {
    let v = run(
        "unsafe-audit",
        &[(
            "crates/pstm/src/slot.rs",
            include_str!("../fixtures/unsafe/suppressed.rs"),
        )],
    );
    assert!(v.is_empty(), "{v:#?}");
}
