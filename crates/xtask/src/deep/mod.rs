//! The deep (item-level) analysis passes behind `cargo xtask check --deep`.
//!
//! Unlike the line rules in `rules`, these passes see the whole workspace
//! at once through a shared [`Workspace`]: the token streams, the fn item
//! index, and the approximate call graph. They are still dependency-free
//! and approximate — DESIGN.md §11 documents exactly what each pass can
//! and cannot prove — but they reason *across function boundaries*:
//! lock-order inversion cycles, blocking calls transitively reachable from
//! the scheduler hot loops, and workspace-wide audits of atomic-ordering
//! and `unsafe` justification comments.

use crate::callgraph::{self, CallGraph};
use crate::index::{self, ItemIndex};
use crate::scan::{SourceFile, Violation};

pub mod atomics_audit;
pub mod blocking;
pub mod lock_order;
pub mod unsafe_audit;

/// Everything a deep pass gets to look at.
pub struct Workspace<'a> {
    pub files: &'a [SourceFile],
    pub index: ItemIndex,
    pub graph: CallGraph,
}

impl<'a> Workspace<'a> {
    /// Index the files and build the call graph.
    pub fn build(files: &'a [SourceFile]) -> Self {
        let index = index::build(files);
        let graph = callgraph::build(&index);
        Workspace {
            files,
            index,
            graph,
        }
    }

    /// The preprocessed line a violation would anchor to (1-based).
    pub fn line(&self, file: usize, number: usize) -> Option<&crate::scan::Line> {
        self.files[file].lines.get(number - 1)
    }
}

/// A deep analysis pass.
pub trait DeepRule {
    /// Kebab-case name, used by `--rule` and `// lint: allow(<name>)`.
    fn name(&self) -> &'static str;
    /// One-line description for `--list`.
    fn describe(&self) -> &'static str;
    /// Analyze the workspace and report violations.
    fn check(&self, ws: &Workspace<'_>) -> Vec<Violation>;
}

/// All deep passes, in report order.
pub fn all() -> Vec<Box<dyn DeepRule>> {
    vec![
        Box::new(lock_order::LockOrder),
        Box::new(blocking::HotPathBlocking),
        Box::new(atomics_audit::AtomicsAudit),
        Box::new(unsafe_audit::UnsafeAudit),
    ]
}
