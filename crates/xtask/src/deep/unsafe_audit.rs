//! `unsafe-audit`: every `unsafe` block, fn, impl, or trait carries a
//! `// SAFETY: <argument>` comment.
//!
//! The workspace is currently 100% safe Rust (this pass proves it and
//! keeps it honest): the planned arena/batched hot-path work (ROADMAP item
//! 5) is the first place `unsafe` is expected to appear, and when it does,
//! each block must state the invariant that makes it sound — on the same
//! line or a standalone comment line directly above. Unlike the other
//! passes this one also covers **test code** and, under
//! `--include-vendor`, the vendored dependency shims: an unsound vendored
//! `unsafe` corrupts the same address space.

use super::{DeepRule, Workspace};
use crate::scan::Violation;

pub struct UnsafeAudit;

impl DeepRule for UnsafeAudit {
    fn name(&self) -> &'static str {
        "unsafe-audit"
    }

    fn describe(&self) -> &'static str {
        "every `unsafe` site (crates/ and vendor/) carries a `// SAFETY:` argument"
    }

    fn check(&self, ws: &Workspace<'_>) -> Vec<Violation> {
        let mut out = Vec::new();
        for f in ws.files {
            for line in &f.lines {
                if line.safety || line.allows(self.name()) {
                    continue;
                }
                if has_word(&line.code, "unsafe") {
                    out.push(Violation {
                        rule: self.name(),
                        file: f.rel.clone(),
                        line: line.number,
                        message: "`unsafe` without a `// SAFETY:` argument — state the invariant \
                                  that makes this sound (and who upholds it)"
                            .to_string(),
                    });
                }
            }
        }
        out
    }
}

/// Word-boundary match, so idents like `unsafe_op_in_unsafe_fn` in lint
/// attribute lists don't trip the audit.
fn has_word(code: &str, word: &str) -> bool {
    let mut rest = code;
    while let Some(pos) = rest.find(word) {
        let before_ok = pos == 0
            || !rest[..pos]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = &rest[pos + word.len()..];
        let after_ok = !after
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        rest = &rest[pos + word.len()..];
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::parse_source;

    fn run(rel: &str, src: &str) -> Vec<Violation> {
        let files = [parse_source(rel, src)];
        let ws = Workspace::build(&files);
        UnsafeAudit.check(&ws)
    }

    #[test]
    fn unannotated_unsafe_block_and_fn_are_flagged() {
        let v = run(
            "crates/pstm/src/arena.rs",
            "fn get(&self, i: usize) -> &T {\n    unsafe { self.ptr.add(i).as_ref() }\n}\n\
             unsafe fn raw(&self) -> *mut T { self.ptr }\n",
        );
        assert_eq!(v.len(), 2, "{v:#?}");
        assert_eq!(v[0].line, 2);
        assert_eq!(v[1].line, 4);
    }

    #[test]
    fn safety_comment_above_or_trailing_goes_quiet() {
        let v = run(
            "crates/pstm/src/arena.rs",
            "fn get(&self, i: usize) -> &T {\n    \
             // SAFETY: i < self.len invariant maintained by push()\n    \
             unsafe { self.ptr.add(i).as_ref() }\n}\n\
             unsafe impl Send for Arena {} // SAFETY: single owner per shard\n",
        );
        assert!(v.is_empty(), "{v:#?}");
    }

    #[test]
    fn vendor_and_test_code_are_covered() {
        let v = run(
            "vendor/bytes/src/lib.rs",
            "#[cfg(test)]\nmod tests {\n    fn t() { unsafe { x() } }\n}\n",
        );
        assert_eq!(v.len(), 1, "test code is not exempt from the unsafe audit");
    }

    #[test]
    fn word_boundary_avoids_lint_names_and_strings() {
        let v = run(
            "crates/common/src/lib.rs",
            "#![deny(unsafe_op_in_unsafe_fn)]\nlet s = \"this mentions unsafe code\";\n",
        );
        assert!(v.is_empty(), "{v:#?}");
    }
}
