//! `atomics-audit`: every atomic-ordering site outside the obs
//! single-writer shards carries a machine-checked `// sync: <invariant>`
//! justification.
//!
//! `Ordering::Relaxed` is correct only under a documented protocol (a
//! single writer, a monotonic counter read for diagnostics, …), and
//! `Acquire`/`Release` only when the happens-before edge it creates is
//! named. An ordering with no stated invariant is unreviewable: nobody can
//! tell whether weakening or strengthening it is a bug. This pass makes
//! the justification mandatory — a trailing `// sync: …` comment on the
//! site, or a standalone `// sync: …` comment line directly above it.
//!
//! The obs metrics shards (`crates/obs/src/registry.rs`, `shared.rs`) are
//! whitelisted wholesale: their single-writer-per-shard protocol is
//! documented once at module level (DESIGN.md §8) rather than per line,
//! and they account for the overwhelming majority of relaxed sites.

use super::{DeepRule, Workspace};
use crate::scan::Violation;

/// Files whose module-level docs already pin the protocol for every
/// atomic inside.
const WHITELIST: &[&str] = &["crates/obs/src/registry.rs", "crates/obs/src/shared.rs"];

/// The five memory orderings (`std::sync::atomic::Ordering` variants;
/// `std::cmp::Ordering` variants do not collide).
const ORDERINGS: &[&str] = &[
    "Ordering::Relaxed",
    "Ordering::Acquire",
    "Ordering::Release",
    "Ordering::AcqRel",
    "Ordering::SeqCst",
];

pub struct AtomicsAudit;

impl DeepRule for AtomicsAudit {
    fn name(&self) -> &'static str {
        "atomics-audit"
    }

    fn describe(&self) -> &'static str {
        "every non-obs atomic Ordering::* site carries a `// sync: <invariant>` justification"
    }

    fn check(&self, ws: &Workspace<'_>) -> Vec<Violation> {
        let mut out = Vec::new();
        for f in ws.files {
            if !f.rel.starts_with("crates/") || WHITELIST.contains(&f.rel.as_str()) {
                continue;
            }
            for line in &f.lines {
                if line.in_test || line.sync || line.allows(self.name()) {
                    continue;
                }
                if let Some(ord) = ORDERINGS.iter().find(|o| line.code.contains(*o)) {
                    out.push(Violation {
                        rule: self.name(),
                        file: f.rel.clone(),
                        line: line.number,
                        message: format!(
                            "`{ord}` without a `// sync: <invariant>` justification — state the \
                             protocol that makes this ordering sufficient (single writer? \
                             happens-before edge? diagnostic-only read?)"
                        ),
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::parse_source;

    fn run(rel: &str, src: &str) -> Vec<Violation> {
        let files = [parse_source(rel, src)];
        let ws = Workspace::build(&files);
        AtomicsAudit.check(&ws)
    }

    #[test]
    fn unjustified_relaxed_is_flagged() {
        let v = run(
            "crates/engine/src/net.rs",
            "fn f(a: &AtomicU64) -> u64 {\n    a.load(Ordering::Relaxed)\n}\n",
        );
        assert_eq!(v.len(), 1, "{v:#?}");
        assert_eq!(v[0].line, 2);
        assert!(v[0].message.contains("Ordering::Relaxed"));
    }

    #[test]
    fn sync_comment_trailing_or_above_goes_quiet() {
        let v = run(
            "crates/engine/src/net.rs",
            "fn f(a: &AtomicU64) -> u64 {\n    \
             // sync: monotonic counter, torn reads impossible on u64\n    \
             a.fetch_add(1, Ordering::Relaxed);\n    \
             a.load(Ordering::Acquire) // sync: pairs with Release in store_lct\n}\n",
        );
        assert!(v.is_empty(), "{v:#?}");
    }

    #[test]
    fn obs_shards_and_test_code_are_exempt() {
        assert!(run(
            "crates/obs/src/registry.rs",
            "fn f(a: &AtomicU64) { a.store(1, Ordering::Relaxed); }\n",
        )
        .is_empty());
        assert!(run(
            "crates/engine/src/net.rs",
            "#[cfg(test)]\nmod tests {\n    fn t(a: &AtomicU64) { a.store(1, Ordering::SeqCst); }\n}\n",
        )
        .is_empty());
    }

    #[test]
    fn cmp_ordering_does_not_collide() {
        let v = run(
            "crates/engine/src/worker.rs",
            "fn f(a: u32, b: u32) -> Ordering {\n    a.cmp(&b).then(Ordering::Less)\n}\n",
        );
        assert!(v.is_empty(), "{v:#?}");
    }

    #[test]
    fn lint_allow_works_as_escape_hatch() {
        let v = run(
            "crates/engine/src/net.rs",
            "fn f(a: &AtomicU64) {\n    a.store(1, Ordering::SeqCst); // lint: allow(atomics-audit) migration shim\n}\n",
        );
        assert!(v.is_empty(), "{v:#?}");
    }
}
