//! `lock-order`: potential lock-order inversion cycles across
//! `engine`/`pstm`/`storage`/`txn`/`common`.
//!
//! MV2PL makes lock acquisition order a correctness property (§III of the
//! paper): two threads that acquire the same pair of locks in opposite
//! orders can deadlock. This pass extracts every `Mutex`/`RwLock`
//! acquisition (`.lock()`, `.read()`, `.write()` with zero args) from the
//! scoped crates, assigns each a *lock class* named by the receiver-tail
//! identifier — `self.fault_state.lock()` is class `fault_state` — and
//! propagates possibly-held classes along the approximate call graph:
//! a `let`-bound guard is assumed held until the end of its function
//! (over-approximate; Rust drops it at end of scope), an unbound guard
//! (temporary in a larger expression) only until the end of its statement
//! line. An edge `A → B` means "B was acquired while A was possibly
//! held"; a cycle among ≥ 2 classes is a potential inversion and is
//! reported with one witness per edge. Classes unify *by name across
//! crates* — the same `Arc<LockTable>` field reached from `engine` and
//! `txn` is one class — so two unrelated locks that happen to share a
//! field name may alias (over-approximate), while one lock bound to
//! differently-named locals will not (under-approximate).
//!
//! Same-class edges (re-acquiring the same class, e.g. two shards of one
//! sharded table) are deliberately *not* reported: shard guards are
//! dropped statement-by-statement in every current caller, and flagging
//! them would drown the signal. DESIGN.md §11 lists this as a known
//! under-approximation.
//!
//! Suppress a single acquisition with `// lint: allow(lock-order) <why>`.

use std::collections::{BTreeSet, HashMap};

use super::{DeepRule, Workspace};
use crate::lex::Token;
use crate::scan::Violation;

/// Crates whose locks participate in the analysis.
const SCOPED: &[&str] = &["engine", "pstm", "storage", "txn", "common", "service"];

/// One lock acquisition site.
struct Acq {
    class: usize,
    line: usize,
    pos: usize,
    /// Guard bound by `let`/`if let`/`while let`/`match` — assumed held to
    /// end of fn. Unbound temporaries die with their statement.
    bound: bool,
}

/// One propagated hold-then-acquire edge with its witness.
struct Edge {
    from: usize,
    to: usize,
    file: String,
    line: usize,
    via: String,
}

pub struct LockOrder;

impl DeepRule for LockOrder {
    fn name(&self) -> &'static str {
        "lock-order"
    }

    fn describe(&self) -> &'static str {
        "no lock-order inversion cycles across engine/pstm/storage/txn/common"
    }

    fn check(&self, ws: &Workspace<'_>) -> Vec<Violation> {
        let mut classes: Vec<String> = Vec::new();
        let mut class_ids: HashMap<String, usize> = HashMap::new();
        let nfns = ws.index.fns.len();

        // Per-fn acquisition lists (scoped, non-test, unsuppressed).
        let mut acqs: Vec<Vec<Acq>> = Vec::with_capacity(nfns);
        for f in &ws.index.fns {
            if f.in_test || !SCOPED.contains(&f.crate_name.as_str()) {
                acqs.push(Vec::new());
                continue;
            }
            let Some(body) = f.body else {
                acqs.push(Vec::new());
                continue;
            };
            let ts = &ws.index.toks[f.file];
            let mut list = Vec::new();
            for (pos, tail) in acquisitions(ts, body) {
                let line = ts[pos].line;
                let suppressed = ws
                    .line(f.file, line)
                    .is_some_and(|l| l.allows(self.name()) || l.in_test);
                if suppressed {
                    continue;
                }
                let class = *class_ids.entry(tail.clone()).or_insert_with(|| {
                    classes.push(tail);
                    classes.len() - 1
                });
                list.push(Acq {
                    class,
                    line,
                    pos,
                    bound: is_bound(ts, body.0, pos),
                });
            }
            acqs.push(list);
        }

        // Transitively acquired classes per fn (fixpoint over the call
        // graph; cycles converge because sets only grow).
        let mut ta: Vec<BTreeSet<usize>> = acqs
            .iter()
            .map(|list| list.iter().map(|a| a.class).collect())
            .collect();
        let mut changed = true;
        while changed {
            changed = false;
            for f in 0..nfns {
                for &(callee, _) in &ws.graph.edges[f] {
                    if callee == f {
                        continue;
                    }
                    let add: Vec<usize> = ta[callee]
                        .iter()
                        .copied()
                        .filter(|c| !ta[f].contains(c))
                        .collect();
                    if !add.is_empty() {
                        ta[f].extend(add);
                        changed = true;
                    }
                }
            }
        }

        // Hold-then-acquire edges.
        let mut edges: Vec<Edge> = Vec::new();
        let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
        for (fid, f) in ws.index.fns.iter().enumerate() {
            let rel = &ws.files[f.file].rel;
            for (i, a) in acqs[fid].iter().enumerate() {
                // Later acquisitions in the same fn.
                for b in acqs[fid].iter().skip(i + 1) {
                    if b.pos > a.pos
                        && (a.bound || b.line == a.line)
                        && a.class != b.class
                        && seen.insert((a.class, b.class))
                    {
                        edges.push(Edge {
                            from: a.class,
                            to: b.class,
                            file: rel.clone(),
                            line: b.line,
                            via: f.qual(),
                        });
                    }
                }
                // Acquisitions inside callees invoked while (possibly) held.
                for &(callee, cline) in &ws.graph.edges[fid] {
                    if cline < a.line || (!a.bound && cline != a.line) {
                        continue;
                    }
                    for &c in &ta[callee] {
                        if c != a.class && seen.insert((a.class, c)) {
                            edges.push(Edge {
                                from: a.class,
                                to: c,
                                file: rel.clone(),
                                line: cline,
                                via: format!("{} → {}", f.qual(), ws.index.fns[callee].qual()),
                            });
                        }
                    }
                }
            }
        }

        // Cycle detection over the class graph: report every edge that lies
        // on some cycle (its target can reach its source).
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); classes.len()];
        for e in &edges {
            adj[e.from].push(e.to);
        }
        let mut out = Vec::new();
        let mut reported: BTreeSet<(usize, usize)> = BTreeSet::new();
        for e in &edges {
            if reaches(&adj, e.to, e.from) && reported.insert((e.from, e.to)) {
                let back = edges
                    .iter()
                    .find(|b| b.from == e.to && reaches(&adj, b.to, e.from))
                    .map(|b| {
                        format!(
                            "`{}` → `{}` at {}:{} (in {})",
                            classes[b.from], classes[b.to], b.file, b.line, b.via
                        )
                    })
                    .unwrap_or_else(|| "(reverse path through further edges)".to_string());
                out.push(Violation {
                    rule: self.name(),
                    file: e.file.clone(),
                    line: e.line,
                    message: format!(
                        "potential lock-order inversion: `{}` acquired while `{}` may be held \
                         (in {}), but elsewhere {} — establish one global acquisition order or \
                         annotate `// lint: allow(lock-order) <why>` on one acquisition",
                        classes[e.to], classes[e.from], e.via, back
                    ),
                });
            }
        }
        out
    }
}

/// `.lock()` / `.read()` / `.write()` (zero-arg) sites in a body, with the
/// receiver-tail identifier naming the lock.
fn acquisitions(ts: &[Token], body: (usize, usize)) -> Vec<(usize, String)> {
    let (start, end) = body;
    let mut out = Vec::new();
    for i in start..end.min(ts.len()) {
        let Some(name) = ts[i].ident() else { continue };
        if !matches!(name, "lock" | "read" | "write") {
            continue;
        }
        let is_method = i > start && ts[i - 1].is('.');
        let arity0 =
            ts.get(i + 1).is_some_and(|t| t.is('(')) && ts.get(i + 2).is_some_and(|t| t.is(')'));
        if !is_method || !arity0 {
            continue;
        }
        out.push((i, receiver_tail(ts, start, i - 1)));
    }
    out
}

/// The identifier naming the receiver of the method call whose `.` sits at
/// `dot`: `self.counts.lock()` → `counts`, `self.shard(v).lock()` →
/// `shard`, `shards[i].lock()` → `shards`.
fn receiver_tail(ts: &[Token], start: usize, dot: usize) -> String {
    let mut i = dot;
    while i > start {
        i -= 1;
        match &ts[i].tok {
            crate::lex::Tok::Ident(s) => return s.clone(),
            crate::lex::Tok::Punct(')') => {
                let mut depth = 1;
                while i > start && depth > 0 {
                    i -= 1;
                    if ts[i].is(')') {
                        depth += 1;
                    } else if ts[i].is('(') {
                        depth -= 1;
                    }
                }
            }
            crate::lex::Tok::Punct(']') => {
                let mut depth = 1;
                while i > start && depth > 0 {
                    i -= 1;
                    if ts[i].is(']') {
                        depth += 1;
                    } else if ts[i].is('[') {
                        depth -= 1;
                    }
                }
            }
            crate::lex::Tok::Punct(_) => return "expr".to_string(),
        }
    }
    "expr".to_string()
}

/// Whether the statement containing token `pos` binds the guard: it starts
/// with `let`, `if`, `while`, or `match` (all of which can extend the
/// guard's life past the statement's own line).
fn is_bound(ts: &[Token], body_start: usize, pos: usize) -> bool {
    let mut i = pos;
    while i > body_start {
        i -= 1;
        match &ts[i].tok {
            crate::lex::Tok::Punct(';')
            | crate::lex::Tok::Punct('{')
            | crate::lex::Tok::Punct('}') => {
                return ts
                    .get(i + 1)
                    .and_then(|t| t.ident())
                    .is_some_and(|s| matches!(s, "let" | "if" | "while" | "match"));
            }
            _ => {}
        }
    }
    ts.get(body_start)
        .and_then(|t| t.ident())
        .is_some_and(|s| matches!(s, "let" | "if" | "while" | "match"))
}

/// DFS reachability `from → to` in the class graph.
fn reaches(adj: &[Vec<usize>], from: usize, to: usize) -> bool {
    let mut stack = vec![from];
    let mut seen = vec![false; adj.len()];
    while let Some(n) = stack.pop() {
        if n == to {
            return true;
        }
        if std::mem::replace(&mut seen[n], true) {
            continue;
        }
        stack.extend(adj[n].iter().copied().filter(|&m| !seen[m]));
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::parse_source;

    fn run(srcs: &[(&str, &str)]) -> Vec<Violation> {
        let files: Vec<_> = srcs.iter().map(|(rel, s)| parse_source(rel, s)).collect();
        let ws = Workspace::build(&files);
        LockOrder.check(&ws)
    }

    const INVERTED_A: &str = "impl A {\n\
        fn forward(&self) {\n    let g = self.m1.lock();\n    self.grab_two();\n}\n\
        fn grab_two(&self) {\n    let h = self.m2.lock();\n}\n}\n";

    #[test]
    fn inverted_order_across_functions_is_a_cycle() {
        let b = "impl B {\n\
            fn backward(&self) {\n    let g = self.m2.lock();\n    let h = self.m1.lock();\n}\n}\n";
        let v = run(&[
            ("crates/engine/src/a.rs", INVERTED_A),
            ("crates/txn/src/b.rs", b),
        ]);
        assert!(!v.is_empty(), "m1→m2 in A vs m2→m1 in B must cycle");
        assert!(
            v[0].message.contains("lock-order inversion"),
            "{}",
            v[0].message
        );
    }

    #[test]
    fn consistent_order_is_clean() {
        let b = "impl B {\n\
            fn same_way(&self) {\n    let g = self.m1.lock();\n    let h = self.m2.lock();\n}\n}\n";
        let v = run(&[
            ("crates/engine/src/a.rs", INVERTED_A),
            ("crates/txn/src/b.rs", b),
        ]);
        assert!(v.is_empty(), "{v:#?}");
    }

    #[test]
    fn statement_scoped_temporaries_do_not_hold() {
        // Unbound guards die with their statement: no edge m1→m2.
        let a = "impl A {\nfn f(&self) {\n    self.m1.lock().push(1);\n    let g = self.m2.lock();\n}\n}\n";
        let b = "impl B {\nfn g(&self) {\n    let g = self.m2.lock();\n    let h = self.m1.lock();\n}\n}\n";
        let v = run(&[("crates/engine/src/a.rs", a), ("crates/engine/src/b.rs", b)]);
        assert!(v.is_empty(), "{v:#?}");
    }

    #[test]
    fn allow_annotation_suppresses_the_acquisition() {
        let b = "impl B {\n\
            fn backward(&self) {\n    let g = self.m2.lock();\n\
            let h = self.m1.lock(); // lint: allow(lock-order) ordered by shard id\n}\n}\n";
        let v = run(&[
            ("crates/engine/src/a.rs", INVERTED_A),
            ("crates/txn/src/b.rs", b),
        ]);
        assert!(v.is_empty(), "{v:#?}");
    }

    #[test]
    fn sharded_same_class_reacquisition_is_not_a_cycle() {
        let a = "impl T {\nfn all(&self) {\n    for s in &self.shards {\n        let g = s.lock();\n    }\n}\n}\n";
        let v = run(&[("crates/txn/src/t.rs", a)]);
        assert!(v.is_empty(), "{v:#?}");
    }

    #[test]
    fn unscoped_crates_are_ignored() {
        let b = "impl B {\nfn backward(&self) {\n    let g = self.m2.lock();\n    let h = self.m1.lock();\n}\n}\n";
        let v = run(&[
            ("crates/bench/src/a.rs", INVERTED_A),
            ("crates/bench/src/b.rs", b),
        ]);
        assert!(v.is_empty(), "{v:#?}");
    }
}
