//! `hot-path-blocking`: no blocking calls or panics transitively reachable
//! from the scheduler hot loops.
//!
//! The line rule `hot-path-panics` can only flag a panic *textually inside*
//! `engine`/`pstm`/`storage`. This pass replaces that heuristic with
//! call-graph reachability: starting from the non-blocking scheduling
//! quanta — `Worker::pump`, `Coordinator::pump`, and the deterministic
//! simulator's `SimCluster::step` — every function they can (approximately)
//! reach is scanned for blocking constructs (`.lock()`, `.recv()`,
//! `thread::sleep`, `.join()`, …) and panicking constructs
//! (`.unwrap()`, `panic!`, …), *whatever crate it lives in*. A worker that
//! blocks inside its quantum stalls its whole partition; a worker that
//! panics kills one thread of the cluster and leaves the client hanging.
//!
//! Short bounded critical sections are legitimate — annotate them
//! `// lint: allow(hot-path-blocking) <why bounded>`. Panic sites already
//! justified for the line rule (`// lint: allow(hot-path-panics)`) are
//! honored here too, so one annotation serves both rules.

use super::{DeepRule, Workspace};
use crate::scan::Violation;

/// Reachability roots: the scheduling quanta of the threaded engine and
/// the deterministic simulator.
const ROOTS: &[&str] = &["Worker::pump", "Coordinator::pump", "SimCluster::step"];

/// Blocking constructs.
const BLOCKING: &[(&str, &str)] = &[
    (".lock()", "blocking mutex acquisition"),
    (".read()", "blocking rwlock read acquisition"),
    (".write()", "blocking rwlock write acquisition"),
    (".recv()", "blocking channel receive"),
    (".recv_timeout(", "bounded-blocking channel receive"),
    ("thread::sleep", "wall-clock sleep"),
    (".join()", "thread join"),
    (".wait(", "condvar/barrier wait"),
    (".park(", "thread park"),
    ("park_timeout", "bounded thread park"),
];

/// Panicking constructs (same set as the `hot-path-panics` line rule).
const PANICS: &[(&str, &str)] = &[
    (".unwrap()", "`.unwrap()`"),
    (".expect(", "`.expect(..)`"),
    ("panic!", "`panic!`"),
    ("unreachable!", "`unreachable!`"),
    ("todo!", "`todo!`"),
    ("unimplemented!", "`unimplemented!`"),
];

pub struct HotPathBlocking;

impl DeepRule for HotPathBlocking {
    fn name(&self) -> &'static str {
        "hot-path-blocking"
    }

    fn describe(&self) -> &'static str {
        "no blocking calls or panics reachable from Worker::pump / Coordinator::pump / SimCluster::step"
    }

    fn check(&self, ws: &Workspace<'_>) -> Vec<Violation> {
        let roots: Vec<usize> = ws
            .index
            .fns
            .iter()
            .enumerate()
            .filter(|(_, f)| !f.in_test && ROOTS.contains(&f.qual().as_str()))
            .map(|(i, _)| i)
            .collect();
        if roots.is_empty() {
            // Misconfigured roots must fail loudly, not silently pass.
            return vec![Violation {
                rule: self.name(),
                file: ws.files.first().map(|f| f.rel.clone()).unwrap_or_default(),
                line: 1,
                message: format!(
                    "none of the hot-path roots ({}) exist in this workspace — \
                     the reachability pass has nothing to anchor on",
                    ROOTS.join(", ")
                ),
            }];
        }
        let parent = ws.graph.reach(&roots);

        let mut out = Vec::new();
        let mut seen: std::collections::BTreeSet<(usize, usize, &str)> =
            std::collections::BTreeSet::new();
        let mut reachable: Vec<usize> = parent.keys().copied().collect();
        reachable.sort_by_key(|&f| (ws.index.fns[f].file, ws.index.fns[f].sig_line));
        for fid in reachable {
            let f = &ws.index.fns[fid];
            if f.body.is_none() {
                continue;
            }
            // Vendored shims ARE the blocking primitives — what matters is
            // the call site in crates/ that reaches them, and that site is
            // already scanned in its own fn body.
            if f.crate_name.starts_with("vendor/") {
                continue;
            }
            let rel = &ws.files[f.file].rel;
            let (first, last) = f.body_lines;
            for n in first..=last {
                let Some(line) = ws.line(f.file, n) else {
                    continue;
                };
                if line.in_test || line.allows(self.name()) {
                    continue;
                }
                for (tok, label) in BLOCKING {
                    if line.code.contains(tok) && seen.insert((f.file, n, tok)) {
                        out.push(Violation {
                            rule: self.name(),
                            file: rel.clone(),
                            line: n,
                            message: format!(
                                "{label} (`{tok}`) reachable from a scheduler quantum: {} — \
                                 make the path non-blocking or annotate \
                                 `// lint: allow(hot-path-blocking) <why bounded>`",
                                ws.graph.chain(&ws.index, &parent, fid)
                            ),
                        });
                    }
                }
                if line.allows("hot-path-panics") {
                    continue; // already justified for the line rule
                }
                for (tok, label) in PANICS {
                    if line.code.contains(tok) && seen.insert((f.file, n, tok)) {
                        out.push(Violation {
                            rule: self.name(),
                            file: rel.clone(),
                            line: n,
                            message: format!(
                                "{label} reachable from a scheduler quantum: {} — \
                                 propagate GdError instead, or annotate \
                                 `// lint: allow(hot-path-blocking) <why impossible>`",
                                ws.graph.chain(&ws.index, &parent, fid)
                            ),
                        });
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::parse_source;

    fn run(srcs: &[(&str, &str)]) -> Vec<Violation> {
        let files: Vec<_> = srcs.iter().map(|(rel, s)| parse_source(rel, s)).collect();
        let ws = Workspace::build(&files);
        HotPathBlocking.check(&ws)
    }

    #[test]
    fn blocking_three_frames_below_the_root_is_found_with_its_chain() {
        let src = "impl Worker {\n\
            pub fn pump(&mut self) { self.a(); }\n\
            fn a(&self) { self.b(); }\n\
            fn b(&self) { deep_helper(); }\n\
            }\n\
            fn deep_helper() {\n    std::thread::sleep(d);\n}\n";
        let v = run(&[("crates/engine/src/worker.rs", src)]);
        assert_eq!(v.len(), 1, "{v:#?}");
        assert!(
            v[0].message
                .contains("Worker::pump → Worker::a → Worker::b → deep_helper"),
            "{}",
            v[0].message
        );
    }

    #[test]
    fn unreachable_blocking_is_ignored() {
        let src = "impl Worker {\n    pub fn pump(&mut self) {}\n}\n\
            fn cold_path() { rx.recv().ok(); }\n";
        let v = run(&[("crates/engine/src/worker.rs", src)]);
        assert!(v.is_empty(), "{v:#?}");
    }

    #[test]
    fn panics_outside_hot_crates_are_caught_transitively() {
        let src = "impl Worker {\n    pub fn pump(&mut self) { shared(); }\n}\n";
        let common = "pub fn shared() { x.unwrap(); }\n";
        let v = run(&[
            ("crates/engine/src/worker.rs", src),
            ("crates/common/src/util.rs", common),
        ]);
        assert_eq!(v.len(), 1, "{v:#?}");
        assert!(v[0].file.contains("common"), "{v:#?}");
    }

    #[test]
    fn allow_annotations_suppress_including_the_panics_alias() {
        let src = "impl Worker {\n\
            pub fn pump(&mut self) {\n\
                self.m.lock(); // lint: allow(hot-path-blocking) bounded: stats only\n\
                x.unwrap(); // lint: allow(hot-path-panics) checked above\n\
            }\n}\n";
        let v = run(&[("crates/engine/src/worker.rs", src)]);
        assert!(v.is_empty(), "{v:#?}");
    }

    #[test]
    fn missing_roots_fail_loudly() {
        let v = run(&[("crates/engine/src/worker.rs", "fn nothing() {}\n")]);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("roots"));
    }
}
