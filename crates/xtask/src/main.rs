//! `cargo xtask` — workspace automation for GraphDance.
//!
//! The only subcommand today is `check`, the static half of the engine's
//! invariant story (the dynamic half — weight/message conservation ledgers
//! and the liveness watchdog — runs inside debug builds; see
//! DESIGN.md "Invariants & how they are enforced"):
//!
//! ```text
//! cargo xtask check                      # fast line rules over crates/**/*.rs
//! cargo xtask check --deep               # + item-level concurrency passes
//! cargo xtask check --deep --include-vendor   # deep passes over vendor/ too
//! cargo xtask check --rule std-hash      # run one rule (line or deep)
//! cargo xtask check --list               # list the rules
//! ```
//!
//! The fast pass is per-line token scanning (pre-commit speed). `--deep`
//! additionally builds the item index and approximate call graph (see
//! DESIGN.md §11) and runs the concurrency passes: lock-order cycles,
//! hot-path blocking reachability, and the atomics/unsafe audits.
//!
//! Violations print as `path:line: [rule] message` and the process exits
//! non-zero, so `ci.sh` can gate on it. Individual sites are suppressed
//! with `// lint: allow(<rule>) <justification>` on the offending line or
//! the line above; the audits also accept their own `// sync:` /
//! `// SAFETY:` justification comments.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

mod callgraph;
mod deep;
mod fixtures;
mod index;
mod lex;
mod rules;
mod scan;

use deep::DeepRule;
use rules::Rule;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => check(&args[1..]),
        Some("--help") | Some("-h") | None => {
            usage();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("xtask: unknown command `{other}`\n");
            usage();
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!(
        "usage: cargo xtask <command>\n\n\
         commands:\n  \
         check [--deep] [--include-vendor] [--rule <name>] [--list]\n      \
         run the workspace lint pass (--deep adds the item-level\n      \
         concurrency passes; --include-vendor scans vendor/ shims too)"
    );
}

fn check(args: &[String]) -> ExitCode {
    let all = rules::all();
    let deep_all = deep::all();

    let mut only: Option<String> = None;
    let mut run_deep = false;
    let mut include_vendor = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--list" => {
                for r in &all {
                    println!("{:<18} {}", r.name(), r.describe());
                }
                for r in &deep_all {
                    println!("{:<18} [deep] {}", r.name(), r.describe());
                }
                return ExitCode::SUCCESS;
            }
            "--deep" => run_deep = true,
            "--include-vendor" => include_vendor = true,
            "--rule" => {
                i += 1;
                match args.get(i) {
                    Some(name) => only = Some(name.clone()),
                    None => {
                        eprintln!("xtask check: --rule needs a rule name (see --list)");
                        return ExitCode::FAILURE;
                    }
                }
            }
            other => {
                eprintln!("xtask check: unknown flag `{other}`");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    // Selection: with --rule, run exactly the named rule, line or deep.
    // Without, run every line rule, plus every deep pass under --deep.
    type Selected<'a> = (Vec<&'a Box<dyn Rule>>, Vec<&'a Box<dyn DeepRule>>);
    let (line_rules, deep_rules): Selected<'_> = match &only {
        None => (
            all.iter().collect(),
            if run_deep {
                deep_all.iter().collect()
            } else {
                Vec::new()
            },
        ),
        Some(name) => {
            let line_hit: Vec<_> = all.iter().filter(|r| r.name() == name).collect();
            let deep_hit: Vec<_> = deep_all.iter().filter(|r| r.name() == name).collect();
            if line_hit.is_empty() && deep_hit.is_empty() {
                eprintln!("xtask check: no rule named `{name}` (see --list)");
                return ExitCode::FAILURE;
            }
            (line_hit, deep_hit)
        }
    };

    let root = workspace_root();
    let files = load_workspace(&root, include_vendor);
    if files.is_empty() {
        eprintln!(
            "xtask check: found no .rs files under {}",
            root.join("crates").display()
        );
        return ExitCode::FAILURE;
    }

    // Line rules encode workspace policy (clock discipline, error style);
    // the vendor shims *implement* those policies and are exempt. Deep
    // passes decide vendor scope per rule. Paths are sorted, so crates/
    // entries form a prefix of the slice.
    let vendor_split = files.partition_point(|f| !f.rel.starts_with("vendor/"));
    let mut violations = Vec::new();
    for rule in &line_rules {
        violations.extend(rule.check(&files[..vendor_split]));
    }
    if !deep_rules.is_empty() {
        let ws = deep::Workspace::build(&files);
        for rule in &deep_rules {
            violations.extend(rule.check(&ws));
        }
    }
    violations.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));

    if violations.is_empty() {
        println!(
            "xtask check: {} file(s) clean across {} rule(s)",
            files.len(),
            line_rules.len() + deep_rules.len()
        );
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            println!("{v}");
        }
        println!("\nxtask check: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

/// The workspace root: two levels above this crate's manifest. Works no
/// matter which directory `cargo xtask` is invoked from.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/xtask has a workspace root two levels up")
        .to_path_buf()
}

/// Load and preprocess every `.rs` file under `crates/` (plus `vendor/`
/// when asked), sorted by path so the report order is stable. `xtask`
/// itself is skipped: its rule fixtures contain deliberate violations.
fn load_workspace(root: &Path, include_vendor: bool) -> Vec<scan::SourceFile> {
    let mut paths = Vec::new();
    collect_rs(&root.join("crates"), &mut paths);
    if include_vendor {
        collect_rs(&root.join("vendor"), &mut paths);
    }
    paths.sort();

    let mut files = Vec::new();
    for p in paths {
        let rel = p
            .strip_prefix(root)
            .unwrap_or(&p)
            .to_string_lossy()
            .replace('\\', "/");
        if rel.starts_with("crates/xtask/") {
            continue;
        }
        match std::fs::read_to_string(&p) {
            Ok(text) => files.push(scan::parse_source(&rel, &text)),
            Err(e) => eprintln!("xtask check: skipping unreadable {}: {e}", p.display()),
        }
    }
    files
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The check must hold on the real tree: running every rule over the
    /// actual workspace sources reports zero violations. This is the same
    /// invocation `ci.sh` gates on, wired in as a plain unit test so
    /// `cargo test --workspace` exercises it too.
    #[test]
    fn real_workspace_is_clean() {
        let root = workspace_root();
        let files = load_workspace(&root, false);
        assert!(
            files.len() > 50,
            "workspace scan found only {} files",
            files.len()
        );
        let mut violations = Vec::new();
        for rule in rules::all() {
            violations.extend(rule.check(&files));
        }
        let report: Vec<String> = violations.iter().map(|v| v.to_string()).collect();
        assert!(
            violations.is_empty(),
            "workspace has lint violations:\n{}",
            report.join("\n")
        );
    }

    /// The deep concurrency passes must also hold on the real tree — this
    /// is the `cargo xtask check --deep --include-vendor` invocation the
    /// nightly CI lane gates on, wired in as a unit test so plain
    /// `cargo test --workspace` exercises it too.
    #[test]
    fn real_workspace_is_clean_deep() {
        let root = workspace_root();
        let files = load_workspace(&root, true);
        let ws = deep::Workspace::build(&files);
        let mut violations = Vec::new();
        for rule in deep::all() {
            violations.extend(rule.check(&ws));
        }
        let report: Vec<String> = violations.iter().map(|v| v.to_string()).collect();
        assert!(
            violations.is_empty(),
            "workspace has deep-pass violations:\n{}",
            report.join("\n")
        );
    }
}
