//! Same sites as `violation.rs`, each carrying a `// SAFETY:` argument
//! (carried or trailing). The pass must stay quiet.

pub struct Slot {
    ptr: *mut u8,
}

impl Slot {
    pub fn get(&self, i: usize) -> u8 {
        // SAFETY: callers uphold i < capacity (checked in the public
        // wrapper); ptr is valid for the arena's lifetime
        unsafe { *self.ptr.add(i) }
    }

    // SAFETY: exposes the raw pointer; caller must not outlive the arena
    pub unsafe fn raw(&self) -> *mut u8 {
        self.ptr
    }
}

unsafe impl Send for Slot {} // SAFETY: one owner per shard, handed off with the shard itself
