//! Seeded unsafe violations: an unannotated `unsafe` block, fn, and impl.
//! The `unsafe-audit` pass must flag all three lines.

pub struct Slot {
    ptr: *mut u8,
}

impl Slot {
    pub fn get(&self, i: usize) -> u8 {
        unsafe { *self.ptr.add(i) }
    }

    pub unsafe fn raw(&self) -> *mut u8 {
        self.ptr
    }
}

unsafe impl Send for Slot {}
