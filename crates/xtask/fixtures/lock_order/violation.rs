//! Seeded lock-order inversion: `transfer` holds `accounts` while taking
//! `audit_log`; `report` holds `audit_log` while taking `accounts`. Run
//! concurrently, the two functions deadlock. The `lock-order` pass must
//! report the cycle between the two lock classes.

pub struct Bank {
    accounts: Mutex<Vec<u64>>,
    audit_log: Mutex<Vec<String>>,
}

impl Bank {
    pub fn transfer(&self) {
        let mut accounts = self.accounts.lock();
        accounts.push(1);
        let mut audit_log = self.audit_log.lock();
        audit_log.push("t".into());
    }

    pub fn report(&self) {
        let log = self.audit_log.lock();
        let accounts = self.accounts.lock();
        let _ = (log.len(), accounts.len());
    }
}
