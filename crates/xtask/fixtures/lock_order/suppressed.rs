//! Same shape as `violation.rs`, but the inverted acquisition carries a
//! `// lint: allow(lock-order)` justification (e.g. the caller guarantees
//! the two paths never run concurrently). The pass must stay quiet.

pub struct Bank {
    accounts: Mutex<Vec<u64>>,
    audit_log: Mutex<Vec<String>>,
}

impl Bank {
    pub fn transfer(&self) {
        let mut accounts = self.accounts.lock();
        accounts.push(1);
        let mut audit_log = self.audit_log.lock();
        audit_log.push("t".into());
    }

    pub fn report(&self) {
        // lint: allow(lock-order) report() only runs after shutdown, when
        // transfer() can no longer be invoked
        let log = self.audit_log.lock();
        let accounts = self.accounts.lock();
        let _ = (log.len(), accounts.len());
    }
}
