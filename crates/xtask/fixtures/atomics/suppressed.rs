//! Same sites as `violation.rs`, each justified: one by a `// sync:`
//! invariant (carried from the line above and trailing), one by the
//! `lint: allow` escape hatch. The pass must stay quiet.

pub struct Epoch {
    current: AtomicU64,
}

impl Epoch {
    pub fn bump(&self) -> u64 {
        // sync: monotonic epoch counter — readers only compare for
        // inequality, so no ordering with other data is needed
        self.current.fetch_add(1, Ordering::Relaxed)
    }

    pub fn read(&self) -> u64 {
        self.current.load(Ordering::Acquire) // sync: pairs with the Release store in publish()
    }

    pub fn reset(&self) {
        self.current.store(0, Ordering::SeqCst); // lint: allow(atomics-audit) test-harness reset, strongest ordering on purpose
    }
}
