//! Seeded atomics violations: a Relaxed RMW and an Acquire load with no
//! `// sync:` justification. The `atomics-audit` pass must flag both.

pub struct Epoch {
    current: AtomicU64,
}

impl Epoch {
    pub fn bump(&self) -> u64 {
        self.current.fetch_add(1, Ordering::Relaxed)
    }

    pub fn read(&self) -> u64 {
        self.current.load(Ordering::Acquire)
    }
}
