//! Same call chain as `violation.rs`, with the blocking site justified as
//! bounded. The pass must stay quiet.

pub struct Worker {
    dirty: Vec<u64>,
}

impl Worker {
    pub fn pump(&mut self) -> bool {
        self.drain_dirty();
        true
    }

    fn drain_dirty(&mut self) {
        flush_all(&mut self.dirty);
    }
}

fn flush_all(dirty: &mut Vec<u64>) {
    if !dirty.is_empty() {
        sync_to_disk(dirty);
        dirty.clear();
    }
}

fn sync_to_disk(dirty: &[u64]) {
    let _ = dirty.len();
    // lint: allow(hot-path-blocking) bounded 5ms backoff, only taken on
    // the rare dirty-spill path
    std::thread::sleep(std::time::Duration::from_millis(5));
}
