//! Seeded hot-path blocking: a wall-clock sleep buried three frames below
//! `Worker::pump`. The `hot-path-blocking` pass must find it and report
//! the full call chain `Worker::pump → Worker::drain_dirty → flush_all →
//! sync_to_disk`.

pub struct Worker {
    dirty: Vec<u64>,
}

impl Worker {
    pub fn pump(&mut self) -> bool {
        self.drain_dirty();
        true
    }

    fn drain_dirty(&mut self) {
        flush_all(&mut self.dirty);
    }
}

fn flush_all(dirty: &mut Vec<u64>) {
    if !dirty.is_empty() {
        sync_to_disk(dirty);
        dirty.clear();
    }
}

fn sync_to_disk(dirty: &[u64]) {
    let _ = dirty.len();
    std::thread::sleep(std::time::Duration::from_millis(5));
}
