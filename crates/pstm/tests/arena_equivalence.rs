//! Differential proptest: the arena/interned-locals execution path
//! ([`Interpreter::run_frontier`]) must emit byte-identical rows, in the
//! same order, with the same weight accounting, as the cloned-locals
//! reference path ([`Interpreter::run_traverser`]) — for every plan shape
//! the interpreter supports on the local path (expand with and without
//! edge loads, filters, loads, computes, dedup, loops).
//!
//! Both drivers run the same LIFO schedule with identically-seeded RNGs,
//! so any divergence in locals handling (copy-on-write splitting, slot
//! growth, release order) or in the per-quantum `ExpandCache` shows up as
//! a row or weight mismatch. 256 fixed seeds per shape.

use proptest::prelude::*;

use graphdance_common::rng::seeded;
use graphdance_common::{PartId, Partitioner, QueryId, Value, VertexId};
use graphdance_pstm::{
    ExpandCache, Frontier, Interpreter, LocalsTable, Memo, Row, Traverser, TraverserArena,
    TraverserHandle, Weight, WeightAccumulator,
};
use graphdance_query::expr::Expr;
use graphdance_query::plan::Plan;
use graphdance_query::{CmpOp, QueryBuilder};
use graphdance_storage::{Direction, Graph, GraphBuilder};

/// Random small multigraph over `n` vertices. Vertex prop `weight` =
/// id*10; edge prop `since` = edge index (exercises the edge-load path).
fn build_graph(n: u64, edges: &[(u64, u64)]) -> Graph {
    let mut b = GraphBuilder::new(Partitioner::new(2, 2));
    let person = b.schema_mut().register_vertex_label("Person");
    let knows = b.schema_mut().register_edge_label("knows");
    let weight = b.schema_mut().register_prop("weight");
    let since = b.schema_mut().register_prop("since");
    for i in 0..n {
        b.add_vertex(
            VertexId(i),
            person,
            vec![(weight, Value::Int(i as i64 * 10))],
        )
        .unwrap();
    }
    for (i, (s, d)) in edges.iter().enumerate() {
        b.add_edge(
            VertexId(s % n),
            knows,
            VertexId(d % n),
            vec![(since, Value::Int(i as i64))],
        )
        .unwrap();
    }
    b.finish()
}

/// The plan shapes under test; each stresses a different locals/arena path.
fn build_plan(shape: u8, hops: i64, schema: &graphdance_storage::Schema) -> Plan {
    let mut qb = QueryBuilder::new(schema);
    match shape % 4 {
        0 => {
            // k-hop with loop counter + dedup: LoopEnd weight splits,
            // looper locals sharing, memo dedup through interned slots.
            qb.v_param(0);
            let c = qb.alloc_slot();
            qb.repeat(1, hops, c, |r| {
                r.expand(Direction::Out, "knows", vec![]);
            });
            qb.dedup();
            qb.output(vec![Expr::VertexId]);
        }
        1 => {
            // Edge loads force the direct-scan path and per-child
            // clone_entry + set_slot_vec writes.
            qb.v_param(0);
            let s = qb.alloc_slot();
            qb.expand(Direction::Out, "knows", vec![("since", s)]);
            qb.expand(Direction::Both, "knows", vec![]);
            qb.output(vec![Expr::VertexId, Expr::Slot(s)]);
        }
        2 => {
            // Load + compute + filter: copy-on-write splits when a shared
            // child writes a slot the parent still references.
            qb.v();
            qb.has_label("Person");
            let w = qb.load("weight");
            let doubled = qb.alloc_slot();
            qb.compute(
                doubled,
                Expr::Add(Box::new(Expr::Slot(w)), Box::new(Expr::Slot(w))),
            );
            qb.expand(Direction::Out, "knows", vec![]);
            qb.filter(Expr::Cmp(
                Box::new(Expr::Slot(doubled)),
                CmpOp::Ge,
                Box::new(Expr::Const(Value::Int(0))),
            ));
            qb.output(vec![Expr::VertexId, Expr::Slot(doubled)]);
        }
        _ => {
            // Fan-in heavy two-hop from every vertex: the ExpandCache's
            // bread and butter (many traversers on few vertices).
            qb.v();
            qb.has_label("Person");
            qb.expand(Direction::Out, "knows", vec![]);
            qb.expand(Direction::Out, "knows", vec![]);
            qb.output(vec![Expr::VertexId]);
        }
    }
    qb.compile().unwrap()
}

/// Reference driver: cloned-locals `run_traverser`, LIFO schedule.
fn drive_cloned(graph: &Graph, plan: &Plan, params: &[Value], seed: u64) -> Vec<Row> {
    let interp = Interpreter {
        graph,
        plan,
        stage_idx: 0,
        query: QueryId(1),
        params,
        read_ts: 1,
        routing_version: 0,
    };
    let mut rng = seeded(seed);
    let mut memos: Vec<Memo> = (0..graph.partitioner().num_parts())
        .map(|_| Memo::new())
        .collect();
    let mut tracker = WeightAccumulator::new();
    let mut queue: Vec<(PartId, Traverser)> = Vec::new();
    let stage = interp.stage();
    let pipe_weights = Weight::ROOT.split(stage.pipelines.len(), &mut rng);
    for (pi, pw) in pipe_weights.into_iter().enumerate() {
        let parts: Vec<PartId> = graph.partitioner().parts().collect();
        let shares = pw.split(parts.len(), &mut rng);
        for (p, w) in parts.into_iter().zip(shares) {
            let out = interp
                .run_source(pi as u16, w, &graph.read(p), &mut rng)
                .unwrap();
            tracker.add(out.finished);
            queue.extend(out.spawned);
        }
    }
    let mut rows = Vec::new();
    while let Some((p, t)) = queue.pop() {
        let part = graph.read(p);
        let out = interp
            .run_traverser(
                t,
                &part,
                memos[p.as_usize()].query_mut(QueryId(1)),
                &mut rng,
            )
            .unwrap();
        tracker.add(out.finished);
        rows.extend(out.emitted);
        queue.extend(out.spawned);
    }
    assert!(tracker.is_complete(), "cloned path leaked weight");
    rows
}

/// Arena driver: same schedule and RNG, but state lives in the slab and
/// the locals table, and expansion goes through the per-quantum cache.
fn drive_arena(graph: &Graph, plan: &Plan, params: &[Value], seed: u64) -> Vec<Row> {
    let interp = Interpreter {
        graph,
        plan,
        stage_idx: 0,
        query: QueryId(1),
        params,
        read_ts: 1,
        routing_version: 0,
    };
    let mut rng = seeded(seed);
    let mut memos: Vec<Memo> = (0..graph.partitioner().num_parts())
        .map(|_| Memo::new())
        .collect();
    let mut tracker = WeightAccumulator::new();
    let mut arena = TraverserArena::new();
    let mut locals = LocalsTable::new();
    let mut cache = ExpandCache::new();
    let mut queue: Vec<(PartId, TraverserHandle)> = Vec::new();
    let stage = interp.stage();
    let pipe_weights = Weight::ROOT.split(stage.pipelines.len(), &mut rng);
    for (pi, pw) in pipe_weights.into_iter().enumerate() {
        let parts: Vec<PartId> = graph.partitioner().parts().collect();
        let shares = pw.split(parts.len(), &mut rng);
        for (p, w) in parts.into_iter().zip(shares) {
            let out = interp
                .run_source(pi as u16, w, &graph.read(p), &mut rng)
                .unwrap();
            tracker.add(out.finished);
            for (dest, t) in out.spawned {
                queue.push((dest, arena.admit(t, &mut locals)));
            }
        }
    }
    let mut rows = Vec::new();
    let mut pops = 0usize;
    let mut f = Frontier::new();
    let mut out = graphdance_pstm::HandleOutcome::new();
    while let Some((p, h)) = queue.pop() {
        // Quantum boundaries every few pops: exercises both cold scans and
        // cache hits without perturbing the schedule.
        if pops.is_multiple_of(3) {
            cache.begin_quantum();
        }
        pops += 1;
        let at = arena.get(h);
        let (q, v, pc, w) = (at.query, at.vertex, at.pc, at.weight);
        f.clear();
        f.push(
            h,
            q,
            v,
            pc,
            w,
            #[cfg(feature = "obs")]
            0,
        );
        let part = graph.read(p);
        interp
            .run_frontier(
                &f,
                0,
                &mut arena,
                &mut locals,
                &mut cache,
                &part,
                memos[p.as_usize()].query_mut(QueryId(1)),
                &mut rng,
                &mut out,
            )
            .unwrap();
        tracker.add(out.finished);
        rows.append(&mut out.emitted);
        queue.append(&mut out.spawned);
    }
    assert!(tracker.is_complete(), "arena path leaked weight");
    assert_eq!(arena.live(), 0, "arena leaked traverser slots");
    assert_eq!(locals.live(), 0, "locals table leaked records");
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arena_path_matches_cloned_path(
        seed in 0u64..u64::MAX,
        n in 3u64..10,
        edges in prop::collection::vec((0u64..32, 0u64..32), 1..24),
        shape in 0u8..4,
        hops in 1i64..4,
        start in 0u64..10,
    ) {
        let g = build_graph(n, &edges);
        let plan = build_plan(shape, hops, g.schema());
        let params = vec![Value::Vertex(VertexId(start % n))];
        let reference = drive_cloned(&g, &plan, &params, seed);
        let arena = drive_arena(&g, &plan, &params, seed);
        prop_assert_eq!(reference, arena);
    }
}
