//! Progression weights over the finite abelian group Z/2⁶⁴ (§IV-A).
//!
//! The textbook weight-throwing scheme uses rationals (root weight 1, split
//! into 1/n parts), which suffers precision and underflow problems. The
//! paper's fix: represent weights as elements of a finite abelian group and
//! split by drawing uniform random elements. With G = Z/2⁶⁴ the invariant
//!
//! ```text
//! Σ w_active + Σ w_finished ≡ w_root  (mod 2⁶⁴)
//! ```
//!
//! holds exactly, and Theorem 1 bounds the false-positive probability of
//! early termination detection by (n−1)/2⁶⁴ for n coalesced reports.

use std::num::Wrapping;

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A progression weight: an element of Z/2⁶⁴.
#[derive(Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Weight(pub u64);

impl std::fmt::Debug for Weight {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "w{:x}", self.0)
    }
}

#[allow(clippy::should_implement_trait)] // group `add`/`sub`, not std ops
impl Weight {
    /// The canonical root weight carried by a query's initial task.
    pub const ROOT: Weight = Weight(1);

    /// The additive identity (used by accumulators).
    pub const ZERO: Weight = Weight(0);

    /// Group addition (wrapping).
    #[inline]
    pub fn add(self, other: Weight) -> Weight {
        Weight((Wrapping(self.0) + Wrapping(other.0)).0)
    }

    /// Group subtraction (wrapping).
    #[inline]
    pub fn sub(self, other: Weight) -> Weight {
        Weight((Wrapping(self.0) - Wrapping(other.0)).0)
    }

    /// Accumulate in place.
    #[inline]
    pub fn absorb(&mut self, other: Weight) {
        *self = self.add(other);
    }

    /// Split this weight into `n ≥ 1` parts that sum (wrapping) back to it.
    /// The first `n − 1` parts are uniform random group elements; the last
    /// is the remainder, so the invariant holds exactly.
    pub fn split(self, n: usize, rng: &mut impl Rng) -> Vec<Weight> {
        assert!(n >= 1, "cannot split into zero parts");
        if n == 1 {
            return vec![self];
        }
        let mut parts = Vec::with_capacity(n);
        let mut rest = self;
        for _ in 0..n - 1 {
            let a = Weight(rng.gen::<u64>());
            rest = rest.sub(a);
            parts.push(a);
        }
        parts.push(rest);
        parts
    }

    /// Split off one part, mutating `self` to the remainder. Cheaper than
    /// [`Weight::split`] when children are produced incrementally (e.g. one
    /// per scanned edge).
    #[inline]
    pub fn split_one(&mut self, rng: &mut impl Rng) -> Weight {
        let a = Weight(rng.gen::<u64>());
        *self = self.sub(a);
        a
    }
}

/// A progress accumulator used by workers (weight coalescing, §IV-A) and by
/// the central tracker: sums finished weights and reports completion when
/// the sum reaches the expected root weight.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WeightAccumulator {
    sum: Weight,
}

impl WeightAccumulator {
    /// Fresh accumulator at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a finished weight.
    #[inline]
    pub fn add(&mut self, w: Weight) {
        self.sum.absorb(w);
    }

    /// Current sum.
    #[inline]
    pub fn sum(&self) -> Weight {
        self.sum
    }

    /// Drain the accumulated sum for a coalesced report, resetting to zero.
    /// Returns `None` when there is nothing to report.
    #[inline]
    pub fn drain(&mut self) -> Option<Weight> {
        if self.sum == Weight::ZERO {
            None
        } else {
            Some(std::mem::take(&mut self.sum))
        }
    }

    /// Has the accumulated sum reached the root weight?
    #[inline]
    pub fn is_complete(&self) -> bool {
        self.sum == Weight::ROOT
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphdance_common::rng::seeded;
    use proptest::prelude::*;

    #[test]
    fn split_preserves_sum() {
        let mut rng = seeded(1);
        for n in 1..20 {
            let w = Weight(rng.gen());
            let parts = w.split(n, &mut rng);
            assert_eq!(parts.len(), n);
            let total = parts.iter().fold(Weight::ZERO, |a, b| a.add(*b));
            assert_eq!(total, w);
        }
    }

    #[test]
    fn split_one_preserves_sum() {
        let mut rng = seeded(2);
        let orig = Weight(12345);
        let mut w = orig;
        let mut sum = Weight::ZERO;
        for _ in 0..100 {
            sum.absorb(w.split_one(&mut rng));
        }
        assert_eq!(sum.add(w), orig);
    }

    #[test]
    #[should_panic(expected = "zero parts")]
    fn split_zero_panics() {
        Weight::ROOT.split(0, &mut seeded(0));
    }

    #[test]
    fn accumulator_completes_only_at_root() {
        let mut rng = seeded(3);
        let parts = Weight::ROOT.split(10, &mut rng);
        let mut acc = WeightAccumulator::new();
        for (i, p) in parts.iter().enumerate() {
            assert!(!acc.is_complete(), "complete after only {i} parts");
            acc.add(*p);
        }
        assert!(acc.is_complete());
    }

    #[test]
    fn drain_resets() {
        let mut acc = WeightAccumulator::new();
        assert_eq!(acc.drain(), None);
        acc.add(Weight(7));
        acc.add(Weight(5));
        assert_eq!(acc.drain(), Some(Weight(12)));
        assert_eq!(acc.drain(), None);
    }

    #[test]
    fn simulated_traversal_terminates_exactly() {
        // Simulate a random task tree: each task either finishes or spawns
        // 1..=4 children. The tracker must fire exactly when the last task
        // finishes, never before.
        let mut rng = seeded(42);
        for _trial in 0..50 {
            let mut tracker = WeightAccumulator::new();
            let mut queue = vec![(Weight::ROOT, 0u32)];
            let mut active = 1usize;
            while let Some((w, depth)) = queue.pop() {
                active -= 1;
                let spawn = if depth >= 6 { 0 } else { rng.gen_range(0..=4) };
                if spawn == 0 {
                    tracker.add(w);
                } else {
                    for part in w.split(spawn, &mut rng) {
                        queue.push((part, depth + 1));
                        active += 1;
                    }
                }
                assert_eq!(
                    tracker.is_complete(),
                    active == 0 && queue.is_empty(),
                    "tracker fired at the wrong time"
                );
            }
            assert!(tracker.is_complete());
        }
    }

    proptest! {
        /// The group-invariant property of Theorem 1's setup: any split tree
        /// releases exactly the root weight.
        #[test]
        fn prop_split_tree_sums_to_root(seed in any::<u64>(), fanouts in proptest::collection::vec(0usize..5, 1..60)) {
            let mut rng = seeded(seed);
            let mut queue = vec![Weight::ROOT];
            let mut released = Weight::ZERO;
            let mut fi = 0;
            while let Some(w) = queue.pop() {
                let n = if fi < fanouts.len() { fanouts[fi] } else { 0 };
                fi += 1;
                if n == 0 {
                    released.absorb(w);
                } else {
                    queue.extend(w.split(n, &mut rng));
                }
            }
            prop_assert_eq!(released, Weight::ROOT);
        }

        /// Partial release is (overwhelmingly) never the root weight: with
        /// one task outstanding the sum is root − w for a uniform random w.
        #[test]
        fn prop_incomplete_rarely_false_positive(seed in any::<u64>()) {
            let mut rng = seeded(seed);
            let parts = Weight::ROOT.split(8, &mut rng);
            let mut acc = WeightAccumulator::new();
            for p in &parts[..7] {
                acc.add(*p);
            }
            // The missing part is uniform; equality would be a 2^-64 event.
            prop_assert!(!acc.is_complete());
        }
    }
}
