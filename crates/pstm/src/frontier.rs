//! SoA frontier batches and the per-quantum adjacency cache.
//!
//! The worker's arena execution path stages a run of same-depth queued
//! traversers into a [`Frontier`] — a structure-of-arrays batch whose
//! columns (`vertices[]`, `pcs[]`, `weights[]`, `handles[]`) are the
//! interpreter's inputs — instead of popping and cloning one heap
//! traverser at a time. Staging only *same-depth* entries keeps the
//! schedule bit-identical to the one-at-a-time heap: queue order within a
//! depth is FIFO by sequence number, and any child spawned mid-batch
//! (deeper, or same-depth with a larger sequence number) sorts after every
//! entry already staged.
//!
//! The [`ExpandCache`] memoizes one CSR adjacency scan per distinct
//! `(vertex, direction, label, read_ts)` within a pump quantum, so a batch
//! of traversers sitting on the same vertex (the common case after a
//! fan-in hop) pays for one TEL walk instead of one per traverser. Entries
//! are keyed on the read timestamp, so snapshot reads stay correct across
//! queries; the cache is cleared at every quantum boundary to bound
//! memory.

use graphdance_common::{FxHashMap, Label, PartId, QueryId, VertexId};
use graphdance_storage::{Direction, Timestamp};

use crate::arena::TraverserHandle;
use crate::interp::Row;
use crate::weight::Weight;

/// A structure-of-arrays batch of same-depth traversers staged for
/// execution. Columns are parallel: index `i` across all of them describes
/// one traverser.
#[derive(Debug, Default)]
pub struct Frontier {
    /// Arena handles (the authoritative state lives in the arena).
    pub handles: Vec<TraverserHandle>,
    /// Owning query of each entry.
    pub queries: Vec<QueryId>,
    /// Entry vertex of each traverser at staging time.
    pub vertices: Vec<VertexId>,
    /// Entry program counter of each traverser at staging time.
    pub pcs: Vec<u16>,
    /// Progression weight of each traverser at staging time (the ledger's
    /// per-step input).
    pub weights: Vec<Weight>,
    /// Enqueue timestamps carried through for queue-wait accounting.
    #[cfg(feature = "obs")]
    pub enq_ns: Vec<u64>,
}

impl Frontier {
    /// Fresh empty frontier.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of staged traversers.
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    /// Drop all staged entries (the arena still owns the traversers).
    pub fn clear(&mut self) {
        self.handles.clear();
        self.queries.clear();
        self.vertices.clear();
        self.pcs.clear();
        self.weights.clear();
        #[cfg(feature = "obs")]
        self.enq_ns.clear();
    }

    /// Stage one traverser.
    pub fn push(
        &mut self,
        handle: TraverserHandle,
        query: QueryId,
        vertex: VertexId,
        pc: u16,
        weight: Weight,
        #[cfg(feature = "obs")] enq_ns: u64,
    ) {
        self.handles.push(handle);
        self.queries.push(query);
        self.vertices.push(vertex);
        self.pcs.push(pc);
        self.weights.push(weight);
        #[cfg(feature = "obs")]
        self.enq_ns.push(enq_ns);
    }
}

/// What one arena-path interpreter invocation produced: the handle
/// analogue of [`crate::interp::Outcome`]. Spawned children live in the
/// worker's arena; the caller routes them by handle and flattens to the
/// wire format only at the outbox boundary.
#[derive(Debug, Default)]
pub struct HandleOutcome {
    /// Spawned traversers (arena handles) with their destination partitions.
    pub spawned: Vec<(PartId, TraverserHandle)>,
    /// Result rows emitted by a non-aggregating stage.
    pub emitted: Vec<Row>,
    /// Weight released by traversers that terminated here.
    pub finished: Weight,
    /// Number of plan steps executed (for Table I stage accounting).
    pub steps_executed: u32,
}

impl HandleOutcome {
    /// Fresh empty outcome.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reset for reuse, retaining the `spawned`/`emitted` allocations —
    /// callers keep one scratch outcome across an execution batch so the
    /// per-traverser hot path performs no outcome allocations at all.
    pub fn clear(&mut self) {
        self.spawned.clear();
        self.emitted.clear();
        self.finished = Weight::ZERO;
        self.steps_executed = 0;
    }
}

/// Cap on cached neighbor ids per quantum; past it new scans bypass the
/// cache (bounds memory on super-node-heavy batches).
const EXPAND_CACHE_NEIGHBOR_CAP: usize = 64 * 1024;

/// Per-quantum memo of adjacency scans: `(vertex, dir, label, read_ts)` →
/// a span of neighbor ids in a flat arena. Only consulted for `Expand`
/// steps with no edge-property loads (the common k-hop shape) — property
/// loads need the full `EdgeRef` and take the direct scan path.
#[derive(Debug, Default)]
pub struct ExpandCache {
    spans: FxHashMap<(VertexId, Direction, Label, Timestamp), (u32, u32)>,
    neighbors: Vec<VertexId>,
    #[cfg(feature = "obs")]
    hits: u64,
    #[cfg(feature = "obs")]
    misses: u64,
}

impl ExpandCache {
    /// Fresh empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reset at a pump-quantum boundary. Backing allocations are retained.
    pub fn begin_quantum(&mut self) {
        self.spans.clear();
        self.neighbors.clear();
    }

    /// Cached neighbor span for a scan key, if this quantum already walked
    /// it. Resolve the indices with [`Self::span`]; the slice preserves the
    /// TEL's edge order exactly.
    #[inline]
    pub fn lookup(&mut self, key: (VertexId, Direction, Label, Timestamp)) -> Option<(u32, u32)> {
        let found = self.spans.get(&key).copied();
        #[cfg(feature = "obs")]
        {
            if found.is_some() {
                self.hits += 1;
            } else {
                self.misses += 1;
            }
        }
        found
    }

    /// Resolve a span returned by [`Self::lookup`] / [`Self::commit_scan`].
    #[inline]
    pub fn span(&self, (start, end): (u32, u32)) -> &[VertexId] {
        &self.neighbors[start as usize..end as usize]
    }

    /// Begin recording a scan; pair with [`Self::push`] +
    /// [`Self::commit_scan`]. Returns `None` when the cache is full — the
    /// caller then scans without recording.
    #[inline]
    pub fn begin_insert(&mut self) -> Option<u32> {
        if self.neighbors.len() >= EXPAND_CACHE_NEIGHBOR_CAP {
            None
        } else {
            Some(self.neighbors.len() as u32)
        }
    }

    /// Record one neighbor of an in-progress scan.
    #[inline]
    pub fn push(&mut self, v: VertexId) {
        self.neighbors.push(v);
    }

    /// Finish recording a scan started at `start` and index it under `key`.
    /// Returns the recorded span indices.
    #[inline]
    pub fn commit_scan(
        &mut self,
        key: (VertexId, Direction, Label, Timestamp),
        start: u32,
    ) -> (u32, u32) {
        let end = self.neighbors.len() as u32;
        self.spans.insert(key, (start, end));
        (start, end)
    }

    /// `(hits, misses)` since construction.
    #[cfg(feature = "obs")]
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(v: u64) -> (VertexId, Direction, Label, Timestamp) {
        (VertexId(v), Direction::Out, Label(1), 7)
    }

    #[test]
    fn expand_cache_roundtrips_spans_in_order() {
        let mut c = ExpandCache::new();
        assert!(c.lookup(key(1)).is_none());
        let s = c.begin_insert().unwrap();
        c.push(VertexId(10));
        c.push(VertexId(30));
        c.push(VertexId(20));
        let span = c.commit_scan(key(1), s);
        assert_eq!(c.span(span), &[VertexId(10), VertexId(30), VertexId(20)]);
        // Second scan interleaves without disturbing the first.
        let s2 = c.begin_insert().unwrap();
        c.push(VertexId(99));
        c.commit_scan(key(2), s2);
        let first = c.lookup(key(1)).unwrap();
        assert_eq!(c.span(first), &[VertexId(10), VertexId(30), VertexId(20)]);
        let second = c.lookup(key(2)).unwrap();
        assert_eq!(c.span(second), &[VertexId(99)]);
        // Distinct read timestamps are distinct keys (snapshot safety).
        let (v, d, l, _) = key(1);
        assert!(c.lookup((v, d, l, 8)).is_none());
    }

    #[test]
    fn expand_cache_clears_at_quantum_boundary() {
        let mut c = ExpandCache::new();
        let s = c.begin_insert().unwrap();
        c.push(VertexId(1));
        c.commit_scan(key(1), s);
        c.begin_quantum();
        assert!(c.lookup(key(1)).is_none());
        assert_eq!(c.neighbors.len(), 0);
    }

    #[test]
    fn frontier_columns_stay_parallel() {
        let mut f = Frontier::new();
        let mut arena = crate::arena::TraverserArena::new();
        let h = arena.insert(crate::arena::ArenaTraverser {
            query: QueryId(1),
            pipeline: 0,
            pc: 3,
            vertex: VertexId(9),
            locals: crate::arena::LocalsId::INVALID,
            weight: Weight(5),
            depth: 2,
            aux_key: None,
        });
        f.push(
            h,
            QueryId(1),
            VertexId(9),
            3,
            Weight(5),
            #[cfg(feature = "obs")]
            0,
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f.queries[0], QueryId(1));
        assert_eq!(f.vertices[0], VertexId(9));
        assert_eq!(f.pcs[0], 3);
        assert_eq!(f.weights[0], Weight(5));
        f.clear();
        assert!(f.is_empty());
    }
}
