//! Query memoranda: the `M` component of the partitioned stateful graph
//! (§III-B).
//!
//! A memo is a per-partition temporary key-value store. Its records are
//! created by traversers of a specific query, readable and writable only by
//! traversers in the same partition (so access is synchronization-free), and
//! reclaimed automatically when the creating query terminates.
//!
//! The memo is deliberately *not* under concurrency control: even a
//! read-only graph query freely mutates its memo records (§III-B).

use graphdance_common::value::ValueKey;
use graphdance_common::{FxHashMap, FxHashSet, QueryId, Value, VertexId};

use crate::agg::AggState;
use crate::weight::WeightAccumulator;

/// The locals carried by a parked join row.
pub type JoinRow = Vec<Value>;

/// Per-query memo access statistics, drained by the worker's observability
/// layer after each execution batch (only with the `obs` feature).
#[cfg(feature = "obs")]
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MemoStats {
    /// Dedup keys already present (traverser pruned).
    pub dedup_hits: u64,
    /// Fresh dedup keys inserted.
    pub dedup_misses: u64,
    /// Min-distance lookups that found an existing record.
    pub min_dist_hits: u64,
    /// Min-distance lookups that created a record.
    pub min_dist_misses: u64,
    /// Double-pipelined join insert-and-probe operations.
    pub join_probes: u64,
    /// Rows returned by join probes (matches on the opposite side).
    pub join_matches: u64,
    /// Aggregation partial accesses.
    pub agg_updates: u64,
}

#[cfg(feature = "obs")]
impl MemoStats {
    /// Drain: return the accumulated stats, resetting to zero.
    pub fn take(&mut self) -> MemoStats {
        std::mem::take(self)
    }

    /// Lookups that hit existing memo state.
    pub fn hits(&self) -> u64 {
        self.dedup_hits + self.min_dist_hits + self.join_matches
    }

    /// Lookups that created fresh memo state.
    pub fn misses(&self) -> u64 {
        self.dedup_misses + self.min_dist_misses
    }
}

/// Per-query memo records within one partition.
#[derive(Debug, Default)]
pub struct QueryMemo {
    /// Dedup step state: the set of seen keys, per step occurrence.
    /// Key = (pipeline, pc, vertex, slot values).
    dedup: FxHashSet<(u16, u16, VertexId, Vec<ValueKey>)>,
    /// Min-distance records (Fig. 5): best known distance per vertex, per
    /// step occurrence.
    min_dist: FxHashMap<(u16, u16, VertexId), i64>,
    /// Double-pipelined join tables: per join id and key, the parked rows of
    /// each side.
    join: FxHashMap<(u16, ValueKey), (Vec<JoinRow>, Vec<JoinRow>)>,
    /// Partial aggregation state for the current stage.
    agg: Option<AggState>,
    /// Locally coalesced finished weight (§IV-A weight coalescing) for the
    /// current stage.
    pub finished: WeightAccumulator,
    /// Access statistics since the last drain (obs builds only).
    #[cfg(feature = "obs")]
    pub stats: MemoStats,
}

impl QueryMemo {
    /// Dedup check-and-insert: returns `true` if the key was fresh (the
    /// traverser survives), `false` if it was already present (prune).
    pub fn dedup_insert(
        &mut self,
        pipeline: u16,
        pc: u16,
        vertex: VertexId,
        slots: Vec<ValueKey>,
    ) -> bool {
        let fresh = self.dedup.insert((pipeline, pc, vertex, slots));
        #[cfg(feature = "obs")]
        {
            if fresh {
                self.stats.dedup_misses += 1;
            } else {
                self.stats.dedup_hits += 1;
            }
        }
        fresh
    }

    /// Min-distance check-and-update: returns `true` if `dist` improves the
    /// recorded distance for `vertex` (record updated, traverser survives);
    /// `false` otherwise (prune).
    pub fn min_dist_update(&mut self, pipeline: u16, pc: u16, vertex: VertexId, dist: i64) -> bool {
        match self.min_dist.entry((pipeline, pc, vertex)) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                #[cfg(feature = "obs")]
                {
                    self.stats.min_dist_hits += 1;
                }
                if dist < *e.get() {
                    e.insert(dist);
                    true
                } else {
                    false
                }
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                #[cfg(feature = "obs")]
                {
                    self.stats.min_dist_misses += 1;
                }
                e.insert(dist);
                true
            }
        }
    }

    /// Double-pipelined join insert-and-probe (§III-A): park `row` on
    /// `side_a`'s table for `key` and return a clone of every row currently
    /// parked on the opposite side.
    pub fn join_insert_probe(
        &mut self,
        join_id: u16,
        key: ValueKey,
        side_a: bool,
        row: JoinRow,
    ) -> Vec<JoinRow> {
        let (a, b) = self.join.entry((join_id, key)).or_default();
        let matches = if side_a {
            a.push(row);
            b.clone()
        } else {
            b.push(row);
            a.clone()
        };
        #[cfg(feature = "obs")]
        {
            self.stats.join_probes += 1;
            self.stats.join_matches += matches.len() as u64;
        }
        matches
    }

    /// The stage's aggregation partial, created on first use.
    pub fn agg_mut(&mut self, init: impl FnOnce() -> AggState) -> &mut AggState {
        #[cfg(feature = "obs")]
        {
            self.stats.agg_updates += 1;
        }
        self.agg.get_or_insert_with(init)
    }

    /// Take the aggregation partial (gathered by the coordinator at scope
    /// completion, Fig. 6), resetting join/dedup state for the next stage.
    pub fn take_stage_state(&mut self) -> Option<AggState> {
        self.dedup.clear();
        self.min_dist.clear();
        self.join.clear();
        self.agg.take()
    }

    /// Number of parked join rows (diagnostics).
    pub fn join_rows(&self) -> usize {
        self.join.values().map(|(a, b)| a.len() + b.len()).sum()
    }
}

/// All memoranda of one partition, keyed by query.
#[derive(Debug, Default)]
pub struct Memo {
    queries: FxHashMap<QueryId, QueryMemo>,
}

impl Memo {
    /// Empty memo.
    pub fn new() -> Self {
        Self::default()
    }

    /// The memo records of `query`, created on first access.
    pub fn query_mut(&mut self, query: QueryId) -> &mut QueryMemo {
        self.queries.entry(query).or_default()
    }

    /// Release every record of `query` ("the memo is automatically cleared
    /// after the creating query terminates", §III-B).
    pub fn clear_query(&mut self, query: QueryId) {
        self.queries.remove(&query);
    }

    /// Number of queries with live memo records (diagnostics / leak tests).
    pub fn live_queries(&self) -> usize {
        self.queries.len()
    }

    /// Drain the access statistics of `query` without creating memo state
    /// for it (queries the worker no longer tracks return zeros).
    #[cfg(feature = "obs")]
    pub fn take_stats(&mut self, query: QueryId) -> MemoStats {
        self.queries
            .get_mut(&query)
            .map(|q| q.stats.take())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_semantics() {
        let mut m = Memo::new();
        let q = m.query_mut(QueryId(1));
        assert!(q.dedup_insert(0, 2, VertexId(5), vec![]));
        assert!(
            !q.dedup_insert(0, 2, VertexId(5), vec![]),
            "duplicate pruned"
        );
        // different step occurrence → independent key space
        assert!(q.dedup_insert(0, 3, VertexId(5), vec![]));
        assert!(q.dedup_insert(1, 2, VertexId(5), vec![]));
        // slot-qualified dedup
        assert!(q.dedup_insert(0, 2, VertexId(5), vec![ValueKey::Int(1)]));
        assert!(!q.dedup_insert(0, 2, VertexId(5), vec![ValueKey::Int(1)]));
    }

    #[test]
    fn min_dist_prunes_non_improving() {
        let mut m = Memo::new();
        let q = m.query_mut(QueryId(1));
        assert!(
            q.min_dist_update(0, 0, VertexId(9), 3),
            "first visit survives"
        );
        assert!(
            !q.min_dist_update(0, 0, VertexId(9), 3),
            "equal distance pruned"
        );
        assert!(
            !q.min_dist_update(0, 0, VertexId(9), 5),
            "worse distance pruned"
        );
        assert!(
            q.min_dist_update(0, 0, VertexId(9), 1),
            "better distance survives"
        );
        assert!(!q.min_dist_update(0, 0, VertexId(9), 2), "now 1 is the bar");
    }

    #[test]
    fn join_insert_probe_both_sides() {
        let mut m = Memo::new();
        let q = m.query_mut(QueryId(1));
        let k = ValueKey::Vertex(VertexId(7));
        // A arrives first: no matches.
        assert!(q
            .join_insert_probe(0, k.clone(), true, vec![Value::Int(1)])
            .is_empty());
        // B arrives: matches the parked A row.
        let matches = q.join_insert_probe(0, k.clone(), false, vec![Value::Int(2)]);
        assert_eq!(matches, vec![vec![Value::Int(1)]]);
        // Another A arrives: matches the parked B row.
        let matches = q.join_insert_probe(0, k.clone(), true, vec![Value::Int(3)]);
        assert_eq!(matches, vec![vec![Value::Int(2)]]);
        // Different key: isolated.
        assert!(q
            .join_insert_probe(0, ValueKey::Int(0), false, vec![Value::Int(4)])
            .is_empty());
        assert_eq!(q.join_rows(), 4);
    }

    #[test]
    fn query_isolation_and_cleanup() {
        let mut m = Memo::new();
        m.query_mut(QueryId(1))
            .dedup_insert(0, 0, VertexId(1), vec![]);
        m.query_mut(QueryId(2))
            .dedup_insert(0, 0, VertexId(1), vec![]);
        assert_eq!(m.live_queries(), 2);
        m.clear_query(QueryId(1));
        assert_eq!(m.live_queries(), 1);
        // query 2 unaffected
        assert!(!m
            .query_mut(QueryId(2))
            .dedup_insert(0, 0, VertexId(1), vec![]));
        // query 1 records are gone: re-inserting succeeds
        assert!(m
            .query_mut(QueryId(1))
            .dedup_insert(0, 0, VertexId(1), vec![]));
    }

    #[test]
    fn take_stage_state_resets_for_next_stage() {
        let mut m = Memo::new();
        let q = m.query_mut(QueryId(1));
        q.dedup_insert(0, 0, VertexId(1), vec![]);
        q.join_insert_probe(0, ValueKey::Int(1), true, vec![]);
        assert!(q.take_stage_state().is_none(), "no aggregation was started");
        assert!(
            q.dedup_insert(0, 0, VertexId(1), vec![]),
            "dedup state cleared"
        );
        assert_eq!(q.join_rows(), 0, "join state cleared");
    }
}
