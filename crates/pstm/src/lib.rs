//! # graphdance-pstm
//!
//! The Partitioned Stateful Traversal Machine (§III): the execution
//! semantics shared by every GraphDance engine.
//!
//! * [`weight`] — **progression weights** (§III-B, §IV-A): each traverser
//!   carries an element of the finite abelian group Z/2⁶⁴; spawning splits
//!   the weight uniformly at random, termination releases it. The traversal
//!   is complete exactly when the released weights sum (wrapping) back to
//!   the root weight — one integer addition per traverser.
//! * [`traverser`] — the traverser 4-tuple `(v, ψ, π, w)` extended with its
//!   plan position.
//! * [`memo`] — per-partition, query-scoped **memoranda** (§III-B): the
//!   mutable state of Dedup / min-distance / Join / aggregation steps,
//!   owned by a single worker and freed when the query ends.
//! * [`agg`] — commutative-associative aggregation partials (§III-C).
//! * [`interp`] — the step interpreter: advances one traverser through as
//!   many partition-local steps as possible and reports spawned traversers
//!   (with routing), emitted rows, and finished weight.
//! * [`ledger`] — debug-build weight-conservation checker: every
//!   interpreter outcome must redistribute its input weight exactly.

pub mod agg;
pub mod arena;
pub mod frontier;
pub mod interp;
pub mod ledger;
pub mod memo;
pub mod traverser;
pub mod weight;

pub use agg::AggState;
pub use arena::{ArenaTraverser, LocalsId, LocalsTable, TraverserArena, TraverserHandle};
pub use frontier::{ExpandCache, Frontier, HandleOutcome};
pub use interp::{Interpreter, Outcome, Row};
pub use ledger::WeightLedger;
#[cfg(feature = "obs")]
pub use memo::MemoStats;
pub use memo::{Memo, QueryMemo};
pub use traverser::Traverser;
pub use weight::{Weight, WeightAccumulator};
