//! The traverser: PSTM's unit of work.
//!
//! A traverser is the 4-tuple `(v, ψ, π, w)` of §III-B — current vertex,
//! current step, local variables, progression weight — extended with its
//! position in the compiled plan (stage is implicit: one stage runs at a
//! time per query) and a scheduling depth.

use serde::{Deserialize, Serialize};

use graphdance_common::{QueryId, Value, VertexId};

use crate::weight::Weight;

/// A traverser. Cheap to clone relative to its locals (a small `Vec`).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Traverser {
    /// The query this traverser belongs to.
    pub query: QueryId,
    /// Which pipeline of the current stage.
    pub pipeline: u16,
    /// Program counter: index into the pipeline's steps. `pc == steps.len()`
    /// means the traverser is at the emit position.
    pub pc: u16,
    /// Current vertex `v` (`μ(t)`).
    pub vertex: VertexId,
    /// Local variable slots `π`.
    pub locals: Vec<Value>,
    /// Progression weight `w`.
    pub weight: Weight,
    /// Hops travelled; workers schedule shallow traversers first (§III-B:
    /// "traversers with a shorter history trajectory are generally scheduled
    /// to run before those with a lengthier trajectory").
    pub depth: u32,
    /// Pre-evaluated routing key for a pending `Join` step: set when the
    /// traverser is shipped to the join key's owner partition, where the
    /// original vertex's properties are no longer readable.
    pub aux_key: Option<Value>,
}

impl Traverser {
    /// A stage-initial traverser at `vertex` with `num_slots` null locals.
    pub fn root(
        query: QueryId,
        pipeline: u16,
        vertex: VertexId,
        num_slots: usize,
        weight: Weight,
    ) -> Self {
        Traverser {
            query,
            pipeline,
            pc: 0,
            vertex,
            locals: vec![Value::Null; num_slots],
            weight,
            depth: 0,
            aux_key: None,
        }
    }

    /// Read a local slot (missing slots read as `Null`).
    #[inline]
    pub fn slot(&self, s: u8) -> &Value {
        self.locals.get(s as usize).unwrap_or(&Value::Null)
    }

    /// Write a local slot, growing the register file if needed.
    #[inline]
    pub fn set_slot(&mut self, s: u8, v: Value) {
        let i = s as usize;
        if i >= self.locals.len() {
            self.locals.resize(i + 1, Value::Null);
        }
        self.locals[i] = v;
    }

    /// Serialized size in bytes (drives the 8 KB flush threshold of the
    /// two-tier I/O scheduler, §IV-B, and obs byte accounting). This used
    /// to be an independent estimate that drifted from the codec — it
    /// skipped `aux_key` entirely and flat-rated nested lists at
    /// 16 B/elem — so it now delegates to [`wire_bytes`](Self::wire_bytes)
    /// and cannot diverge again.
    #[inline]
    pub fn approx_bytes(&self) -> usize {
        self.wire_bytes()
    }

    /// Exact serialized size in bytes, mirroring the engine wire codec's
    /// layout byte for byte (the codec's tests pin the two together). The
    /// adaptive I/O scheduler sizes its per-lane buffers with this so flush
    /// thresholds track real frame bytes.
    pub fn wire_bytes(&self) -> usize {
        let mut n = 8 + 2 + 2 + 8 + 8 + 4 + 1; // fixed fields + aux flag
        if let Some(k) = &self.aux_key {
            n += value_wire_bytes(k);
        }
        n += 2; // locals count
        for v in &self.locals {
            n += value_wire_bytes(v);
        }
        n
    }
}

/// Exact encoded size of one [`Value`] on the wire (tag byte + payload).
fn value_wire_bytes(v: &Value) -> usize {
    1 + match v {
        Value::Null | Value::Bool(_) => 0,
        Value::Int(_) | Value::Float(_) | Value::Vertex(_) => 8,
        Value::Str(s) => 4 + s.len(),
        Value::List(l) => 4 + l.iter().map(value_wire_bytes).sum::<usize>(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_traverser_shape() {
        let t = Traverser::root(QueryId(1), 0, VertexId(5), 3, Weight::ROOT);
        assert_eq!(t.locals, vec![Value::Null; 3]);
        assert_eq!(t.pc, 0);
        assert_eq!(t.depth, 0);
        assert_eq!(t.weight, Weight::ROOT);
    }

    #[test]
    fn slot_access_is_null_safe() {
        let mut t = Traverser::root(QueryId(1), 0, VertexId(5), 1, Weight::ROOT);
        assert_eq!(*t.slot(7), Value::Null);
        t.set_slot(7, Value::Int(9));
        assert_eq!(*t.slot(7), Value::Int(9));
        assert_eq!(t.locals.len(), 8);
    }

    #[test]
    fn approx_bytes_counts_strings() {
        let mut t = Traverser::root(QueryId(1), 0, VertexId(5), 0, Weight::ROOT);
        let base = t.approx_bytes();
        t.set_slot(0, Value::str("0123456789"));
        assert!(t.approx_bytes() >= base + 10);
    }

    #[test]
    fn approx_bytes_tracks_wire_bytes_exactly() {
        // approx_bytes delegates to wire_bytes: aux keys and nested lists
        // must count identically so the two can never drift again.
        let mut t = Traverser::root(QueryId(1), 0, VertexId(5), 2, Weight::ROOT);
        t.aux_key = Some(Value::str("routing-key"));
        t.set_slot(
            0,
            Value::List(vec![Value::Int(1), Value::str("abc")].into()),
        );
        t.set_slot(1, Value::Float(2.5));
        assert_eq!(t.approx_bytes(), t.wire_bytes());
        t.aux_key = None;
        assert_eq!(t.approx_bytes(), t.wire_bytes());
    }

    #[test]
    fn wire_bytes_counts_every_field() {
        let mut t = Traverser::root(QueryId(1), 0, VertexId(5), 0, Weight::ROOT);
        let fixed = 8 + 2 + 2 + 8 + 8 + 4 + 1 + 2;
        assert_eq!(t.wire_bytes(), fixed);
        t.aux_key = Some(Value::str("key"));
        assert_eq!(t.wire_bytes(), fixed + 1 + 4 + 3);
        t.set_slot(0, Value::Int(9));
        assert_eq!(t.wire_bytes(), fixed + 1 + 4 + 3 + 9);
    }
}
