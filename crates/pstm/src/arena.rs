//! Arena-allocated traversers and interned locals: the hot-path memory
//! layout (ROADMAP item 5).
//!
//! The baseline `Traverser` is a heap object — its `locals: Vec<Value>`
//! register file is `clone()`d on every neighbor expansion and loop
//! continuation, so the interpreter's inner loop is allocator-bound. This
//! module replaces that layout for the worker's local execution path:
//!
//! * [`TraverserArena`] — a generation-indexed slab. Live traversers are
//!   addressed by a copyable 8-byte [`TraverserHandle`] (`u32` slot +
//!   `u32` generation); freed slots are recycled through a free list, so
//!   steady-state execution performs no traverser-sized allocations at
//!   all. Debug builds detect stale handles (ABA) by checking the slot's
//!   generation on every access and panicking on mismatch; the
//!   `WeightLedger` re-reads every spawned child through these checked
//!   accessors, wiring the ABA guard into the existing conservation
//!   invariant.
//! * [`LocalsTable`] — a per-query ref-counted store for the locals
//!   register file (`π`). Children spawned by `Expand` share the parent's
//!   record by bumping a refcount; the first mutation through
//!   [`LocalsTable::make_mut`] copies-on-write. Records freed at refcount
//!   zero donate their `Vec` back to a small pool, so even CoW copies
//!   reuse capacity instead of allocating.
//!
//! The arena layout never crosses the wire: handles are flattened back to
//! the plain [`Traverser`] at the outbox boundary ([`TraverserArena::extract`])
//! and interned again at the inbox ([`TraverserArena::admit`]), so the
//! codec, `net.rs`, and the sim fabric are byte-identical to the cloned
//! path.

use graphdance_common::{QueryId, Value, VertexId};

use crate::traverser::Traverser;
use crate::weight::Weight;

/// Generation-indexed handle to a live traverser in a [`TraverserArena`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TraverserHandle {
    slot: u32,
    gen: u32,
}

impl TraverserHandle {
    /// The slot index (diagnostics only; the arena validates the
    /// generation on access).
    pub fn slot(&self) -> u32 {
        self.slot
    }

    /// The generation this handle was issued under.
    pub fn generation(&self) -> u32 {
        self.gen
    }
}

/// Id of an interned locals record in a [`LocalsTable`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LocalsId(u32);

impl LocalsId {
    /// Sentinel for vacant arena slots (never a valid table index).
    pub const INVALID: LocalsId = LocalsId(u32::MAX);
}

/// Arena-resident traverser state: the wire [`Traverser`] with its
/// `Vec<Value>` locals replaced by an interned [`LocalsId`].
#[derive(Debug)]
pub struct ArenaTraverser {
    /// The query this traverser belongs to.
    pub query: QueryId,
    /// Which pipeline of the current stage.
    pub pipeline: u16,
    /// Program counter (see [`Traverser::pc`]).
    pub pc: u16,
    /// Current vertex `v`.
    pub vertex: VertexId,
    /// Interned local variable slots `π`.
    pub locals: LocalsId,
    /// Progression weight `w`.
    pub weight: Weight,
    /// Hops travelled (scheduling depth).
    pub depth: u32,
    /// Pre-evaluated join routing key (see [`Traverser::aux_key`]).
    pub aux_key: Option<Value>,
}

impl ArenaTraverser {
    /// Placeholder stored in vacant slots so the slab never holds stale
    /// `Value` allocations (strings/lists are dropped on `remove`). Also
    /// used by the interpreter when a cursor's state is transferred into
    /// the arena (join route-away, remote `MoveTo`).
    pub(crate) fn vacant() -> Self {
        ArenaTraverser {
            query: QueryId(u64::MAX),
            pipeline: 0,
            pc: 0,
            vertex: VertexId(u64::MAX),
            locals: LocalsId::INVALID,
            weight: Weight::ZERO,
            depth: 0,
            aux_key: None,
        }
    }
}

/// Generation-indexed slab of live traversers with free-list recycling.
#[derive(Debug, Default)]
pub struct TraverserArena {
    slots: Vec<ArenaTraverser>,
    /// Per-slot generation, bumped on every free; a handle whose
    /// generation disagrees is stale (ABA) and panics in debug builds.
    gens: Vec<u32>,
    free: Vec<u32>,
    live: usize,
}

impl TraverserArena {
    /// Whether stale-handle (ABA) checks are compiled in (debug builds).
    pub const ABA_CHECKS: bool = cfg!(debug_assertions);

    /// Fresh empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live traversers.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Total slots ever allocated (high-water mark; recycled slots are
    /// counted once).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    #[inline]
    fn check(&self, h: TraverserHandle) {
        if Self::ABA_CHECKS && self.gens[h.slot as usize] != h.gen {
            // Stale handle: the slot was freed (and possibly reused) since
            // this handle was issued. Debug-only guard; release builds
            // trade the check for speed, like the WeightLedger.
            // lint: allow(hot-path-panics) debug-only ABA guard
            panic!(
                "stale traverser handle: slot {} is at generation {}, handle was issued at {}",
                h.slot, self.gens[h.slot as usize], h.gen
            );
        }
    }

    /// Insert a traverser, recycling a freed slot when one is available.
    #[inline]
    pub fn insert(&mut self, t: ArenaTraverser) -> TraverserHandle {
        self.live += 1;
        if let Some(slot) = self.free.pop() {
            self.slots[slot as usize] = t;
            TraverserHandle {
                slot,
                gen: self.gens[slot as usize],
            }
        } else {
            let slot = self.slots.len() as u32;
            self.slots.push(t);
            self.gens.push(0);
            TraverserHandle { slot, gen: 0 }
        }
    }

    /// Read a live traverser (debug builds panic on a stale handle).
    #[inline]
    pub fn get(&self, h: TraverserHandle) -> &ArenaTraverser {
        self.check(h);
        &self.slots[h.slot as usize]
    }

    /// Mutate a live traverser (debug builds panic on a stale handle).
    #[inline]
    pub fn get_mut(&mut self, h: TraverserHandle) -> &mut ArenaTraverser {
        self.check(h);
        &mut self.slots[h.slot as usize]
    }

    /// Remove a traverser, bumping the slot's generation so every
    /// outstanding handle to it becomes stale, and recycle the slot.
    #[inline]
    pub fn remove(&mut self, h: TraverserHandle) -> ArenaTraverser {
        self.check(h);
        let i = h.slot as usize;
        self.gens[i] = self.gens[i].wrapping_add(1);
        self.free.push(h.slot);
        self.live -= 1;
        std::mem::replace(&mut self.slots[i], ArenaTraverser::vacant())
    }

    /// Intern a wire-format traverser arriving from the inbox: its locals
    /// go into `locals`, the fixed fields into the slab.
    pub fn admit(&mut self, t: Traverser, locals: &mut LocalsTable) -> TraverserHandle {
        let lid = locals.alloc(t.locals);
        self.insert(ArenaTraverser {
            query: t.query,
            pipeline: t.pipeline,
            pc: t.pc,
            vertex: t.vertex,
            locals: lid,
            weight: t.weight,
            depth: t.depth,
            aux_key: t.aux_key,
        })
    }

    /// Flatten an arena traverser back to the wire format (outbox
    /// boundary). The locals record is moved out when this was its last
    /// reference, cloned otherwise — the bytes on the wire are identical
    /// to the cloned path either way.
    pub fn extract(&mut self, h: TraverserHandle, locals: &mut LocalsTable) -> Traverser {
        let at = self.remove(h);
        Traverser {
            query: at.query,
            pipeline: at.pipeline,
            pc: at.pc,
            vertex: at.vertex,
            locals: locals.take(at.locals),
            weight: at.weight,
            depth: at.depth,
            aux_key: at.aux_key,
        }
    }

    /// Remove a traverser and release its locals without materializing a
    /// wire traverser (dead-query purge).
    pub fn discard(&mut self, h: TraverserHandle, locals: &mut LocalsTable) {
        let at = self.remove(h);
        locals.unref(at.locals);
    }
}

/// Freed `Vec<Value>` backings kept for reuse; beyond this the extras are
/// dropped (bounds worst-case idle memory).
const LOCALS_POOL_CAP: usize = 256;

#[derive(Debug)]
struct LocalsEntry {
    vals: Vec<Value>,
    rc: u32,
}

/// Per-query ref-counted store of locals register files with copy-on-write
/// sharing (see the module docs).
#[derive(Debug, Default)]
pub struct LocalsTable {
    entries: Vec<LocalsEntry>,
    free: Vec<u32>,
    /// Emptied `Vec` backings recycled by [`LocalsTable::alloc_from`].
    pool: Vec<Vec<Value>>,
}

impl LocalsTable {
    /// Fresh empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live records.
    pub fn live(&self) -> usize {
        self.entries.len() - self.free.len()
    }

    /// Current refcount of a record (tests/diagnostics).
    pub fn refcount(&self, id: LocalsId) -> u32 {
        self.entries[id.0 as usize].rc
    }

    fn alloc_entry(&mut self, vals: Vec<Value>) -> LocalsId {
        if let Some(slot) = self.free.pop() {
            let e = &mut self.entries[slot as usize];
            e.vals = vals;
            e.rc = 1;
            LocalsId(slot)
        } else {
            let slot = self.entries.len() as u32;
            self.entries.push(LocalsEntry { vals, rc: 1 });
            LocalsId(slot)
        }
    }

    /// Intern an owned register file (refcount 1).
    pub fn alloc(&mut self, vals: Vec<Value>) -> LocalsId {
        self.alloc_entry(vals)
    }

    /// Intern a copy of `vals`, reusing a pooled backing `Vec` when one is
    /// available (the element clones remain; the `Vec` allocation goes).
    pub fn alloc_from(&mut self, vals: &[Value]) -> LocalsId {
        let mut v = self.pool.pop().unwrap_or_default();
        v.extend_from_slice(vals);
        self.alloc_entry(v)
    }

    /// Intern a copy of an existing record (pooled backing), leaving the
    /// original's refcount untouched.
    pub fn clone_entry(&mut self, id: LocalsId) -> LocalsId {
        let mut v = self.pool.pop().unwrap_or_default();
        v.extend_from_slice(&self.entries[id.0 as usize].vals);
        self.alloc_entry(v)
    }

    /// Share a record with one more owner.
    #[inline]
    pub fn retain(&mut self, id: LocalsId) {
        self.entries[id.0 as usize].rc += 1;
    }

    /// Drop one owner; at refcount zero the record is freed and its `Vec`
    /// backing pooled for reuse.
    #[inline]
    pub fn unref(&mut self, id: LocalsId) {
        if id == LocalsId::INVALID {
            return;
        }
        let e = &mut self.entries[id.0 as usize];
        e.rc -= 1;
        if e.rc == 0 {
            let mut v = std::mem::take(&mut e.vals);
            v.clear();
            if self.pool.len() < LOCALS_POOL_CAP {
                self.pool.push(v);
            }
            self.free.push(id.0);
        }
    }

    /// Read a record.
    #[inline]
    pub fn get(&self, id: LocalsId) -> &[Value] {
        &self.entries[id.0 as usize].vals
    }

    /// Mutable access with copy-on-write: a uniquely-owned record is
    /// returned directly; a shared one is first copied into a fresh record
    /// (pooled backing) and `id` is re-pointed at the copy.
    pub fn make_mut(&mut self, id: &mut LocalsId) -> &mut Vec<Value> {
        let i = id.0 as usize;
        if self.entries[i].rc > 1 {
            self.entries[i].rc -= 1;
            let mut v = self.pool.pop().unwrap_or_default();
            v.extend_from_slice(&self.entries[i].vals);
            *id = self.alloc_entry(v);
        }
        &mut self.entries[id.0 as usize].vals
    }

    /// Clone a record out (join rows parked in the memo own their values).
    pub fn clone_out(&self, id: LocalsId) -> Vec<Value> {
        self.entries[id.0 as usize].vals.clone()
    }

    /// Take a record out, releasing this owner: moved when uniquely owned,
    /// cloned when shared.
    pub fn take(&mut self, id: LocalsId) -> Vec<Value> {
        let i = id.0 as usize;
        if self.entries[i].rc == 1 {
            let vals = std::mem::take(&mut self.entries[i].vals);
            self.unref(id);
            vals
        } else {
            self.entries[i].rc -= 1;
            self.entries[i].vals.clone()
        }
    }
}

/// Write `v` into slot `s` of a raw register file, growing it like
/// [`Traverser::set_slot`] does.
#[inline]
pub fn set_slot_vec(vals: &mut Vec<Value>, s: u8, v: Value) {
    let i = s as usize;
    if i >= vals.len() {
        vals.resize(i + 1, Value::Null);
    }
    vals[i] = v;
}

/// Read slot `s` of a raw register file (missing slots read as `Null`),
/// mirroring [`Traverser::slot`].
#[inline]
pub fn slot_of(vals: &[Value], s: u8) -> &Value {
    vals.get(s as usize).unwrap_or(&Value::Null)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(query: u64, vertex: u64, w: u64, locals: LocalsId) -> ArenaTraverser {
        ArenaTraverser {
            query: QueryId(query),
            pipeline: 0,
            pc: 0,
            vertex: VertexId(vertex),
            locals,
            weight: Weight(w),
            depth: 0,
            aux_key: None,
        }
    }

    #[test]
    fn free_list_recycles_slots() {
        let mut a = TraverserArena::new();
        let h1 = a.insert(at(1, 1, 1, LocalsId::INVALID));
        let h2 = a.insert(at(1, 2, 2, LocalsId::INVALID));
        assert_eq!(a.live(), 2);
        assert_eq!(a.capacity(), 2);
        a.remove(h1);
        // The freed slot is reused — no slab growth.
        let h3 = a.insert(at(1, 3, 3, LocalsId::INVALID));
        assert_eq!(h3.slot(), h1.slot());
        assert_eq!(a.capacity(), 2);
        assert_eq!(a.live(), 2);
        assert_eq!(a.get(h3).vertex, VertexId(3));
        assert_eq!(a.get(h2).vertex, VertexId(2));
    }

    #[test]
    fn generation_bumps_on_free() {
        let mut a = TraverserArena::new();
        let h1 = a.insert(at(1, 1, 1, LocalsId::INVALID));
        a.remove(h1);
        let h2 = a.insert(at(1, 2, 2, LocalsId::INVALID));
        assert_eq!(h2.slot(), h1.slot(), "slot recycled");
        assert_eq!(
            h2.generation(),
            h1.generation() + 1,
            "generation advanced on free"
        );
    }

    #[test]
    #[should_panic(expected = "stale traverser handle")]
    fn stale_handle_access_panics_in_debug() {
        if !TraverserArena::ABA_CHECKS {
            // Release builds compile the guard out; satisfy should_panic.
            panic!("stale traverser handle (check disabled)");
        }
        let mut a = TraverserArena::new();
        let h1 = a.insert(at(1, 1, 1, LocalsId::INVALID));
        a.remove(h1);
        // The slot is reused by a different traverser…
        let _h2 = a.insert(at(1, 2, 2, LocalsId::INVALID));
        // …so the stale handle must NOT silently read the new occupant.
        let _ = a.get(h1);
    }

    #[test]
    #[should_panic(expected = "stale traverser handle")]
    fn double_remove_panics_in_debug() {
        if !TraverserArena::ABA_CHECKS {
            panic!("stale traverser handle (check disabled)");
        }
        let mut a = TraverserArena::new();
        let h = a.insert(at(1, 1, 1, LocalsId::INVALID));
        a.remove(h);
        a.remove(h);
    }

    #[test]
    fn admit_extract_roundtrips_the_wire_format() {
        let mut a = TraverserArena::new();
        let mut l = LocalsTable::new();
        let mut t = Traverser::root(QueryId(7), 1, VertexId(42), 3, Weight(9));
        t.set_slot(0, Value::str("hello"));
        t.aux_key = Some(Value::Int(5));
        t.depth = 4;
        t.pc = 2;
        let h = a.admit(t.clone(), &mut l);
        assert_eq!(a.live(), 1);
        assert_eq!(l.live(), 1);
        let back = a.extract(h, &mut l);
        assert_eq!(back, t);
        assert_eq!(a.live(), 0);
        assert_eq!(l.live(), 0);
    }

    #[test]
    fn locals_cow_shares_until_written() {
        let mut l = LocalsTable::new();
        let mut parent = l.alloc(vec![Value::Int(1), Value::Int(2)]);
        l.retain(parent); // child shares
        let mut child = parent;
        assert_eq!(l.refcount(parent), 2);
        assert_eq!(l.live(), 1);
        // Child writes: copy-on-write splits the record.
        set_slot_vec(l.make_mut(&mut child), 0, Value::Int(99));
        assert_ne!(child, parent);
        assert_eq!(l.live(), 2);
        assert_eq!(l.get(parent), &[Value::Int(1), Value::Int(2)]);
        assert_eq!(l.get(child), &[Value::Int(99), Value::Int(2)]);
        // Unique owner mutates in place — same id.
        let before = parent;
        set_slot_vec(l.make_mut(&mut parent), 1, Value::Int(7));
        assert_eq!(parent, before);
        l.unref(parent);
        l.unref(child);
        assert_eq!(l.live(), 0);
    }

    #[test]
    fn released_locals_backings_are_pooled_and_reused() {
        let mut l = LocalsTable::new();
        let id = l.alloc(Vec::with_capacity(64));
        l.unref(id);
        // A fresh record from a slice reuses the pooled 64-cap backing.
        let id2 = l.alloc_from(&[Value::Int(1)]);
        assert!(l.get(id2).len() == 1);
        assert_eq!(id2, id, "slot recycled through the free list");
    }

    #[test]
    fn take_moves_when_unique_and_clones_when_shared() {
        let mut l = LocalsTable::new();
        let id = l.alloc(vec![Value::Int(3)]);
        l.retain(id);
        let first = l.take(id);
        assert_eq!(first, vec![Value::Int(3)]);
        assert_eq!(l.live(), 1, "still one owner left");
        let second = l.take(id);
        assert_eq!(second, vec![Value::Int(3)]);
        assert_eq!(l.live(), 0);
    }
}
